"""Common shape of adversarial actors.

An adversary is *not* an :class:`~repro.network.node.AnchorNode`: it holds
no honest replica, follows no protocol contract, and never participates in
the quorum's summary-hash comparison.  What all actors share is an identity
on the transport, a deterministic behaviour (every choice derives from the
scenario seed), and a counter dict describing what they attempted — the
attack side of the ``report["adversary"]`` block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.transport import InMemoryTransport


class AdversaryActor:
    """Base class: identity, transport access and attack counters."""

    #: Short role name surfaced in reports (overridden by subclasses).
    kind: str = "abstract"

    def __init__(self, actor_id: str, transport: "InMemoryTransport") -> None:
        if not actor_id:
            raise ValueError("adversary actor needs a non-empty id")
        self.actor_id = actor_id
        self.transport = transport
        #: Attack counters; keys are stable strings so reports serialise
        #: byte-identically across runs.
        self.stats: dict[str, int] = {}

    def _bump(self, key: str, by: int = 1) -> None:
        """Increment an attack counter."""
        self.stats[key] = self.stats.get(key, 0) + by

    def statistics(self) -> dict[str, Any]:
        """Role name plus the attack counters, keys sorted for determinism."""
        return {"kind": self.kind, **{key: self.stats[key] for key in sorted(self.stats)}}
