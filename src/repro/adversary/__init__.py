"""Adversarial node behaviours for kernel deployments.

The paper's security argument (Section V) is about what an *adversary* can
do to a deletable chain: rewrite summarised history (the 51 % analysis of
Section V-B1, reproduced analytically in :mod:`repro.analysis.attack`),
forge or replay deletion requests against the authorization rule of
Section IV-D1, and desynchronise the quorum.  The scenario catalogue used
to be entirely benign — latency, loss, partitions, churn.  This package
supplies the missing byzantine side as *injectable actor roles* that plug
into a :class:`~repro.network.simulator.NetworkSimulator` deployment:

* :class:`~repro.adversary.actors.EquivocatingProducer` — seals conflicting
  blocks for the same height and feeds different victims different variants
  (the fork-inducing behaviour Section IV-B's synchronisation check exists
  to detect),
* :class:`~repro.adversary.actors.DeletionForger` — submits deletion
  requests with an unauthorized author, impersonates entry authors through
  the simplified signature scheme, and replays captured ``SUBMIT_DELETION``
  messages; every attempt must die as a *typed* rejection,
* :class:`~repro.adversary.actors.DigestSpoofer` — advertises fabricated
  ``SYNC_DIGEST`` heads to bait honest replicas into pulls that can never
  succeed (anti-entropy's failure containment),
* :class:`~repro.adversary.actors.ClockSkewedReplica` — re-clocks one
  replica's :class:`~repro.core.clock.SimulationClock` by a seeded offset,
  so blocks it produces after a failover stamp skewed timestamps.

Actors keep their own attack counters (:meth:`AdversaryActor.statistics`);
the simulator pairs them with the quorum's *defense* counters under
``report["adversary"]`` so every adversarial scenario states both what was
attempted and what the honest side did about it.
"""

from repro.adversary.base import AdversaryActor
from repro.adversary.actors import (
    ClockSkewedReplica,
    DeletionForger,
    DigestSpoofer,
    EquivocatingProducer,
)

__all__ = [
    "AdversaryActor",
    "ClockSkewedReplica",
    "DeletionForger",
    "DigestSpoofer",
    "EquivocatingProducer",
]
