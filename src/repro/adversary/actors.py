"""The concrete byzantine actor roles.

Each actor attacks one mechanism the paper relies on:

========================== ============================================== =================================
actor                      attacks                                        honest defence that must hold
========================== ============================================== =================================
:class:`EquivocatingProducer` block dissemination (Section IV-B)          fork detection via summary-hash
                                                                          comparison; repair by snapshot
                                                                          bootstrap (Section V-B4)
:class:`DeletionForger`    deletion authorization (Section IV-D1/D2)      typed rejections from the
                                                                          authorizer and cohesion layers
:class:`DigestSpoofer`     anti-entropy pulls (:mod:`repro.sync`)         baited pulls fail harmlessly;
                                                                          replicas keep their state
:class:`ClockSkewedReplica` block timestamps (Sections IV-D3/D4)          expiry evaluates on *on-chain*
                                                                          time, so skew cannot fork the
                                                                          quorum — only a skewed producer
                                                                          can age entries prematurely
========================== ============================================== =================================

Everything an actor does is a deterministic function of its constructor
arguments and call order; scenarios seed those from the scenario seed, so
adversarial runs replay byte-identically like every other catalogue entry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.adversary.base import AdversaryActor
from repro.core.block import Block
from repro.core.clock import SimulationClock
from repro.core.deletion import build_deletion_request
from repro.core.entry import Entry, EntryReference
from repro.crypto.signatures import new_scheme, sign_entry
from repro.network.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.kernel import EventHandle, EventKernel
    from repro.network.node import AnchorNode
    from repro.network.transport import InMemoryTransport


class EquivocatingProducer(AdversaryActor):
    """Seals conflicting blocks for one height and splits them over victims.

    The paper warns that a diverging replica *"would result in a fork in the
    blockchain and thus split the network"* (Section IV-B).  This actor
    manufactures exactly that situation on purpose: it crafts ``variants``
    mutually conflicting blocks that all extend the same honest head, then
    announces a different variant to each victim.  Victims whose replica
    still sits on that head accept the forged block and fork; victims that
    already advanced reject it (the rejection lands in their bounded
    ``rejected_blocks`` window).  Honest recovery — divergence detection via
    the summary-hash check, wholesale repair via snapshot bootstrap — is the
    scenario's job; see
    :meth:`repro.network.simulator.NetworkSimulator.repair_divergent_replicas`.
    """

    kind = "equivocating-producer"

    def equivocate(
        self,
        victims: list[str],
        *,
        head: Block,
        variants: int = 2,
    ) -> list[Block]:
        """Craft ``variants`` conflicting blocks on ``head``, one per victim.

        Victims are served round-robin: victim *i* receives variant
        ``i % variants``.  Returns the forged blocks (tests assert their
        mutual conflict).  Counters: ``blocks_forged``, ``victims_accepted``
        (replicas that adopted a forged block), ``victims_rejected``.
        """
        if variants < 2:
            raise ValueError("equivocation needs at least two conflicting variants")
        round_number = self.stats.get("rounds", 0)
        self._bump("rounds")
        blocks: list[Block] = []
        for variant in range(variants):
            entry = Entry(
                data={
                    "D": f"equivocation round {round_number} variant {variant}",
                    "K": self.actor_id,
                    "S": "forged",
                },
                author=self.actor_id,
                signature="forged",
            )
            blocks.append(
                Block(
                    block_number=head.block_number + 1,
                    timestamp=head.timestamp + 1,
                    previous_hash=head.block_hash,
                    entries=[entry],
                )
            )
        self._bump("blocks_forged", len(blocks))
        for index, victim in enumerate(victims):
            block = blocks[index % len(blocks)]
            announce = Message(
                kind=MessageKind.BLOCK_ANNOUNCE,
                sender=self.actor_id,
                payload={"block": block.to_dict()},
            )
            response = self.transport.send(victim, announce)
            if response is not None and not response.is_error:
                self._bump("victims_accepted")
            else:
                self._bump("victims_rejected")
        return blocks


class DeletionForger(AdversaryActor):
    """Forged, impersonated and replayed deletion requests.

    Three escalating attacks on the authorization rule of Section IV-D1:

    * :meth:`forge` signs a deletion request under the forger's *own*
      identity for somebody else's entry — the paper's signature comparison
      must reject it,
    * :meth:`impersonate` signs *claiming the victim's identity*.  The
      simplified signature scheme of the console figures is not
      cryptographically binding, so this passes the signature comparison —
      the semantic-cohesion layer (Section IV-D2: Bell-LaPadula /
      Brewer-Nash) is the defence in depth that must catch it,
    * :meth:`replay` re-transmits captured ``SUBMIT_DELETION`` messages from
      the transport's log.  A replay of an already *executed* deletion dies
      on the missing-target check (the target physically left the chain).

    Every response is classified into a typed counter
    (``rejected_unauthorized`` / ``rejected_cohesion`` /
    ``rejected_missing_target`` / ``rejected_other`` / ``approved``), so a
    scenario can assert not merely *that* the attack failed but *which*
    layer stopped it.
    """

    kind = "deletion-forger"

    def __init__(
        self,
        actor_id: str,
        transport: "InMemoryTransport",
        *,
        scheme_name: str = "simplified",
    ) -> None:
        super().__init__(actor_id, transport)
        self.scheme = new_scheme(scheme_name)

    # ------------------------------------------------------------------ #
    # The three attacks
    # ------------------------------------------------------------------ #

    def forge(
        self, anchor_id: str, target: EntryReference, *, reason: str = "forged"
    ) -> Optional[Message]:
        """Request deletion of ``target`` signed as the forger itself."""
        return self._submit(anchor_id, target, signer=self.actor_id, reason=reason)

    def impersonate(
        self,
        anchor_id: str,
        target: EntryReference,
        *,
        victim: str,
        reason: str = "forged",
    ) -> Optional[Message]:
        """Request deletion of ``target`` signed *claiming* ``victim``."""
        self._bump("impersonations")
        return self._submit(anchor_id, target, signer=victim, reason=reason)

    def replay(self, anchor_id: str, *, limit: Optional[int] = None) -> int:
        """Re-transmit captured ``SUBMIT_DELETION`` messages verbatim.

        Scans the transport's message log (the wire, as seen by an
        eavesdropper), re-sends up to ``limit`` distinct deletion
        submissions to ``anchor_id`` and classifies each response.  Returns
        the number of replays sent.
        """
        captured = [
            message
            for message in list(self.transport.message_log)
            if message.kind is MessageKind.SUBMIT_DELETION
        ]
        if limit is not None:
            captured = captured[:limit]
        for original in captured:
            replayed = Message(
                kind=MessageKind.SUBMIT_DELETION,
                sender=original.sender,
                payload=dict(original.payload),
            )
            self._bump("replays_sent")
            self._classify(self.transport.send(anchor_id, replayed))
        return len(captured)

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _submit(
        self, anchor_id: str, target: EntryReference, *, signer: str, reason: str
    ) -> Optional[Message]:
        request = build_deletion_request(
            target, author=signer, signature="", reason=reason
        )
        request = sign_entry(self.scheme, request, signer)
        message = Message(
            kind=MessageKind.SUBMIT_DELETION,
            sender=self.actor_id,
            payload={"entry": request.to_dict()},
        )
        self._bump("forgeries_sent")
        response = self.transport.send(anchor_id, message)
        self._classify(response)
        return response

    def _classify(self, response: Optional[Message]) -> str:
        """Map a submission response onto a typed outcome counter."""
        if response is None:
            outcome = "no_response"
        elif response.is_error:
            outcome = "transport_error"
        else:
            status = str(response.payload.get("deletion_status", ""))
            reason = str(response.payload.get("deletion_reason", ""))
            if status in ("approved", "executed"):
                outcome = "approved"
            elif "does not exist in the living chain" in reason:
                outcome = "rejected_missing_target"
            elif reason.startswith("semantic cohesion violated"):
                outcome = "rejected_cohesion"
            elif "is not allowed to delete" in reason:
                outcome = "rejected_unauthorized"
            else:
                outcome = "rejected_other"
        self._bump(outcome)
        return outcome


class DigestSpoofer(AdversaryActor):
    """An anti-entropy peer advertising fabricated ``SYNC_DIGEST`` heads.

    Honest replicas that believe the spoofed head pull from the spoofer:
    the catch-up request is answered with a fake ``snapshot_required``
    marker and the follow-up snapshot request with an error, so every baited
    pull fails — the defence under test is *containment*: a failed pull must
    leave the victim's replica untouched and the deployment convergent.

    The spoofer registers a handler on the transport (victims address their
    pulls at it) and books its spoof rounds on the kernel like the honest
    :class:`~repro.sync.antientropy.AntiEntropyService` books digest rounds.
    """

    kind = "digest-spoofer"

    def __init__(self, actor_id: str, transport: "InMemoryTransport") -> None:
        super().__init__(actor_id, transport)
        self._handle: Optional["EventHandle"] = None
        transport.register(actor_id, self._handle_message)

    def _handle_message(self, message: Message) -> Optional[Message]:
        if message.kind is MessageKind.SYNC_REQUEST:
            # The bait worked: a victim believed the fake head and pulls.
            # Claim a marker shift so the victim escalates to a snapshot
            # bootstrap — which the handler below then refuses to serve.
            self._bump("pulls_baited")
            return message.reply(
                MessageKind.SYNC_RESPONSE,
                self.actor_id,
                {
                    "blocks": [],
                    "genesis_marker": 10**9,
                    "snapshot_required": True,
                },
            )
        if message.kind is MessageKind.SNAPSHOT_REQUEST:
            self._bump("snapshots_refused")
            return message.error(self.actor_id, "spoofed peer has no snapshot to serve")
        self._bump("other_messages_dropped")
        return message.error(self.actor_id, "spoofed peer ignores honest traffic")

    def start(
        self,
        *,
        kernel: "EventKernel",
        targets: Iterable[str],
        interval_ms: float,
        head_fn: Callable[[], int],
        lead: int = 5,
        until: Optional[float] = None,
    ) -> "EventHandle":
        """Book recurring spoof rounds on the kernel.

        Each round posts a digest claiming ``head_fn() + lead`` — always
        ahead of the honest head, so victims keep believing they are behind.
        """
        if self._handle is not None and not self._handle.cancelled:
            raise ValueError("spoof rounds are already running")
        target_ids = [target for target in targets if target != self.actor_id]

        def _round() -> None:
            self.spoof_round(target_ids, fake_head=head_fn() + lead)

        self._handle = kernel.every(
            interval_ms, _round, label=f"digest-spoof:{self.actor_id}", until=until
        )
        return self._handle

    def stop(self) -> None:
        """Cancel the recurring spoof rounds."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def spoof_round(self, targets: list[str], *, fake_head: int) -> int:
        """Post one fabricated digest to every target; returns posts made."""
        self._bump("rounds")
        digest = Message(
            kind=MessageKind.SYNC_DIGEST,
            sender=self.actor_id,
            payload={
                "head": fake_head,
                "head_hash": "f" * 64,
                "genesis_marker": 0,
                "round": self.stats["rounds"],
            },
        )
        posted = self.transport.publish(self.actor_id, targets, digest)
        self._bump("spoofs_posted", posted)
        return posted


class ClockSkewedReplica(AdversaryActor):
    """Re-clocks one replica's chain by a fixed virtual-time offset.

    Summary-block expiry evaluates at the timestamp of the *preceding
    block* (on-chain time, Section IV-B determinism), so a skewed clock on
    a mere replica cannot fork the quorum — every node ages entries by the
    same on-chain timestamps.  The skew becomes observable the moment the
    skewed node is elected producer (Section V-B4 failover): blocks it seals
    stamp future timestamps, and temporary entries (Section IV-D4) expire
    *prematurely in honest-clock terms*.  The scenario around this actor
    measures exactly that window.
    """

    kind = "clock-skewed-replica"

    def __init__(
        self,
        actor_id: str,
        transport: "InMemoryTransport",
        *,
        kernel: "EventKernel",
        skew_ticks: int,
    ) -> None:
        super().__init__(actor_id, transport)
        if skew_ticks < 0:
            raise ValueError("skew_ticks must be non-negative (clocks only run forward)")
        self.kernel = kernel
        self.skew_ticks = skew_ticks
        self.stats["skew_ticks"] = skew_ticks

    def apply(self, node: "AnchorNode") -> None:
        """Swap the node's chain clock for one running ``skew_ticks`` ahead."""
        node.chain.clock = SimulationClock(self.kernel, start=self.skew_ticks)
        self._bump("replicas_skewed")


__all__ = [
    "ClockSkewedReplica",
    "DeletionForger",
    "DigestSpoofer",
    "EquivocatingProducer",
]
