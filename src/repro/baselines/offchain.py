"""Baseline: off-chain payload storage with on-chain hash pointers.

Section III: *"not the private user data are stored in the blockchain, but
only the hashes of the user data for possible verification"* — payment
channels, encrypted payloads with off-chain keys, and similar designs all
reduce to this shape.  Erasure deletes the off-chain payload (or the key), so
the data becomes unreadable, but the on-chain hash pointer remains forever
and the chain itself never shrinks — which is exactly why the paper judges
the approach insufficient for the chain-growth problem.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.baselines.base import BaselineSystem, EffortCounter, ErasureOutcome, RecordRef, payload_size
from repro.baselines.full_chain import ImmutableChain
from repro.crypto.hashing import hash_hex


class OffChainStore(BaselineSystem):
    """Hash pointers on an immutable chain, payloads in an erasable store."""

    name = "off-chain-storage"

    def __init__(self) -> None:
        self._chain = ImmutableChain()
        self._payloads: dict[int, dict[str, Any]] = {}
        self._effort = EffortCounter()

    def append_record(self, data: Mapping[str, Any], author: str) -> RecordRef:
        """Store the payload off-chain and only its hash on-chain."""
        digest = hash_hex(dict(data))
        reference = self._chain.append_record({"payload_hash": digest}, author)
        self._payloads[reference.index] = dict(data)
        return reference

    def request_erasure(self, reference: RecordRef, author: str) -> ErasureOutcome:
        """Delete the off-chain payload; the on-chain pointer stays."""
        if reference.index not in self._payloads:
            return ErasureOutcome(
                accepted=False,
                globally_effective=False,
                effort_units=0.0,
                detail="payload already erased or unknown",
            )
        del self._payloads[reference.index]
        effort = self._effort.charge(1.0)
        return ErasureOutcome(
            accepted=True,
            globally_effective=True,
            effort_units=effort,
            detail="off-chain payload deleted; the hash pointer remains on the chain forever",
        )

    def storage_bytes(self) -> int:
        """On-chain pointers plus the remaining off-chain payloads."""
        off_chain = sum(payload_size(payload) for payload in self._payloads.values())
        return self._chain.storage_bytes() + off_chain

    def on_chain_bytes(self) -> int:
        """Size of the on-chain part alone (never shrinks)."""
        return self._chain.storage_bytes()

    def record_count(self) -> int:
        """Payloads still readable."""
        return len(self._payloads)

    def record_retrievable(self, reference: RecordRef) -> bool:
        """Readable only while the off-chain payload exists."""
        return reference.index in self._payloads

    def verify_payload(self, reference: RecordRef) -> bool:
        """Check an off-chain payload against its on-chain hash pointer."""
        if reference.index not in self._payloads:
            return False
        pointer_block = self._chain.blocks[reference.index]
        return pointer_block.data["payload_hash"] == hash_hex(self._payloads[reference.index])

    @property
    def total_effort(self) -> float:
        """Accumulated erasure effort."""
        return self._effort.total

    def capabilities(self) -> dict[str, Any]:
        """Erasure works for payloads, but the chain itself never shrinks."""
        return {
            "name": self.name,
            "selective_deletion": True,
            "global_effect": True,
            "keeps_chain_verifiable": True,
            "requires_trapdoor_holder": False,
        }
