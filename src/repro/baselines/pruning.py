"""Baseline: local pruning.

Section III: *"The simple solution of pruning locally stored parts does not
solve the problem for the global, distributed blockchain."*  A pruning node
throws away old block bodies and keeps only headers, so its own disk usage is
bounded — but archival nodes elsewhere still hold the payload, so an erasure
is never globally effective.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.baselines.base import BaselineSystem, ErasureOutcome, RecordRef, payload_size
from repro.baselines.full_chain import ImmutableChain


class LocalPruningNode(BaselineSystem):
    """A full chain plus one node that prunes bodies older than a window."""

    name = "local-pruning"

    def __init__(self, *, keep_recent: int = 100) -> None:
        if keep_recent < 1:
            raise ValueError("keep_recent must be positive")
        self.keep_recent = keep_recent
        self._archive = ImmutableChain()
        self._pruned_bodies: set[int] = set()

    def append_record(self, data: Mapping[str, Any], author: str) -> RecordRef:
        """Append to the global chain and prune the local window."""
        reference = self._archive.append_record(data, author)
        horizon = self._archive.record_count() - self.keep_recent
        for index in range(max(0, horizon)):
            self._pruned_bodies.add(index)
        return reference

    def request_erasure(self, reference: RecordRef, author: str) -> ErasureOutcome:
        """Prune the body locally; archival nodes still serve the record."""
        self._pruned_bodies.add(reference.index)
        return ErasureOutcome(
            accepted=True,
            globally_effective=False,
            effort_units=1.0,
            detail="body pruned on this node only; archival nodes keep the record",
        )

    def storage_bytes(self) -> int:
        """Local storage: headers for everything, bodies only in the window."""
        total = 0
        for block in self._archive.blocks:
            total += 2 * 64 + 16  # header
            if block.index not in self._pruned_bodies:
                total += payload_size(block.data)
        return total

    def archive_bytes(self) -> int:
        """What the network as a whole still stores (the archival nodes)."""
        return self._archive.storage_bytes()

    def record_count(self) -> int:
        """Globally retrievable records (the archive keeps everything)."""
        return self._archive.record_count()

    def record_retrievable(self, reference: RecordRef) -> bool:
        """Records stay retrievable from archival nodes even when pruned here."""
        return self._archive.record_retrievable(reference)

    def locally_retrievable(self, reference: RecordRef) -> bool:
        """Whether this pruning node still holds the record body."""
        return (
            self._archive.record_retrievable(reference)
            and reference.index not in self._pruned_bodies
        )

    def capabilities(self) -> dict[str, Any]:
        """Pruning bounds local storage but has no global effect."""
        return {
            "name": self.name,
            "selective_deletion": True,
            "global_effect": False,
            "keeps_chain_verifiable": True,
            "requires_trapdoor_holder": False,
        }
