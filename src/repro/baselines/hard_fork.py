"""Baseline: hard fork to a new chain without the unwanted content.

Section III: *"Another possibility is a hard fork to a new blockchain after
unwanted content is stored.  But this is very time inefficient as it can take
place on every transaction."*  The baseline quantifies that inefficiency: an
erasure rebuilds (re-hashes) every block after the erased one, so the effort
grows linearly with the chain length and the whole network must adopt the new
chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.baselines.base import BaselineSystem, EffortCounter, ErasureOutcome, RecordRef
from repro.baselines.full_chain import ImmutableChain
from repro.crypto.hashing import GENESIS_PREVIOUS_HASH


@dataclass
class _Record:
    """One logical record with a stable identity across forks."""

    data: dict[str, Any]
    author: str
    erased: bool = False


class HardForkChain(BaselineSystem):
    """Erasure by rebuilding the chain from the erased block onwards.

    Record references stay valid across forks: they identify the *logical*
    record, while the underlying chain is rebuilt (and every successor block
    re-hashed) whenever one of them is erased.
    """

    name = "hard-fork"

    def __init__(self) -> None:
        self._records: list[_Record] = []
        self._chain = ImmutableChain()
        self._effort = EffortCounter()
        self.forks_performed = 0

    def _rebuild(self) -> int:
        """Rebuild the canonical chain from the non-erased records."""
        rebuilt = ImmutableChain()
        for record in self._records:
            if not record.erased:
                rebuilt.append_record(record.data, record.author)
        self._chain = rebuilt
        return rebuilt.record_count()

    def append_record(self, data: Mapping[str, Any], author: str) -> RecordRef:
        """Append to the current canonical chain."""
        record = _Record(data=dict(data), author=author)
        self._records.append(record)
        self._chain.append_record(record.data, record.author)
        return RecordRef(index=len(self._records) - 1)

    def request_erasure(self, reference: RecordRef, author: str) -> ErasureOutcome:
        """Fork: rebuild every block after the erased record."""
        if not (0 <= reference.index < len(self._records)):
            return ErasureOutcome(
                accepted=False, globally_effective=False, effort_units=0.0, detail="unknown record"
            )
        record = self._records[reference.index]
        if record.erased:
            return ErasureOutcome(
                accepted=False,
                globally_effective=False,
                effort_units=0.0,
                detail="record was already erased by an earlier fork",
            )
        # Blocks after the erased record on the *current* chain must be re-hashed.
        position_on_chain = sum(
            1 for earlier in self._records[: reference.index] if not earlier.erased
        )
        rehashed = max(0, self._chain.record_count() - position_on_chain - 1)
        record.erased = True
        self._rebuild()
        self.forks_performed += 1
        effort = self._effort.charge(float(rehashed + 1))
        return ErasureOutcome(
            accepted=True,
            globally_effective=True,
            effort_units=effort,
            detail=f"hard fork rebuilt {rehashed} successor blocks; all nodes must switch chains",
        )

    def storage_bytes(self) -> int:
        """Storage of the current canonical chain."""
        return self._chain.storage_bytes()

    def record_count(self) -> int:
        """Records on the canonical chain."""
        return self._chain.record_count()

    def record_retrievable(self, reference: RecordRef) -> bool:
        """A record is readable until it was erased by a fork."""
        if not (0 <= reference.index < len(self._records)):
            return False
        return not self._records[reference.index].erased

    def record_exists(self, data: Mapping[str, Any], author: str) -> bool:
        """Content-based lookup used by the comparison benchmark."""
        return any(
            block.data == dict(data) and block.author == author for block in self._chain.blocks
        )

    @property
    def total_effort(self) -> float:
        """Accumulated rebuild effort."""
        return self._effort.total

    def verify(self) -> bool:
        """The rebuilt chain must always verify."""
        blocks = self._chain.blocks
        previous = GENESIS_PREVIOUS_HASH
        for block in blocks:
            if block.previous_hash != previous:
                return False
            previous = block.block_hash
        return True

    def capabilities(self) -> dict[str, Any]:
        """Hard forks delete globally but at linear cost per deletion."""
        return {
            "name": self.name,
            "selective_deletion": True,
            "global_effect": True,
            "keeps_chain_verifiable": True,
            "requires_trapdoor_holder": False,
        }

    @staticmethod
    def rebuild_cost(chain_length: int, erase_index: int) -> int:
        """Analytic cost model: blocks to re-hash for one erasure."""
        return max(0, chain_length - erase_index - 1) + 1
