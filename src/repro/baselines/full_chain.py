"""Baseline: conventional immutable blockchain (no deletion at all).

This is the status quo the paper argues against in Section I: the chain only
ever grows, unwanted content cannot be removed, and every full node carries
the complete history (Bitcoin's ~300 GB motivation).  It also serves as the
growth baseline for the data-reduction benchmark (claim C1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.baselines.base import BaselineSystem, ErasureOutcome, RecordRef, payload_size
from repro.crypto.hashing import GENESIS_PREVIOUS_HASH, hash_hex


@dataclass
class SimpleBlock:
    """A minimal immutable block: header plus one record."""

    index: int
    previous_hash: str
    data: dict[str, Any]
    author: str
    block_hash: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.block_hash:
            self.block_hash = hash_hex(
                {
                    "index": self.index,
                    "previous_hash": self.previous_hash,
                    "data": self.data,
                    "author": self.author,
                }
            )

    def byte_size(self) -> int:
        """Approximate serialised size."""
        return payload_size(self.data) + 2 * 64 + 16


class ImmutableChain(BaselineSystem):
    """Append-only hash chain without summary blocks."""

    name = "immutable-full-chain"

    def __init__(self) -> None:
        self._blocks: list[SimpleBlock] = []

    def append_record(self, data: Mapping[str, Any], author: str) -> RecordRef:
        """Append one record as a new block."""
        previous_hash = self._blocks[-1].block_hash if self._blocks else GENESIS_PREVIOUS_HASH
        block = SimpleBlock(
            index=len(self._blocks),
            previous_hash=previous_hash,
            data=dict(data),
            author=author,
        )
        self._blocks.append(block)
        return RecordRef(index=block.index)

    def request_erasure(self, reference: RecordRef, author: str) -> ErasureOutcome:
        """Erasure is impossible without breaking the hash chain."""
        return ErasureOutcome(
            accepted=False,
            globally_effective=False,
            effort_units=0.0,
            detail="immutable chain: deletion would break the hash chain",
        )

    def storage_bytes(self) -> int:
        """Every node stores every block forever."""
        return sum(block.byte_size() for block in self._blocks)

    def record_count(self) -> int:
        """All records remain retrievable."""
        return len(self._blocks)

    def record_retrievable(self, reference: RecordRef) -> bool:
        """Records are never removed."""
        return 0 <= reference.index < len(self._blocks)

    def verify(self) -> bool:
        """Check the hash chain (used by tests and the hard-fork baseline)."""
        previous = GENESIS_PREVIOUS_HASH
        for block in self._blocks:
            if block.previous_hash != previous:
                return False
            previous = block.block_hash
        return True

    @property
    def blocks(self) -> list[SimpleBlock]:
        """The underlying blocks (read-only use)."""
        return list(self._blocks)

    def capabilities(self) -> dict[str, Any]:
        """Immutable chains offer no deletion whatsoever."""
        return {
            "name": self.name,
            "selective_deletion": False,
            "global_effect": False,
            "keeps_chain_verifiable": True,
            "requires_trapdoor_holder": False,
        }
