"""Comparison baselines from the related-work discussion (Section III)."""

from repro.baselines.base import BaselineSystem, EffortCounter, ErasureOutcome, RecordRef
from repro.baselines.chameleon_chain import RedactableChain
from repro.baselines.full_chain import ImmutableChain, SimpleBlock
from repro.baselines.hard_fork import HardForkChain
from repro.baselines.offchain import OffChainStore
from repro.baselines.pruning import LocalPruningNode
from repro.baselines.selective import SelectiveDeletionSystem

__all__ = [
    "BaselineSystem",
    "EffortCounter",
    "ErasureOutcome",
    "RecordRef",
    "RedactableChain",
    "ImmutableChain",
    "SimpleBlock",
    "HardForkChain",
    "OffChainStore",
    "LocalPruningNode",
    "SelectiveDeletionSystem",
]
