"""The paper's system wrapped in the baseline-comparison interface.

Lets the comparison benchmark (claim C5) sweep the selective-deletion chain
with exactly the same driver code as the Section III alternatives.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.baselines.base import BaselineSystem, EffortCounter, ErasureOutcome, RecordRef
from repro.core.chain import Blockchain
from repro.core.config import ChainConfig
from repro.core.entry import EntryReference


class SelectiveDeletionSystem(BaselineSystem):
    """Adapter exposing :class:`Blockchain` through the baseline interface."""

    name = "selective-deletion"

    def __init__(self, config: Optional[ChainConfig] = None) -> None:
        self.chain = Blockchain(config or ChainConfig.paper_evaluation())
        self._effort = EffortCounter()
        self._references: dict[int, EntryReference] = {}
        self._next_index = 0

    def append_record(self, data: Mapping[str, Any], author: str) -> RecordRef:
        """Each record becomes one block, as in the paper's evaluation."""
        block = self.chain.add_entry_block(dict(data), author)
        reference = RecordRef(index=self._next_index)
        self._references[reference.index] = EntryReference(block.block_number, 1)
        self._next_index += 1
        return reference

    def request_erasure(self, reference: RecordRef, author: str) -> ErasureOutcome:
        """Submit a deletion request; effort is one entry plus quorum approval."""
        target = self._references.get(reference.index)
        if target is None:
            return ErasureOutcome(
                accepted=False, globally_effective=False, effort_units=0.0, detail="unknown record"
            )
        decision = self.chain.request_deletion(target, author)
        self.chain.seal_block()
        effort = self._effort.charge(1.0)
        return ErasureOutcome(
            accepted=decision.is_approved,
            globally_effective=decision.is_approved,
            effort_units=effort,
            detail=decision.reason,
        )

    def drain_retention(self, *, max_cycles: int = 64) -> int:
        """Advance the chain with empty blocks until pending deletions execute.

        Returns the number of filler blocks appended.  Models the delayed
        nature of deletion (Section IV-D3): the comparison measures state
        *after* the summarisation cycles had a chance to run.
        """
        appended = 0
        for _ in range(max_cycles):
            outstanding = [
                self._references[index]
                for index in self._references
                if self.chain.is_marked_for_deletion(self._references[index])
                and self.chain.find_entry(self._references[index]) is not None
            ]
            if not outstanding:
                break
            self.chain.add_entry_block({"D": "filler", "K": "system", "S": "sig_system"}, "system")
            appended += 1
        return appended

    def storage_bytes(self) -> int:
        """Living chain size (shrinks after marker shifts)."""
        return self.chain.byte_size()

    def record_count(self) -> int:
        """Records still retrievable from the living chain."""
        return sum(
            1
            for reference in self._references.values()
            if self.chain.find_entry(reference) is not None
        )

    def record_retrievable(self, reference: RecordRef) -> bool:
        """True while the record (or its summary copy) is still in the chain."""
        target = self._references.get(reference.index)
        return target is not None and self.chain.find_entry(target) is not None

    @property
    def total_effort(self) -> float:
        """Accumulated erasure effort."""
        return self._effort.total

    def capabilities(self) -> dict[str, Any]:
        """Selective deletion is global, chain-shrinking and trapdoor-free."""
        return {
            "name": self.name,
            "selective_deletion": True,
            "global_effect": True,
            "keeps_chain_verifiable": True,
            "requires_trapdoor_holder": False,
        }
