"""Baseline: chameleon-hash redactable blockchain.

Section III cites redactable blockchains built from chameleon hashes
(Ateniese et al.; Camenisch et al.) and criticises that they *"leave the
responsibility with the key owners and produce a lot [of] effort"*.  This
baseline implements the construction: block contents are bound to the chain
through a chameleon hash, and whoever holds the trapdoor can replace a
block's content with a redacted version without changing any hash.

The comparison captures the paper's two criticisms quantitatively: the
trapdoor holder is a single point of trust (``requires_trapdoor_holder``),
and redaction leaves a block in place (the chain never shrinks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.baselines.base import BaselineSystem, EffortCounter, ErasureOutcome, RecordRef, payload_size
from repro.crypto.chameleon import ChameleonHash
from repro.crypto.hashing import GENESIS_PREVIOUS_HASH, hash_hex


@dataclass
class RedactableBlock:
    """A block whose content hash is a chameleon hash."""

    index: int
    previous_hash: str
    data: dict[str, Any]
    author: str
    randomness: int
    content_digest: int
    redacted: bool = False

    def header_hash(self) -> str:
        """Outer header hash binding the chameleon digest into the chain."""
        return hash_hex(
            {
                "index": self.index,
                "previous_hash": self.previous_hash,
                "content_digest": str(self.content_digest),
            }
        )

    def byte_size(self) -> int:
        """Approximate serialised size (content plus chameleon randomness)."""
        return payload_size(self.data) + 2 * 64 + 128


class RedactableChain(BaselineSystem):
    """Chameleon-hash chain with trapdoor-based redaction."""

    name = "chameleon-redaction"
    #: Work units charged per redaction: finding the collision plus the
    #: multi-party coordination overhead the paper points at.
    REDACTION_EFFORT = 25.0

    def __init__(self, *, trapdoor_seed: str = "redaction-committee") -> None:
        self._hasher = ChameleonHash.from_seed(trapdoor_seed)
        self._blocks: list[RedactableBlock] = []
        self._effort = EffortCounter()

    def append_record(self, data: Mapping[str, Any], author: str) -> RecordRef:
        """Append a record bound by a chameleon hash."""
        previous_hash = self._blocks[-1].header_hash() if self._blocks else GENESIS_PREVIOUS_HASH
        randomness = (len(self._blocks) * 7919 + 13) % self._hasher.parameters.q or 1
        content = {"data": dict(data), "author": author}
        digest = self._hasher.digest(content, randomness)
        block = RedactableBlock(
            index=len(self._blocks),
            previous_hash=previous_hash,
            data=dict(data),
            author=author,
            randomness=randomness,
            content_digest=digest,
        )
        self._blocks.append(block)
        return RecordRef(index=block.index)

    def request_erasure(self, reference: RecordRef, author: str) -> ErasureOutcome:
        """Redact the block content using the trapdoor collision."""
        if not (0 <= reference.index < len(self._blocks)):
            return ErasureOutcome(
                accepted=False, globally_effective=False, effort_units=0.0, detail="unknown record"
            )
        block = self._blocks[reference.index]
        old_content = {"data": block.data, "author": block.author}
        new_content = {"data": {"redacted": True}, "author": block.author}
        collision = self._hasher.find_collision(old_content, block.randomness, new_content)
        block.data = {"redacted": True}
        block.randomness = collision.new_randomness
        block.redacted = True
        effort = self._effort.charge(self.REDACTION_EFFORT)
        return ErasureOutcome(
            accepted=True,
            globally_effective=True,
            effort_units=effort,
            detail="trapdoor holder computed a chameleon collision and redacted the block",
        )

    def verify(self) -> bool:
        """Check chameleon digests and the outer hash chain."""
        previous = GENESIS_PREVIOUS_HASH
        for block in self._blocks:
            if block.previous_hash != previous:
                return False
            content = {"data": block.data, "author": block.author}
            if not self._hasher.verify(content, block.randomness, block.content_digest):
                return False
            previous = block.header_hash()
        return True

    def storage_bytes(self) -> int:
        """Redaction never shrinks the chain; every block stays."""
        return sum(block.byte_size() for block in self._blocks)

    def record_count(self) -> int:
        """Number of blocks still carrying their original payload."""
        return sum(1 for block in self._blocks if not block.redacted)

    def record_retrievable(self, reference: RecordRef) -> bool:
        """Redacted blocks no longer expose the original record."""
        if not (0 <= reference.index < len(self._blocks)):
            return False
        return not self._blocks[reference.index].redacted

    @property
    def total_effort(self) -> float:
        """Accumulated redaction effort."""
        return self._effort.total

    @property
    def block_count(self) -> int:
        """Total blocks including redacted ones (the chain never shortens)."""
        return len(self._blocks)

    def capabilities(self) -> dict[str, Any]:
        """Redaction is selective and global but needs a trusted trapdoor holder."""
        return {
            "name": self.name,
            "selective_deletion": True,
            "global_effect": True,
            "keeps_chain_verifiable": True,
            "requires_trapdoor_holder": True,
        }
