"""Common interface of the comparison baselines (Section III related work).

Every baseline models one of the alternatives the paper discusses — keeping
the full immutable chain, pruning locally, hard-forking, chameleon-hash
redaction, and off-chain storage of the payload — behind one small interface
so the comparison benchmark (DESIGN.md, claim C5) can sweep them uniformly:

* ``append_record`` adds one data record,
* ``request_erasure`` attempts to remove a record and reports whether the
  removal is *globally effective* (gone from what every node stores),
* ``storage_bytes`` / ``record_count`` measure what a full node must keep,
* ``erasure_effort`` accumulates the work units spent on erasures,
* ``capabilities`` summarises the qualitative properties.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping, Optional


@dataclass(frozen=True)
class RecordRef:
    """Reference to a record inside a baseline system."""

    index: int


@dataclass(frozen=True)
class ErasureOutcome:
    """Result of one erasure attempt against a baseline."""

    accepted: bool
    globally_effective: bool
    effort_units: float
    detail: str = ""


class BaselineSystem(ABC):
    """Interface shared by the selective-deletion chain and all baselines."""

    #: Short name used in comparison tables.
    name: str = "abstract"

    @abstractmethod
    def append_record(self, data: Mapping[str, Any], author: str) -> RecordRef:
        """Store one record and return its reference."""

    @abstractmethod
    def request_erasure(self, reference: RecordRef, author: str) -> ErasureOutcome:
        """Attempt to erase a record."""

    @abstractmethod
    def storage_bytes(self) -> int:
        """Bytes a full node must currently store."""

    @abstractmethod
    def record_count(self) -> int:
        """Number of records still retrievable from the system."""

    @abstractmethod
    def record_retrievable(self, reference: RecordRef) -> bool:
        """True when the record's payload can still be read back."""

    def capabilities(self) -> dict[str, Any]:
        """Qualitative properties for the comparison table."""
        return {
            "name": self.name,
            "selective_deletion": False,
            "global_effect": False,
            "keeps_chain_verifiable": True,
            "requires_trapdoor_holder": False,
        }


class EffortCounter:
    """Small helper accumulating erasure work units for a baseline."""

    def __init__(self) -> None:
        self.total = 0.0
        self.operations = 0

    def charge(self, units: float) -> float:
        """Add work units and return them (for convenient inlining)."""
        self.total += units
        self.operations += 1
        return units


def payload_size(data: Mapping[str, Any]) -> int:
    """Approximate serialised size of a record payload."""
    from repro.crypto.hashing import canonical_json

    return len(canonical_json(dict(data)).encode("utf-8"))
