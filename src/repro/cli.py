"""Command-line driver.

``python -m repro`` (or the ``selective-deletion`` console script) exposes the
paper's evaluation scenario and the main analyses without writing any code:

* ``scenario`` — replay the Figs. 6-8 logging scenario and print the console
  dumps,
* ``growth``   — compare chain growth with and without selective deletion,
* ``attack``   — print the 51 %-attack resistance table (Fig. 9),
* ``compare``  — run the baseline comparison (Section III alternatives).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analysis.attack import attack_resistance_table
from repro.analysis.compare import run_comparison
from repro.analysis.metrics import final_reduction_factor
from repro.analysis.report import (
    render_chain,
    render_comparison_table,
    render_sequences,
    render_statistics,
)
from repro.core.chain import Blockchain
from repro.core.config import ChainConfig
from repro.core.schema import default_log_schema
from repro.workloads.base import replay
from repro.workloads.logging import LoginAuditWorkload, PaperScenarioWorkload


def _run_scenario(args: argparse.Namespace) -> int:
    chain = Blockchain(ChainConfig.paper_evaluation(), schema=default_log_schema())
    replay(PaperScenarioWorkload(extra_cycles=args.cycles), chain)
    print(render_chain(chain, header="selective deletion — paper scenario"))
    print(render_statistics(chain))
    print(render_sequences(chain))
    return 0


def _run_growth(args: argparse.Namespace) -> int:
    bounded = Blockchain(ChainConfig.paper_evaluation())
    unbounded = Blockchain(ChainConfig(sequence_length=3))
    workload = LoginAuditWorkload(num_events=args.events, num_users=5, seed=1)
    replay(workload, bounded)
    replay(LoginAuditWorkload(num_events=args.events, num_users=5, seed=1), unbounded)
    factor = final_reduction_factor(bounded.byte_size(), unbounded.byte_size())
    print(f"events replayed:          {args.events}")
    print(f"bounded chain blocks:     {bounded.length} ({bounded.byte_size()} bytes)")
    print(f"unbounded chain blocks:   {unbounded.length} ({unbounded.byte_size()} bytes)")
    print(f"storage reduction factor: {factor:.2f}x")
    return 0


def _run_attack(args: argparse.Namespace) -> int:
    rows = attack_resistance_table(
        chain_lengths=[10, 50, 100],
        attacker_shares=[0.2, 0.35, 0.45],
        trials=args.trials,
    )
    formatted = [
        {
            "chain_length": int(row["chain_length"]),
            "attacker_share": row["attacker_share"],
            "redundancy": "middle-seq" if row["redundancy"] else "none",
            "blocks_to_rewrite": int(row["blocks_to_rewrite"]),
            "analytic_success": f"{row['analytic_success']:.4f}",
            "simulated_success": f"{row['simulated_success']:.4f}",
        }
        for row in rows
    ]
    print(
        render_comparison_table(
            formatted,
            columns=[
                "chain_length",
                "attacker_share",
                "redundancy",
                "blocks_to_rewrite",
                "analytic_success",
                "simulated_success",
            ],
            title="51% attack resistance (Fig. 9)",
        )
    )
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    rows = [row.as_dict() for row in run_comparison(num_records=args.records)]
    print(
        render_comparison_table(
            rows,
            columns=[
                "system",
                "records",
                "erasures",
                "effective",
                "readable",
                "storage_bytes",
                "effort",
                "selective",
                "global",
                "trapdoor",
            ],
            title="Baseline comparison (Section III alternatives)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="selective-deletion",
        description="Reproduction of 'Selective Deletion in a Blockchain' (ICDCS 2020)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser("scenario", help="replay the Figs. 6-8 logging scenario")
    scenario.add_argument("--cycles", type=int, default=2, help="extra summarisation cycles")
    scenario.set_defaults(func=_run_scenario)

    growth = subparsers.add_parser("growth", help="bounded vs unbounded chain growth")
    growth.add_argument("--events", type=int, default=300, help="number of login events")
    growth.set_defaults(func=_run_growth)

    attack = subparsers.add_parser("attack", help="51% attack resistance table")
    attack.add_argument("--trials", type=int, default=500, help="Monte-Carlo trials per cell")
    attack.set_defaults(func=_run_attack)

    compare = subparsers.add_parser("compare", help="baseline comparison table")
    compare.add_argument("--records", type=int, default=120, help="records per system")
    compare.set_defaults(func=_run_compare)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
