"""Command-line driver.

``python -m repro`` (or the ``selective-deletion`` console script) exposes the
paper's evaluation scenario and the main analyses without writing any code:

* ``scenario`` — replay the Figs. 6-8 logging scenario and print the console
  dumps; ``--via remote`` drives a replicated anchor deployment and
  ``--store wal`` runs the chain on the durable journal backend,
* ``growth``   — compare chain growth with and without selective deletion,
* ``attack``   — print the 51 %-attack resistance table (Fig. 9),
* ``compare``  — run the baseline comparison (Section III alternatives),
* ``parity``   — replay one workload through the local, durable and
  networked ledger clients and check the statistics are identical,
* ``simulate`` — run a named scenario from the deterministic-kernel
  catalogue (``--list`` shows it) and print the result as JSON,
* ``profile``  — run named scenarios under cProfile and print the top
  offenders (``--json`` for machine-readable rows),
* ``lint``     — run the static-analysis pass (determinism, protocol and
  docs invariants) over the tree; nonzero exit on any unsuppressed finding.

Every replay goes through the :class:`~repro.service.client.LedgerClient`
protocol, so the commands exercise the same layered service API applications
use.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.attack import attack_resistance_table
from repro.analysis.compare import run_comparison
from repro.analysis.metrics import final_reduction_factor
from repro.analysis.report import (
    render_chain,
    render_comparison_table,
    render_sequences,
    render_statistics,
)
from repro.core.chain import Blockchain
from repro.core.config import ChainConfig
from repro.core.schema import default_log_schema
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.network.scenarios import (
    ScenarioError,
    run_scenario,
    scenario_catalogue,
    scenario_names,
    validate_overrides,
)
from repro.network.simulator import NetworkSimulator
from repro.service.client import LedgerClient, LocalLedgerClient
from repro.storage.wal import JournalBlockStore
from repro.workloads.base import replay
from repro.workloads.logging import LoginAuditWorkload, PaperScenarioWorkload


def _build_chain(args: argparse.Namespace, config: ChainConfig, **chain_kwargs) -> Blockchain:
    """Chain on the requested storage backend (``--store``)."""
    if getattr(args, "store", "memory") == "wal":
        journal = Path(args.store_path or tempfile.mkdtemp(prefix="repro-wal-")) / "chain.journal"
        print(f"[storage] journal backend at {journal}")
        return Blockchain(config, store=JournalBlockStore(journal), **chain_kwargs)
    return Blockchain(config, **chain_kwargs)


def _run_scenario(args: argparse.Namespace) -> int:
    config = ChainConfig.paper_evaluation()
    workload = PaperScenarioWorkload(extra_cycles=args.cycles)
    if args.via == "remote":
        simulator = NetworkSimulator(
            anchor_count=3, config=config, schema=default_log_schema()
        )
        replay(workload, simulator.ledger_client())
        chain = simulator.producer.chain
        header = "selective deletion — paper scenario (3 anchor nodes)"
    else:
        chain = _build_chain(args, config, schema=default_log_schema())
        replay(workload, LocalLedgerClient(chain))
        header = "selective deletion — paper scenario"
    print(render_chain(chain, header=header))
    print(render_statistics(chain))
    print(render_sequences(chain))
    if args.via == "remote":
        print(f"replicas in sync: {simulator.sync_check().in_sync}")
    return 0


def _run_growth(args: argparse.Namespace) -> int:
    bounded = _build_chain(args, ChainConfig.paper_evaluation())
    unbounded = Blockchain(ChainConfig(sequence_length=3))
    replay(
        LoginAuditWorkload(num_events=args.events, num_users=5, seed=1),
        LocalLedgerClient(bounded),
    )
    replay(
        LoginAuditWorkload(num_events=args.events, num_users=5, seed=1),
        LocalLedgerClient(unbounded),
    )
    factor = final_reduction_factor(bounded.byte_size(), unbounded.byte_size())
    print(f"events replayed:          {args.events}")
    print(f"bounded chain blocks:     {bounded.length} ({bounded.byte_size()} bytes)")
    print(f"unbounded chain blocks:   {unbounded.length} ({unbounded.byte_size()} bytes)")
    print(f"storage reduction factor: {factor:.2f}x")
    return 0


def _run_parity(args: argparse.Namespace) -> int:
    """Replay one workload through every backend; compare the statistics."""
    config = ChainConfig.paper_evaluation()

    def workload() -> LoginAuditWorkload:
        return LoginAuditWorkload(
            num_events=args.events,
            num_users=4,
            deletion_rate=0.2,
            idle_rate=0.1,
            seed=args.seed,
        )

    journal = Path(tempfile.mkdtemp(prefix="repro-parity-")) / "chain.journal"
    simulator = NetworkSimulator(anchor_count=3, config=config)
    clients: dict[str, LedgerClient] = {
        "local/memory": LocalLedgerClient(Blockchain(config)),
        "local/wal": LocalLedgerClient(Blockchain(config, store=JournalBlockStore(journal))),
        "remote/3-anchors": simulator.ledger_client(),
    }
    statistics = {}
    for label, client in clients.items():
        replay(workload(), client)
        statistics[label] = client.statistics()
        print(f"{label:17s} -> {statistics[label]}")
    values = list(statistics.values())
    identical = all(value == values[0] for value in values)
    print(f"\nstatistics identical across backends: {identical}")
    print(f"replicas in sync: {simulator.sync_check().in_sync}")
    return 0 if identical else 1


def _parse_scenario_params(items: list[str]) -> dict:
    """Parse repeated ``--param KEY=VALUE`` overrides.

    Values are parsed as JSON (so numbers, booleans and lists work) with a
    plain-string fallback; validation against the scenario's parameter set
    happens in :func:`run_scenario`, which names any offending key.
    """
    overrides: dict = {}
    for item in items:
        key, separator, raw = item.partition("=")
        if not separator or not key:
            raise ValueError(f"--param expects KEY=VALUE, got {item!r}")
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw
    return overrides


def _run_simulate(args: argparse.Namespace) -> int:
    """Run scenarios from the deterministic-kernel catalogue."""
    if args.list:
        for entry in scenario_catalogue():
            print(f"{entry.name:22s} {entry.description}")
        return 0
    if args.scenario is None:
        print("simulate: pass --scenario NAME (or --list to see the catalogue)")
        return 2
    try:
        overrides = _parse_scenario_params(args.param)
    except ValueError as exc:
        print(f"simulate: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "clients", None) is not None:
        overrides["n_clients"] = args.clients
    if getattr(args, "shards", None) is not None:
        overrides["shards"] = args.shards
    names = scenario_names() if args.scenario == "all" else [args.scenario]
    try:
        # Validate overrides against *every* selected scenario up front, so
        # `--scenario all --param typo=1` is rejected before anything runs
        # instead of aborting mid-run with partial output.
        for name in names:
            validate_overrides(name, overrides)
    except ScenarioError as exc:
        print(f"simulate: {exc}", file=sys.stderr)
        return 2
    status = 0
    for name in names:
        try:
            result = run_scenario(name, seed=args.seed, smoke=args.smoke, **overrides)
        except ScenarioError as exc:
            print(f"simulate: {exc}", file=sys.stderr)
            return 2
        except (TypeError, ValueError) as exc:
            # Wrong-typed values are rejected up front by validate_overrides;
            # what remains here are domain violations a workload constructor
            # refuses (`records=-5`).  Without overrides the defaults are
            # known-good, so the same exception is an internal bug: let the
            # traceback through rather than blaming a parameter.
            if not overrides:
                raise
            print(
                f"simulate: scenario {name!r} rejected the given parameters: {exc}",
                file=sys.stderr,
            )
            return 2
        if args.check_determinism:
            rerun = run_scenario(name, seed=args.seed, smoke=args.smoke, **overrides)
            identical = json.dumps(result, sort_keys=True) == json.dumps(rerun, sort_keys=True)
            # stderr, so the verdict survives a piped/redirected stdout
            # (the CI smoke job discards the JSON payload).
            print(
                f"[determinism] {name}: byte-identical across two runs: {identical}",
                file=sys.stderr,
            )
            if not identical:
                status = 1
        print(json.dumps(result, indent=2, sort_keys=True))
    return status


def _run_profile(args: argparse.Namespace) -> int:
    """Profile named scenarios; print the top offenders (optionally JSON)."""
    from repro.analysis.profiling import profile_scenarios, render_profile

    if args.list:
        for entry in scenario_catalogue():
            print(f"{entry.name:22s} {entry.description}")
        return 0
    if args.scenario is None:
        print("profile: pass --scenario NAME (or --list to see the catalogue)")
        return 2
    try:
        overrides = _parse_scenario_params(args.param)
    except ValueError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    names = scenario_names() if args.scenario == "all" else [args.scenario]
    try:
        for name in names:
            validate_overrides(name, overrides)
        report = profile_scenarios(
            names,
            seed=args.seed,
            smoke=args.smoke,
            top=args.top,
            sort=args.sort,
            overrides=overrides,
        )
    except (ScenarioError, ValueError) as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 2
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"[profile] JSON report written to {args.json}")
    print(render_profile(report))
    return 0


def _run_attack(args: argparse.Namespace) -> int:
    rows = attack_resistance_table(
        chain_lengths=[10, 50, 100],
        attacker_shares=[0.2, 0.35, 0.45],
        trials=args.trials,
    )
    formatted = [
        {
            "chain_length": int(row["chain_length"]),
            "attacker_share": row["attacker_share"],
            "redundancy": "middle-seq" if row["redundancy"] else "none",
            "blocks_to_rewrite": int(row["blocks_to_rewrite"]),
            "analytic_success": f"{row['analytic_success']:.4f}",
            "simulated_success": f"{row['simulated_success']:.4f}",
        }
        for row in rows
    ]
    print(
        render_comparison_table(
            formatted,
            columns=[
                "chain_length",
                "attacker_share",
                "redundancy",
                "blocks_to_rewrite",
                "analytic_success",
                "simulated_success",
            ],
            title="51% attack resistance (Fig. 9)",
        )
    )
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    rows = [row.as_dict() for row in run_comparison(num_records=args.records)]
    print(
        render_comparison_table(
            rows,
            columns=[
                "system",
                "records",
                "erasures",
                "effective",
                "readable",
                "storage_bytes",
                "effort",
                "selective",
                "global",
                "trapdoor",
            ],
            title="Baseline comparison (Section III alternatives)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="selective-deletion",
        description="Reproduction of 'Selective Deletion in a Blockchain' (ICDCS 2020)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser("scenario", help="replay the Figs. 6-8 logging scenario")
    scenario.add_argument("--cycles", type=int, default=2, help="extra summarisation cycles")
    scenario.add_argument(
        "--via",
        choices=["local", "remote"],
        default="local",
        help="drive the chain in-process or through a 3-anchor deployment",
    )
    scenario.add_argument(
        "--store",
        choices=["memory", "wal"],
        default="memory",
        help="storage backend for the local chain",
    )
    scenario.add_argument("--store-path", default=None, help="directory for the wal journal")
    scenario.set_defaults(func=_run_scenario)

    growth = subparsers.add_parser("growth", help="bounded vs unbounded chain growth")
    growth.add_argument("--events", type=int, default=300, help="number of login events")
    growth.add_argument(
        "--store",
        choices=["memory", "wal"],
        default="memory",
        help="storage backend for the bounded chain",
    )
    growth.add_argument("--store-path", default=None, help="directory for the wal journal")
    growth.set_defaults(func=_run_growth)

    parity = subparsers.add_parser(
        "parity", help="same workload through local, durable and networked clients"
    )
    parity.add_argument("--events", type=int, default=120, help="workload events")
    parity.add_argument("--seed", type=int, default=5, help="workload seed")
    parity.set_defaults(func=_run_parity)

    simulate = subparsers.add_parser(
        "simulate", help="run a named deterministic network scenario"
    )
    simulate.add_argument(
        "--scenario",
        default=None,
        help="scenario name from the catalogue, or 'all' (see --list)",
    )
    simulate.add_argument("--seed", type=int, default=7, help="simulation seed")
    simulate.add_argument(
        "--smoke", action="store_true", help="tiny parameters (CI smoke runs)"
    )
    simulate.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one scenario parameter (repeatable); VALUE is JSON or a string",
    )
    simulate.add_argument(
        "--clients",
        type=int,
        default=None,
        metavar="N",
        help="shorthand for --param n_clients=N (fleet size on workload scenarios)",
    )
    simulate.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="shorthand for --param shards=K (deployment count on sharded-fleet)",
    )
    simulate.add_argument(
        "--check-determinism",
        action="store_true",
        help="run twice and verify the results are byte-identical",
    )
    simulate.add_argument(
        "--list", action="store_true", help="list the scenario catalogue and exit"
    )
    simulate.set_defaults(func=_run_simulate)

    profile = subparsers.add_parser(
        "profile", help="run scenarios under cProfile and print the top offenders"
    )
    profile.add_argument(
        "--scenario",
        default=None,
        help="scenario name from the catalogue, or 'all' (see --list)",
    )
    profile.add_argument("--seed", type=int, default=7, help="simulation seed")
    profile.add_argument(
        "--smoke", action="store_true", help="tiny parameters (quick profiles)"
    )
    profile.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one scenario parameter (repeatable); VALUE is JSON or a string",
    )
    profile.add_argument("--top", type=int, default=25, help="rows to report")
    profile.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "calls"],
        default="cumulative",
        help="profile sort order",
    )
    profile.add_argument(
        "--json", default=None, metavar="PATH", help="also write the report as JSON"
    )
    profile.add_argument(
        "--list", action="store_true", help="list the scenario catalogue and exit"
    )
    profile.set_defaults(func=_run_profile)

    attack = subparsers.add_parser("attack", help="51% attack resistance table")
    attack.add_argument("--trials", type=int, default=500, help="Monte-Carlo trials per cell")
    attack.set_defaults(func=_run_attack)

    compare = subparsers.add_parser("compare", help="baseline comparison table")
    compare.add_argument("--records", type=int, default=120, help="records per system")
    compare.set_defaults(func=_run_compare)

    lint = subparsers.add_parser(
        "lint", help="static analysis: determinism, protocol and docs invariants"
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=run_lint_command)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
