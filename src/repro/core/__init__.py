"""Core of the selective-deletion blockchain: the paper's primary contribution.

This package contains the data model (entries, blocks, summary blocks,
sequences), the chain façade with the shifting genesis marker, the
summarisation and retention machinery, deletion requests with delayed
execution, temporary entries, and chain validation.
"""

from repro.core.aggregation import AggregatedRecord, EntryAggregator, aggregate_events, compression_ratio
from repro.core.block import Block, BlockType, RedundancyRecord, make_genesis_block
from repro.core.chain import Blockchain, ChainEvent
from repro.core.clock import FixedClock, LogicalClock, SimulationClock, SystemClock
from repro.core.config import (
    ChainConfig,
    LengthUnit,
    RedundancyPolicy,
    RetentionPolicy,
    ShrinkStrategy,
    SummaryMode,
)
from repro.core.deletion import (
    DeletionDecision,
    DeletionRegistry,
    DeletionStatus,
    build_deletion_request,
    default_authorizer,
)
from repro.core.entry import Entry, EntryKind, EntryReference
from repro.core.events import AUDIT_EVENT_TYPES, EventBus, EventType, Subscription
from repro.core.index import ChainIndex, SequenceAggregate, legacy_aggregates, legacy_find_entry
from repro.core.errors import (
    AuthorizationError,
    ChainIntegrityError,
    CohesionError,
    ConfigurationError,
    ConsensusError,
    DeletionError,
    RetentionError,
    SchemaError,
    SelectiveDeletionError,
    StorageError,
    SynchronisationError,
)
from repro.core.schema import EntrySchema, FieldSpec, default_log_schema, parse_schema_yaml
from repro.core.sequence import SequenceView, completed_sequences, partition_into_sequences
from repro.core.summarizer import DroppedEntry, Summarizer, SummaryResult
from repro.core.validation import (
    deletion_is_effective,
    is_traceable_extension,
    validate_block_signatures,
    validate_chain,
    verify_summary_determinism,
)

__all__ = [
    "AggregatedRecord",
    "EntryAggregator",
    "aggregate_events",
    "compression_ratio",
    "Block",
    "BlockType",
    "RedundancyRecord",
    "make_genesis_block",
    "Blockchain",
    "ChainEvent",
    "FixedClock",
    "LogicalClock",
    "SimulationClock",
    "SystemClock",
    "ChainConfig",
    "LengthUnit",
    "RedundancyPolicy",
    "RetentionPolicy",
    "ShrinkStrategy",
    "SummaryMode",
    "DeletionDecision",
    "DeletionRegistry",
    "DeletionStatus",
    "build_deletion_request",
    "default_authorizer",
    "Entry",
    "EntryKind",
    "EntryReference",
    "AUDIT_EVENT_TYPES",
    "EventBus",
    "EventType",
    "Subscription",
    "ChainIndex",
    "SequenceAggregate",
    "legacy_aggregates",
    "legacy_find_entry",
    "AuthorizationError",
    "ChainIntegrityError",
    "CohesionError",
    "ConfigurationError",
    "ConsensusError",
    "DeletionError",
    "RetentionError",
    "SchemaError",
    "SelectiveDeletionError",
    "StorageError",
    "SynchronisationError",
    "EntrySchema",
    "FieldSpec",
    "default_log_schema",
    "parse_schema_yaml",
    "SequenceView",
    "completed_sequences",
    "partition_into_sequences",
    "DroppedEntry",
    "Summarizer",
    "SummaryResult",
    "deletion_is_effective",
    "is_traceable_extension",
    "validate_block_signatures",
    "validate_chain",
    "verify_summary_determinism",
]
