"""Typed chain events and the subscribable event bus.

The paper's anchor-node architecture separates *what the chain does* (seal,
summarize, delete — Section IV) from *who is told about it*: block
announcements, synchronisation checks and the evaluation's measurements all
observe the chain from the outside.  This module is that observation seam.

:class:`EventBus` replaces the chain façade's former unbounded ``events``
list with a publish/subscribe fabric:

* every state change of the chain is published as a :class:`ChainEvent`
  carrying a typed :class:`EventType`, a human-readable detail line and a
  structured payload,
* components subscribe to the types they care about — anchor nodes announce
  freshly sealed blocks, metrics collectors accumulate deletion latencies —
  instead of polling chain state or monkey-patching hooks,
* a **bounded audit log** retains the notable events (summaries, marker
  shifts, deletions, empty blocks) for reports and snapshot round-trips;
  the high-frequency ``block-appended`` / ``block-sealed`` notifications are
  dispatched to subscribers but not retained, because they are fully
  reconstructible from the blocks themselves.

Dispatch is synchronous and in subscription order; a subscriber that
unsubscribes (itself or another subscriber) during dispatch takes effect
immediately — the cancelled callback is skipped for the remainder of the
dispatch round.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Mapping, Optional

#: Default number of audit events retained by a bus.
DEFAULT_AUDIT_LIMIT = 10_000


class EventType(str, Enum):
    """Taxonomy of everything the chain can tell the outside world."""

    #: A block (normal, received or summary) joined the living chain.
    BLOCK_APPENDED = "block-appended"
    #: The local node sealed pending entries into a new normal block.
    BLOCK_SEALED = "block-sealed"
    #: A summary block was computed for the due summary slot.
    SUMMARY_CREATED = "summary-created"
    #: The genesis marker moved; old blocks were physically cut off.
    MARKER_SHIFT = "marker-shift"
    #: A deletion request was evaluated (approved or rejected).
    DELETION_REQUESTED = "deletion-requested"
    #: An approved deletion physically took effect during a marker shift.
    DELETION_EXECUTED = "deletion-executed"
    #: The idle interval elapsed and an empty block was appended.
    EMPTY_BLOCK = "empty-block"


#: Event types retained in the bounded audit log (the chain's trail).  The
#: per-block notifications are excluded: they fire for every single block and
#: carry no information the blocks themselves do not.
AUDIT_EVENT_TYPES = frozenset(
    {
        EventType.SUMMARY_CREATED,
        EventType.MARKER_SHIFT,
        EventType.DELETION_REQUESTED,
        EventType.DELETION_EXECUTED,
        EventType.EMPTY_BLOCK,
    }
)


@dataclass
class ChainEvent:
    """One typed line of the chain's audit trail.

    ``kind`` is the string value of the :class:`EventType` (kept as a plain
    string so hand-built events and serialised trails stay representable);
    ``payload`` carries structured, JSON-serialisable context such as the
    deletion target reference or the new marker position.
    """

    block_number: int
    kind: str
    detail: str
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def type(self) -> Optional[EventType]:
        """The typed event kind, or ``None`` for unknown legacy kinds."""
        try:
            return EventType(self.kind)
        except ValueError:
            return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (snapshot persistence)."""
        payload = {
            key: value for key, value in self.payload.items() if _is_json_value(value)
        }
        return {
            "block_number": self.block_number,
            "kind": self.kind,
            "detail": self.detail,
            "payload": payload,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChainEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            block_number=int(data["block_number"]),
            kind=str(data["kind"]),
            detail=str(data.get("detail", "")),
            payload=dict(data.get("payload", {})),
        )

    def __str__(self) -> str:
        return f"[block {self.block_number}] {self.kind}: {self.detail}"


def _is_json_value(value: Any) -> bool:
    """True for values that serialise to JSON without a custom encoder."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_json_value(item) for item in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _is_json_value(v) for k, v in value.items())
    return False


#: A subscriber callback; exceptions propagate to the publisher.
Subscriber = Callable[[ChainEvent], None]


@dataclass(frozen=True)
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; pass to ``unsubscribe``."""

    token: int
    types: Optional[frozenset[EventType]]

    def matches(self, event: ChainEvent) -> bool:
        """True when this subscription wants ``event``."""
        if self.types is None:
            return True
        event_type = event.type
        return event_type is not None and event_type in self.types


class EventBus:
    """Synchronous publish/subscribe fabric with a bounded audit log."""

    def __init__(
        self,
        *,
        audit_limit: int = DEFAULT_AUDIT_LIMIT,
        audit_types: Optional[Iterable[EventType]] = None,
    ) -> None:
        if audit_limit < 0:
            raise ValueError("audit_limit must be non-negative")
        self.audit_limit = audit_limit
        self.audit_types = (
            frozenset(audit_types) if audit_types is not None else AUDIT_EVENT_TYPES
        )
        self._audit: deque[ChainEvent] = deque(maxlen=audit_limit or None)
        self._tokens = itertools.count(1)
        #: token -> (subscription, callback); insertion order == dispatch order.
        self._subscribers: dict[int, tuple[Subscription, Subscriber]] = {}
        self._published = 0

    # ------------------------------------------------------------------ #
    # Subscription management
    # ------------------------------------------------------------------ #

    def subscribe(
        self,
        callback: Subscriber,
        *,
        types: Optional[Iterable[EventType | str]] = None,
    ) -> Subscription:
        """Register ``callback`` for events of ``types`` (``None`` = all).

        Returns a :class:`Subscription` handle; subscribers fire in
        subscription order.
        """
        wanted = (
            None if types is None else frozenset(EventType(value) for value in types)
        )
        subscription = Subscription(token=next(self._tokens), types=wanted)
        self._subscribers[subscription.token] = (subscription, callback)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> bool:
        """Remove a subscription; safe to call during dispatch.

        Returns ``True`` when the subscription was still registered.
        """
        return self._subscribers.pop(subscription.token, None) is not None

    @property
    def subscriber_count(self) -> int:
        """Number of active subscriptions."""
        return len(self._subscribers)

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    def publish(self, event: ChainEvent) -> ChainEvent:
        """Record ``event`` in the audit log and dispatch it to subscribers.

        Dispatch iterates a snapshot of the current subscribers but re-checks
        registration before every call, so unsubscribing (any subscription)
        from inside a callback takes effect within the same dispatch round.
        """
        self._published += 1
        event_type = event.type
        if event_type is not None and event_type in self.audit_types and self.audit_limit:
            self._audit.append(event)
        for token, (subscription, callback) in list(self._subscribers.items()):
            if token not in self._subscribers:
                continue  # unsubscribed by an earlier callback this round
            if subscription.matches(event):
                callback(event)
        return event

    @property
    def published_count(self) -> int:
        """Total events ever published through this bus."""
        return self._published

    # ------------------------------------------------------------------ #
    # Audit log
    # ------------------------------------------------------------------ #

    @property
    def audit_log(self) -> list[ChainEvent]:
        """The retained audit events, oldest first (a bounded window)."""
        return list(self._audit)

    def restore_audit_log(self, events: Iterable[ChainEvent]) -> None:
        """Replace the audit log (snapshot load); keeps the newest entries."""
        self._audit.clear()
        self._audit.extend(events)

    def __len__(self) -> int:
        return len(self._audit)
