"""Sequences — the unit of forgetting.

Section IV-C: *"A sequence ω is a series of blocks including the summary
block at the end of each sequence."*  Summarisation, genesis shifting and
physical deletion all operate on whole sequences, never on single blocks.

Sequence boundaries are defined by absolute block numbers: with sequence
length *l*, the summary slots are the block numbers ``n`` with
``n % l == l - 1``.  Because the genesis marker only ever moves to the block
*after* a summary block, living chains always start at a sequence boundary
and the partition stays aligned no matter how often the chain has been
shortened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.core.block import Block
from repro.core.entry import Entry
from repro.core.errors import ConfigurationError
from repro.crypto.merkle import merkle_root


def is_summary_slot(block_number: int, sequence_length: int) -> bool:
    """True when ``block_number`` is a summary-block position."""
    if sequence_length < 2:
        raise ConfigurationError("sequence_length must be at least 2")
    return block_number % sequence_length == sequence_length - 1


def sequence_index_of(block_number: int, sequence_length: int) -> int:
    """Index of the sequence that contains ``block_number``."""
    if sequence_length < 2:
        raise ConfigurationError("sequence_length must be at least 2")
    return block_number // sequence_length


@dataclass
class SequenceView:
    """A contiguous slice of the living chain forming one sequence ω."""

    index: int
    blocks: list[Block]

    @property
    def first_block_number(self) -> int:
        """Block number of the first block in the sequence."""
        return self.blocks[0].block_number

    @property
    def last_block_number(self) -> int:
        """Block number of the last block in the sequence."""
        return self.blocks[-1].block_number

    @property
    def length(self) -> int:
        """Number of blocks in the sequence (the paper's l_n)."""
        return len(self.blocks)

    @property
    def is_complete(self) -> bool:
        """True when the sequence is terminated by its summary block."""
        return bool(self.blocks) and self.blocks[-1].is_summary

    @property
    def summary_block(self) -> Optional[Block]:
        """The terminating summary block, if the sequence is complete."""
        return self.blocks[-1] if self.is_complete else None

    @property
    def first_timestamp(self) -> int:
        """Timestamp of the first block."""
        return self.blocks[0].timestamp

    @property
    def last_timestamp(self) -> int:
        """Timestamp of the last block."""
        return self.blocks[-1].timestamp

    def time_span(self) -> int:
        """Covered time span of the sequence."""
        return self.last_timestamp - self.first_timestamp

    def entries(self) -> Iterator[tuple[Block, Entry]]:
        """Iterate over all (block, entry) pairs in the sequence."""
        for block in self.blocks:
            for entry in block.entries:
                yield block, entry

    def data_entries(self) -> list[tuple[Block, Entry]]:
        """All non-deletion-request entries with their containing block."""
        return [(block, entry) for block, entry in self.entries() if not entry.is_deletion_request]

    def entry_count(self) -> int:
        """Total number of entries in the sequence."""
        return sum(block.entry_count for block in self.blocks)

    def byte_size(self) -> int:
        """Approximate serialised size of the sequence."""
        return sum(block.byte_size() for block in self.blocks)

    def merkle_root(self) -> str:
        """Merkle root over the sequence's block contents (Fig. 9 redundancy).

        The blocks are hashed through their cached canonical serialisation,
        which is byte-identical to hashing ``block.to_dict()`` directly.
        """
        return merkle_root(list(self.blocks))

    def __repr__(self) -> str:
        return (
            f"SequenceView(index={self.index}, "
            f"blocks={self.first_block_number}..{self.last_block_number}, "
            f"complete={self.is_complete})"
        )


def partition_into_sequences(blocks: Iterable[Block], sequence_length: int) -> list[SequenceView]:
    """Group living blocks into sequences by their absolute block numbers.

    The final sequence may be incomplete (no terminating summary block yet);
    callers that only care about completed sequences filter on
    :attr:`SequenceView.is_complete`.
    """
    views: list[SequenceView] = []
    current_index: Optional[int] = None
    current_blocks: list[Block] = []
    for block in blocks:
        index = sequence_index_of(block.block_number, sequence_length)
        if current_index is None or index != current_index:
            if current_blocks:
                views.append(SequenceView(index=current_index, blocks=current_blocks))
            current_index = index
            current_blocks = []
        current_blocks.append(block)
    if current_blocks and current_index is not None:
        views.append(SequenceView(index=current_index, blocks=current_blocks))
    return views


def completed_sequences(blocks: Iterable[Block], sequence_length: int) -> list[SequenceView]:
    """Only the sequences already terminated by their summary block."""
    return [view for view in partition_into_sequences(blocks, sequence_length) if view.is_complete]


def middle_sequence(sequences: list[SequenceView]) -> Optional[SequenceView]:
    """Pick the middle sequence ω_{l_β/2} used for attack-hampering redundancy.

    Section V-B1 stores *"the reference to a middle sequence, for example
    ω_{l_β/2}"* in every new summary block.  With fewer than two completed
    sequences there is nothing meaningful to reference.
    """
    if len(sequences) < 2:
        return None
    return sequences[len(sequences) // 2]
