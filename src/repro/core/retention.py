"""Retention decisions: when the chain is too long and what may expire.

This module implements the decision logic of Sections IV-C and IV-D3:

* :func:`chain_exceeds_limit` — evaluates Eq. 1's condition ``l_β > l_max``
  for the configured unit (blocks, sequences, or covered time span),
* :func:`select_sequences_to_expire` — chooses which completed old sequences
  are merged into the next summary block, honouring the shrink strategy and
  the minimum-length / minimum-summary-blocks / minimum-time-span guarantees,
* :func:`entry_survives` — decides whether an individual entry is carried
  forward (not marked for deletion, not a deletion request, not an expired
  temporary entry),
* :func:`needs_empty_block` — the idle-chain progress rule that appends empty
  blocks so delayed deletions do not starve.
"""

from __future__ import annotations

from typing import Optional, Sequence as TypingSequence

from repro.core.config import ChainConfig, LengthUnit, RetentionPolicy, ShrinkStrategy
from repro.core.deletion import DeletionRegistry
from repro.core.entry import Entry
from repro.core.sequence import SequenceView


def _chain_measure(
    policy: RetentionPolicy,
    *,
    block_count: int,
    sequence_count: int,
    time_span: int,
) -> int:
    """Current chain length in the unit of the retention policy."""
    if policy.unit is LengthUnit.BLOCKS:
        return block_count
    if policy.unit is LengthUnit.SEQUENCES:
        return sequence_count
    return time_span


def chain_exceeds_limit(
    policy: RetentionPolicy,
    *,
    block_count: int,
    sequence_count: int,
    time_span: int,
) -> bool:
    """Evaluate ``l_β > l_max`` in the policy's unit (Eq. 1)."""
    if policy.max_length is None:
        return False
    measure = _chain_measure(
        policy, block_count=block_count, sequence_count=sequence_count, time_span=time_span
    )
    return measure > policy.max_length


def _violates_minimums(
    policy: RetentionPolicy,
    remaining: TypingSequence[SequenceView],
) -> bool:
    """Would the remaining sequences violate the configured minimums?"""
    remaining_blocks = sum(view.length for view in remaining)
    remaining_summaries = sum(1 for view in remaining if view.is_complete)
    if remaining_blocks < policy.min_length:
        return True
    if remaining_summaries < policy.min_summary_blocks:
        return True
    if policy.min_time_span > 0 and remaining:
        span = remaining[-1].last_timestamp - remaining[0].first_timestamp
        if span < policy.min_time_span:
            return True
    if policy.min_time_span > 0 and not remaining:
        return True
    return False


def select_sequences_to_expire(
    config: ChainConfig,
    sequences: TypingSequence[SequenceView],
    *,
    pending_summary_blocks: int = 1,
) -> list[SequenceView]:
    """Choose the completed old sequences to merge into the next summary block.

    ``sequences`` is the partition of the *living* chain, oldest first; the
    last element is the sequence currently being closed (it never expires).
    ``pending_summary_blocks`` accounts for the summary block that is about to
    be appended, so length checks reflect the post-append chain.
    """
    if len(sequences) < 2:
        return []

    policy = config.retention
    if policy.max_length is None:
        # No retention limit: Eq. 1 can never trigger.  Returning early keeps
        # summary creation O(1) on unbounded chains instead of measuring the
        # whole partition just to conclude nothing expires.
        return []
    candidates = [view for view in sequences[:-1] if view.is_complete]
    if not candidates:
        return []

    def measure_after(expired: list[SequenceView]) -> tuple[int, int, int]:
        remaining = [view for view in sequences if not any(view is gone for gone in expired)]
        block_count = sum(view.length for view in remaining) + pending_summary_blocks
        sequence_count = len(remaining)
        if remaining:
            time_span = remaining[-1].last_timestamp - remaining[0].first_timestamp
        else:
            time_span = 0
        return block_count, sequence_count, time_span

    block_count, sequence_count, time_span = measure_after([])
    if not chain_exceeds_limit(
        policy, block_count=block_count, sequence_count=sequence_count, time_span=time_span
    ):
        return []

    expired: list[SequenceView] = []
    if config.shrink_strategy is ShrinkStrategy.SINGLE_SEQUENCE:
        planned = candidates[:1]
    elif config.shrink_strategy is ShrinkStrategy.ALL_OLD:
        planned = list(candidates)
    else:  # ShrinkStrategy.TO_LIMIT — apply Eq. 1 repeatedly
        planned = []
        for candidate in candidates:
            block_count, sequence_count, time_span = measure_after(planned)
            if not chain_exceeds_limit(
                policy,
                block_count=block_count,
                sequence_count=sequence_count,
                time_span=time_span,
            ):
                break
            planned.append(candidate)

    for candidate in planned:
        tentative = expired + [candidate]
        remaining = [view for view in sequences if not any(view is gone for gone in tentative)]
        if _violates_minimums(policy, remaining):
            break
        expired = tentative
    return expired


def entry_survives(
    entry: Entry,
    *,
    containing_block_number: int,
    registry: DeletionRegistry,
    current_time: int,
    current_block: int,
) -> tuple[bool, str]:
    """Decide whether an entry is copied into the next summary block.

    Returns ``(survives, reason)`` where the reason explains a drop:

    * deletion-request entries are never copied (Section IV-D3 / Fig. 8),
    * entries marked for deletion are skipped (Section IV-D / Fig. 7),
    * expired temporary entries are skipped (Section IV-D4).
    """
    if entry.is_deletion_request:
        return False, "deletion requests are never copied into summary blocks"
    if registry.is_marked_entry(entry, containing_block_number):
        return False, "entry is marked for deletion"
    if entry.is_expired(current_time=current_time, current_block=current_block):
        return False, "temporary entry has expired"
    return True, "retained"


def needs_empty_block(
    config: ChainConfig,
    *,
    last_block_timestamp: int,
    current_time: int,
) -> bool:
    """True when an empty block should be appended to keep deletions moving.

    Section IV-D3: *"To prevent a long delay in deletion, a possibility is to
    extend the blockchain with empty blocks ... after a time interval if no
    transaction has occurred."*
    """
    if config.empty_block_interval is None:
        return False
    return current_time - last_block_timestamp >= config.empty_block_interval


def minimum_living_blocks(policy: RetentionPolicy, sequence_length: int) -> int:
    """Smallest number of living blocks the policy can ever shrink to.

    Helper for capacity planning in the benchmarks: at least the current
    (possibly still open) sequence survives, plus whatever the minimum bounds
    require.
    """
    floor = max(policy.min_length, policy.min_summary_blocks * sequence_length)
    return max(floor, 1)


def effective_max_blocks(policy: RetentionPolicy, sequence_length: int) -> Optional[int]:
    """Upper bound on living blocks implied by the policy, if expressible.

    Returns ``None`` for time-based policies, whose bound depends on the
    workload's arrival rate rather than on a block count.
    """
    if policy.max_length is None or policy.unit is LengthUnit.TIME:
        return None
    if policy.unit is LengthUnit.BLOCKS:
        return policy.max_length + sequence_length
    return (policy.max_length + 1) * sequence_length
