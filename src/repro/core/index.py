"""Incremental chain indexing: the O(1) backbone of the hot paths.

Section IV-D claims deletion-request processing is *"linear and very low as
blocks are referenced directly by number"*.  The naive implementation of the
chain façade contradicts that claim at scale: locating an entry falls back to
a linear scan over every summary block, the aggregate counters re-walk (and
re-serialise) the whole living chain on every call, and the sequence
partition is recomputed from scratch each time it is needed.

:class:`ChainIndex` restores the paper's complexity promise.  The
:class:`~repro.core.chain.Blockchain` façade maintains one instance
incrementally on every append and marker shift, giving

* an **entry-location index** mapping original ``(block number, entry
  number)`` coordinates to the living ``(block, entry)`` pair — covering both
  entries still sitting in their original block and carried-forward copies
  inside summary blocks (Fig. 4 keeps the original coordinates on copies),
* **rolling aggregates**: living entry count, serialised byte size, and
  per-sequence entry/byte counts, updated in O(changed blocks) on append and
  cut so ``entry_count()``, ``byte_size()`` and ``statistics()`` are O(1),
* an **incrementally maintained sequence partition** replacing the per-call
  :func:`~repro.core.sequence.partition_into_sequences`.

The index is a pure cache over the block list: it never influences which
blocks are built (summary determinism per Section IV-B is untouched) and it
can always be rebuilt from the blocks alone (:meth:`ChainIndex.build`), which
is exactly what ``Blockchain.from_dict`` does after loading a snapshot.

The module also keeps the legacy linear-scan implementations
(:func:`legacy_find_entry`, :func:`legacy_aggregates`) as executable
specifications; :meth:`ChainIndex.self_check` validates the incremental state
against them and is exercised by the property-based equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.block import Block
from repro.core.entry import Entry, EntryReference
from repro.core.errors import ChainIntegrityError
from repro.core.sequence import SequenceView, partition_into_sequences, sequence_index_of
from repro.crypto.hashing import canonical_json

#: Location key: the original coordinates an entry is addressed by.
LocationKey = tuple[int, int]


@dataclass
class SequenceAggregate:
    """Rolling per-sequence counters (entries and serialised bytes)."""

    entry_count: int = 0
    byte_size: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-serialisable representation for reports."""
        return {"entry_count": self.entry_count, "byte_size": self.byte_size}


class ChainIndex:
    """Incrementally maintained lookup structures over the living chain.

    The owning chain façade must call :meth:`on_append` for every block added
    to the living chain (normal, received, or summary) and
    :meth:`cut_before` when the genesis marker shifts.  All query methods are
    O(1); :meth:`sequence_views` is O(number of living blocks) because it
    returns defensive copies, while :meth:`live_views` exposes the internal
    partition without copying for read-only internal callers.
    """

    def __init__(self, sequence_length: int) -> None:
        self.sequence_length = sequence_length
        #: (block_number, entry_number) -> (block, entry) for entries still
        #: sitting in their original living block.
        self._originals: dict[LocationKey, tuple[Block, Entry]] = {}
        #: (origin_block_number, origin_entry_number) -> (block, entry) for
        #: the *newest* carried-forward copy inside a living summary block.
        self._copies: dict[LocationKey, tuple[Block, Entry]] = {}
        self._views: list[SequenceView] = []
        self._per_sequence: dict[int, SequenceAggregate] = {}
        self._entry_count = 0
        self._byte_size = 0
        self._complete_views = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, blocks: Iterable[Block], sequence_length: int) -> "ChainIndex":
        """Rebuild the full index from a block list (snapshot load path)."""
        index = cls(sequence_length)
        for block in blocks:
            index.on_append(block)
        return index

    # ------------------------------------------------------------------ #
    # Maintenance hooks
    # ------------------------------------------------------------------ #

    def on_append(self, block: Block) -> None:
        """Register a block just appended at the head of the living chain."""
        view_index = sequence_index_of(block.block_number, self.sequence_length)
        if self._views and self._views[-1].index == view_index:
            view = self._views[-1]
            if view.is_complete:
                self._complete_views -= 1
            view.blocks.append(block)
        else:
            view = SequenceView(index=view_index, blocks=[block])
            self._views.append(view)
        if view.is_complete:
            self._complete_views += 1

        aggregate = self._per_sequence.setdefault(view_index, SequenceAggregate())
        size = block.byte_size()
        aggregate.entry_count += block.entry_count
        aggregate.byte_size += size
        self._entry_count += block.entry_count
        self._byte_size += size

        seen_copies: set[LocationKey] = set()
        for entry in block.entries:
            if entry.entry_number is not None:
                original_key = (block.block_number, entry.entry_number)
                # First match wins within a block, mirroring Block.entry().
                self._originals.setdefault(original_key, (block, entry))
            if block.is_summary and entry.origin_block_number is not None:
                copy_key = (entry.origin_block_number, entry.origin_entry_number)
                if copy_key not in seen_copies:
                    seen_copies.add(copy_key)
                    # The newest living summary block wins, mirroring the
                    # legacy newest-first scan over summary blocks.
                    self._copies[copy_key] = (block, entry)

    def cut_before(self, new_marker: int, cut_blocks: Sequence[Block]) -> None:
        """Unregister the blocks removed by a genesis-marker shift.

        ``cut_blocks`` is the (oldest-first) prefix of living blocks with
        ``block_number < new_marker``; the marker only ever moves to the block
        after a summary block, so the prefix always covers whole sequences.
        """
        for block in cut_blocks:
            view_index = sequence_index_of(block.block_number, self.sequence_length)
            aggregate = self._per_sequence.get(view_index)
            size = block.byte_size()
            if aggregate is not None:
                aggregate.entry_count -= block.entry_count
                aggregate.byte_size -= size
            self._entry_count -= block.entry_count
            self._byte_size -= size
            for entry in block.entries:
                if entry.entry_number is not None:
                    original_key = (block.block_number, entry.entry_number)
                    located = self._originals.get(original_key)
                    if located is not None and located[0] is block:
                        del self._originals[original_key]
                if block.is_summary and entry.origin_block_number is not None:
                    copy_key = (entry.origin_block_number, entry.origin_entry_number)
                    located = self._copies.get(copy_key)
                    if located is not None and located[0] is block:
                        del self._copies[copy_key]

        while self._views and self._views[0].blocks:
            view = self._views[0]
            if view.last_block_number < new_marker:
                if view.is_complete:
                    self._complete_views -= 1
                self._per_sequence.pop(view.index, None)
                self._views.pop(0)
                continue
            # Partial cut inside a sequence cannot happen on the paper's
            # marker rule, but stay correct for hand-built chains.  The
            # view's last block survives (its number is >= new_marker), so
            # the view itself never empties here.
            while view.blocks and view.blocks[0].block_number < new_marker:
                view.blocks.pop(0)
            break

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def find(self, reference: EntryReference) -> Optional[tuple[Block, Entry]]:
        """O(1) located ``(block, entry)`` for a reference, or ``None``.

        The original position wins over carried-forward copies; among living
        copies the newest summary block wins — both exactly as the legacy
        linear scan resolved references.
        """
        key = (reference.block_number, reference.entry_number)
        located = self._originals.get(key)
        if located is not None:
            return located
        return self._copies.get(key)

    @property
    def entry_count(self) -> int:
        """Living entries across all blocks (rolling aggregate)."""
        return self._entry_count

    @property
    def byte_size(self) -> int:
        """Approximate serialised size of the living chain (rolling aggregate)."""
        return self._byte_size

    @property
    def view_count(self) -> int:
        """Number of living sequences."""
        return len(self._views)

    @property
    def completed_view_count(self) -> int:
        """Number of living sequences closed by their summary block."""
        return self._complete_views

    def live_views(self) -> list[SequenceView]:
        """The internal partition (shared, read-only by convention).

        The view objects are mutated in place as blocks are appended and cut;
        internal single-shot consumers (the summarizer) use this accessor to
        avoid copying, external callers should use :meth:`sequence_views`.
        """
        return list(self._views)

    def sequence_views(self) -> list[SequenceView]:
        """Defensive snapshot of the partition (stable across later appends)."""
        return [SequenceView(index=view.index, blocks=list(view.blocks)) for view in self._views]

    def sequence_aggregates(self) -> dict[int, dict[str, int]]:
        """Per-sequence rolling entry/byte counters, keyed by sequence index."""
        return {index: aggregate.to_dict() for index, aggregate in sorted(self._per_sequence.items())}

    # ------------------------------------------------------------------ #
    # Validation against the legacy linear scans
    # ------------------------------------------------------------------ #

    def self_check(self, blocks: Sequence[Block], genesis_marker: int) -> None:
        """Validate every incremental structure against the linear scans.

        Raises :class:`ChainIntegrityError` on the first divergence.  This is
        O(total entries) and intended for tests and snapshot loads, not for
        the hot path.
        """
        expected_entries, expected_bytes, expected_complete = legacy_aggregates(
            blocks, self.sequence_length
        )
        if self._entry_count != expected_entries:
            raise ChainIntegrityError(
                f"index entry count {self._entry_count} != scanned {expected_entries}"
            )
        if self._byte_size != expected_bytes:
            raise ChainIntegrityError(
                f"index byte size {self._byte_size} != scanned {expected_bytes}"
            )

        expected_views = partition_into_sequences(blocks, self.sequence_length)
        if len(expected_views) != len(self._views):
            raise ChainIntegrityError(
                f"index holds {len(self._views)} sequences, scan found {len(expected_views)}"
            )
        for ours, scanned in zip(self._views, expected_views):
            if ours.index != scanned.index or len(ours.blocks) != len(scanned.blocks):
                raise ChainIntegrityError(f"sequence {scanned.index} diverges from the scan")
            for mine, theirs in zip(ours.blocks, scanned.blocks):
                if mine is not theirs:
                    raise ChainIntegrityError(
                        f"sequence {scanned.index} references a stale block object"
                    )
            aggregate = self._per_sequence.get(ours.index)
            if aggregate is None:
                raise ChainIntegrityError(f"sequence {ours.index} is missing its aggregate")
            if aggregate.entry_count != scanned.entry_count():
                raise ChainIntegrityError(f"sequence {ours.index} entry aggregate diverges")
            if aggregate.byte_size != scanned.byte_size():
                raise ChainIntegrityError(f"sequence {ours.index} byte aggregate diverges")
        if self._complete_views != expected_complete:
            raise ChainIntegrityError(
                f"index counts {self._complete_views} complete sequences, "
                f"scan found {expected_complete}"
            )

        # Rebuild both location maps from scratch in one pass over the blocks
        # and require the incrementally maintained maps to be identical (same
        # keys, same block/entry object identities).  This catches any
        # append/cut maintenance bug in O(total entries).
        expected_originals: dict[LocationKey, tuple[Block, Entry]] = {}
        expected_copies: dict[LocationKey, tuple[Block, Entry]] = {}
        for block in blocks:
            seen_copies: set[LocationKey] = set()
            for entry in block.entries:
                if entry.entry_number is not None:
                    expected_originals.setdefault((block.block_number, entry.entry_number), (block, entry))
                if block.is_summary and entry.origin_block_number is not None:
                    copy_key = (entry.origin_block_number, entry.origin_entry_number)
                    if copy_key not in seen_copies:
                        seen_copies.add(copy_key)
                        expected_copies[copy_key] = (block, entry)
        for label, ours, expected in (
            ("original", self._originals, expected_originals),
            ("copy", self._copies, expected_copies),
        ):
            if set(ours) != set(expected):
                raise ChainIntegrityError(f"{label}-location index keys diverge from the blocks")
            for key, (block, entry) in expected.items():
                indexed_block, indexed_entry = ours[key]
                if indexed_block is not block or indexed_entry is not entry:
                    raise ChainIntegrityError(
                        f"{label}-location index for {key} references a stale object"
                    )

        # Cross-check a bounded sample of references against the retained
        # linear-scan specification — full-strength semantics (original
        # position wins, newest copy wins) without the O(entries x chain
        # length) cost of scanning per reference.  The sample size shrinks
        # with chain length so the whole cross-check stays bounded (~100k
        # block visits) even on snapshot loads of very long chains.
        budget = max(4, min(128, 100_000 // max(1, len(blocks))))
        sample: list[LocationKey] = []
        for key in expected_originals:
            sample.append(key)
            if len(sample) >= budget // 2:
                break
        for key in expected_copies:
            sample.append(key)
            if len(sample) >= budget:
                break
        sample.append((1, 99))  # a miss must miss in both implementations
        for block_number, entry_number in sample:
            if block_number < 0 or entry_number is None or entry_number < 1:
                continue
            reference = EntryReference(block_number, entry_number)
            scanned = legacy_find_entry(blocks, genesis_marker, reference)
            indexed = self.find(reference)
            if scanned is None and indexed is None:
                continue
            if (
                scanned is None
                or indexed is None
                or scanned[0] is not indexed[0]
                or scanned[1] is not indexed[1]
            ):
                raise ChainIntegrityError(f"lookup for {reference} diverges from the linear scan")


# ---------------------------------------------------------------------- #
# Legacy linear-scan reference implementations
# ---------------------------------------------------------------------- #


def legacy_find_entry(
    blocks: Sequence[Block],
    genesis_marker: int,
    reference: EntryReference,
) -> Optional[tuple[Block, Entry]]:
    """The seed's O(chain length) lookup, kept as executable specification.

    Looks first at the original block if it is still living, then scans the
    summary blocks newest-first for a carried-forward copy.  Used by the
    equivalence tests and the scaling benchmark as the baseline shape.
    """
    position = reference.block_number - genesis_marker
    block = blocks[position] if 0 <= position < len(blocks) else None
    if block is not None and block.block_number == reference.block_number:
        for candidate in block.entries:
            if candidate.entry_number == reference.entry_number:
                return block, candidate
    for candidate_block in reversed(blocks):
        if not candidate_block.is_summary:
            continue
        for candidate in candidate_block.entries:
            if (
                candidate.origin_block_number == reference.block_number
                and candidate.origin_entry_number == reference.entry_number
            ):
                return candidate_block, candidate
    return None


def legacy_aggregates(
    blocks: Sequence[Block],
    sequence_length: Optional[int] = None,
) -> tuple[int, int, int]:
    """The seed's O(chain length) counters: (entries, bytes, complete views).

    ``bytes`` walks and serialises every block, matching what ``byte_size()``
    did on each call before the rolling aggregates existed.  ``complete
    views`` repartitions the chain, matching ``completed_sequence_count()``.
    """
    entry_count = sum(block.entry_count for block in blocks)
    byte_size = sum(len(canonical_json(block.to_dict()).encode("utf-8")) for block in blocks)
    complete = 0
    if sequence_length is not None:
        views = partition_into_sequences(blocks, sequence_length)
        complete = sum(1 for view in views if view.is_complete)
    return entry_count, byte_size, complete
