"""Entries — the data records stored inside blocks.

The console figures of the paper show entries with three fields: ``D`` stores
the data record, ``K`` holds the user and ``S`` poses as the signature.  On
top of plain data entries the concept introduces two special entry flavours:

* **deletion requests** (Section IV-D): signed entries referencing the block
  number and entry number of the record to be forgotten,
* **temporary entries** (Section IV-D4): ordinary entries extended by an
  optional expiry field — a maximum timestamp τ or block number α — after
  which the entry is no longer copied into summary blocks.

Entries know their origin: when the summarizer copies an entry into a
summary block it preserves the original block number, timestamp and entry
number (Fig. 4), so provenance survives arbitrarily many summarisation
rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Mapping, Optional

from repro.core.errors import DeletionError, SchemaError


class EntryKind(str, Enum):
    """Discriminates ordinary data entries from deletion requests."""

    DATA = "data"
    DELETION_REQUEST = "deletion_request"


@dataclass(frozen=True)
class EntryReference:
    """Reference to an entry by block number and entry number (Section IV-D).

    The paper addresses the record to be deleted *"by the block number and
    the according entry number, in which the data set is stored"*.  Entry
    numbers are 1-based within their block, as in the console figures.
    """

    block_number: int
    entry_number: int

    def __post_init__(self) -> None:
        if self.block_number < 0:
            raise DeletionError("referenced block number must be non-negative")
        if self.entry_number < 1:
            raise DeletionError("referenced entry number must be 1-based and positive")

    def to_dict(self) -> dict[str, int]:
        """Return a JSON-serialisable representation."""
        return {"block_number": self.block_number, "entry_number": self.entry_number}

    def __canonical_json__(self) -> str:
        """Canonical form: the serialised :meth:`to_dict` payload."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EntryReference":
        """Rebuild a reference from :meth:`to_dict` output."""
        return cls(block_number=int(payload["block_number"]), entry_number=int(payload["entry_number"]))

    def __str__(self) -> str:
        return f"block {self.block_number}, entry {self.entry_number}"


@dataclass(frozen=True)
class Entry:
    """A single record inside a block.

    Attributes
    ----------
    data:
        The entry payload (``D`` plus any further schema fields).  For
        deletion requests this contains the target reference.
    author:
        The submitting participant (``K``).
    signature:
        Signature string over the signing payload (``S``).
    public_key:
        Compressed public key when the ECDSA scheme is used, else ``None``.
    kind:
        :class:`EntryKind` discriminator.
    entry_number:
        1-based position within the containing block; assigned when the
        entry is placed into a block.
    expires_at_time / expires_at_block:
        Optional temporary-entry bounds τ / α (Section IV-D4).
    origin_block_number / origin_timestamp / origin_entry_number:
        Provenance of entries copied into summary blocks (Fig. 4); ``None``
        for entries still sitting in their original block.
    """

    data: Mapping[str, Any]
    author: str
    signature: str
    public_key: Optional[str] = None
    kind: EntryKind = EntryKind.DATA
    entry_number: Optional[int] = None
    expires_at_time: Optional[int] = None
    expires_at_block: Optional[int] = None
    origin_block_number: Optional[int] = None
    origin_timestamp: Optional[int] = None
    origin_entry_number: Optional[int] = None
    #: Memoised canonical JSON of :meth:`to_dict`.  Entries are frozen, so
    #: the serialisation never changes; ``dataclasses.replace`` (used by
    #: :meth:`as_copy` / :meth:`with_entry_number`) re-initialises the field,
    #: dropping the memo for the derived entry.
    _canonical_cache: Optional[str] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.author:
            raise SchemaError("entry author must not be empty")
        if self.entry_number is not None and self.entry_number < 1:
            raise SchemaError("entry_number is 1-based and must be positive")
        if self.expires_at_time is not None and self.expires_at_time < 0:
            raise SchemaError("expires_at_time must be non-negative")
        if self.expires_at_block is not None and self.expires_at_block < 0:
            raise SchemaError("expires_at_block must be non-negative")

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #

    @property
    def is_deletion_request(self) -> bool:
        """True when this entry is a deletion request."""
        return self.kind is EntryKind.DELETION_REQUEST

    @property
    def is_temporary(self) -> bool:
        """True when the entry carries an expiry bound (Section IV-D4)."""
        return self.expires_at_time is not None or self.expires_at_block is not None

    @property
    def is_copy(self) -> bool:
        """True when the entry was copied into a summary block."""
        return self.origin_block_number is not None

    def is_expired(self, *, current_time: int, current_block: int) -> bool:
        """Check the temporary-entry bounds against the current chain head."""
        if self.expires_at_time is not None and current_time > self.expires_at_time:
            return True
        if self.expires_at_block is not None and current_block > self.expires_at_block:
            return True
        return False

    # ------------------------------------------------------------------ #
    # Deletion-request helpers
    # ------------------------------------------------------------------ #

    def deletion_target(self) -> EntryReference:
        """Return the reference a deletion request points at."""
        if not self.is_deletion_request:
            raise DeletionError("entry is not a deletion request")
        try:
            return EntryReference.from_dict(self.data["target"])
        except (KeyError, TypeError) as exc:
            raise DeletionError("deletion request is missing its target reference") from exc

    # ------------------------------------------------------------------ #
    # Provenance
    # ------------------------------------------------------------------ #

    def reference_in(self, block_number: int) -> EntryReference:
        """Reference of this entry assuming it sits in ``block_number``.

        For copies inside summary blocks the *original* coordinates are used,
        because deletion requests always address the initially integrated
        position (Fig. 4 keeps block number and entry number unchanged).
        """
        if self.entry_number is None and self.origin_entry_number is None:
            raise DeletionError("entry has not been placed into a block yet")
        if self.is_copy:
            assert self.origin_block_number is not None
            return EntryReference(
                block_number=self.origin_block_number,
                entry_number=self.origin_entry_number or self.entry_number or 1,
            )
        assert self.entry_number is not None
        return EntryReference(block_number=block_number, entry_number=self.entry_number)

    def as_copy(self, *, origin_block_number: int, origin_timestamp: int) -> "Entry":
        """Return a copy of this entry tagged with its origin coordinates.

        Used by the summarizer when carrying an entry forward.  Copies of
        copies keep the very first origin, so provenance never degrades.
        """
        if self.is_copy:
            return self
        return replace(
            self,
            origin_block_number=origin_block_number,
            origin_timestamp=origin_timestamp,
            origin_entry_number=self.entry_number,
        )

    def with_entry_number(self, entry_number: int) -> "Entry":
        """Return a copy with the in-block entry number assigned."""
        return replace(self, entry_number=entry_number)

    # ------------------------------------------------------------------ #
    # Signing and serialisation
    # ------------------------------------------------------------------ #

    def signing_payload(self) -> dict[str, Any]:
        """The exact structure covered by the entry signature.

        Origin coordinates and the entry number are *excluded*: they are
        assigned by the chain after signing (and change when an entry is
        copied into a summary block), whereas the signature must stay valid
        across summarisation (Section IV-B determinism).
        """
        return {
            "data": dict(self.data),
            "author": self.author,
            "kind": self.kind.value,
            "expires_at_time": self.expires_at_time,
            "expires_at_block": self.expires_at_block,
        }

    def __canonical_json__(self) -> str:
        """Cached canonical JSON of :meth:`to_dict`.

        Merkle roots and block hashes serialise every entry they cover; with
        hundreds of carried copies per summary block this memo turns the
        repeated serialisation work into a single dict lookup.  The cache is
        sound because entries are frozen (Section IV-B determinism relies on
        their payload never changing after signing).
        """
        if self._canonical_cache is None:
            from repro.crypto.hashing import canonical_json

            # repro: allow[REPRO-F301] write-once memo of a pure function of frozen fields
            object.__setattr__(self, "_canonical_cache", canonical_json(self.to_dict()))
        return self._canonical_cache

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "data": dict(self.data),
            "author": self.author,
            "signature": self.signature,
            "public_key": self.public_key,
            "kind": self.kind.value,
            "entry_number": self.entry_number,
            "expires_at_time": self.expires_at_time,
            "expires_at_block": self.expires_at_block,
            "origin_block_number": self.origin_block_number,
            "origin_timestamp": self.origin_timestamp,
            "origin_entry_number": self.origin_entry_number,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Entry":
        """Rebuild an entry from :meth:`to_dict` output."""
        return cls(
            data=dict(payload["data"]),
            author=str(payload["author"]),
            signature=str(payload["signature"]),
            public_key=payload.get("public_key"),
            kind=EntryKind(payload.get("kind", EntryKind.DATA.value)),
            entry_number=payload.get("entry_number"),
            expires_at_time=payload.get("expires_at_time"),
            expires_at_block=payload.get("expires_at_block"),
            origin_block_number=payload.get("origin_block_number"),
            origin_timestamp=payload.get("origin_timestamp"),
            origin_entry_number=payload.get("origin_entry_number"),
        )

    def display(self) -> str:
        """Console form mimicking the paper's figures.

        Example: ``1: D: Login ALPHA; K: ALPHA; S: sig_ALPHA``.
        """
        number = self.entry_number if self.entry_number is not None else "?"
        if self.is_deletion_request:
            target = self.deletion_target()
            body = f"DEL: {target}; K: {self.author}; S: {self._display_signature()}"
        else:
            record = self.data.get("D", self.data)
            body = f"D: {record}; K: {self.author}; S: {self._display_signature()}"
        if self.is_copy:
            body += f" [origin: block {self.origin_block_number}, entry {self.origin_entry_number}]"
        if self.is_temporary:
            bounds = []
            if self.expires_at_time is not None:
                bounds.append(f"tau<={self.expires_at_time}")
            if self.expires_at_block is not None:
                bounds.append(f"alpha<={self.expires_at_block}")
            body += f" [temporary: {', '.join(bounds)}]"
        return f"{number}: {body}"

    def _display_signature(self) -> str:
        if self.signature.startswith("sig_"):
            return self.signature.split(":", 1)[0]
        return self.signature[:12]
