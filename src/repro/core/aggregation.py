"""Entry aggregation — the "Summarized Information" enhancement (Section V-A).

The paper lists as an achieved enhancement *"the ability to summarize
coherent information.  E.g., if a system logs an event several times, these
logs can be stored summarized in the blockchain"*.  This module provides that
capability at the application boundary: an :class:`EntryAggregator` buffers
raw events, collapses runs of identical events by the same author into a
single summarized record with a repetition count and the covered time span,
and emits entry payloads ready for :meth:`Blockchain.add_entry`.

Aggregation happens *before* data enters the chain, so it composes freely
with deletion, temporary entries and the summary-block machinery — the
summarized record is an ordinary entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional


@dataclass(frozen=True)
class AggregatedRecord:
    """One summarized run of identical events."""

    record: str
    author: str
    count: int
    first_time: int
    last_time: int

    def to_entry_data(self) -> dict[str, Any]:
        """Entry payload in the paper's D/K/S structure plus count metadata."""
        if self.count == 1:
            description = self.record
        else:
            description = f"{self.record} (x{self.count})"
        return {
            "D": description,
            "K": self.author,
            "S": f"sig_{self.author}",
            "count": self.count,
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


@dataclass
class EntryAggregator:
    """Collapses repeated identical events into summarized records.

    Events are aggregated while they are *adjacent per author* (the common
    log pattern of a component repeating the same message); a different event
    from the same author, or ``flush()``, closes the run.  ``max_run`` bounds
    how many raw events one summarized record may cover so that audit
    granularity stays configurable.
    """

    max_run: int = 1000
    _open_runs: dict[str, AggregatedRecord] = field(default_factory=dict)
    _completed: list[AggregatedRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_run < 1:
            raise ValueError("max_run must be at least 1")

    def add(self, record: str, author: str, *, timestamp: int = 0) -> Optional[AggregatedRecord]:
        """Feed one raw event; returns a completed record if a run closed."""
        completed: Optional[AggregatedRecord] = None
        open_run = self._open_runs.get(author)
        if open_run is not None and open_run.record == record and open_run.count < self.max_run:
            self._open_runs[author] = AggregatedRecord(
                record=record,
                author=author,
                count=open_run.count + 1,
                first_time=open_run.first_time,
                last_time=timestamp,
            )
            return None
        if open_run is not None:
            completed = open_run
            self._completed.append(open_run)
        self._open_runs[author] = AggregatedRecord(
            record=record, author=author, count=1, first_time=timestamp, last_time=timestamp
        )
        return completed

    def flush(self) -> list[AggregatedRecord]:
        """Close all open runs and return every completed record so far."""
        for author in sorted(self._open_runs):
            self._completed.append(self._open_runs[author])
        self._open_runs.clear()
        completed = list(self._completed)
        self._completed.clear()
        return completed

    def pending_authors(self) -> list[str]:
        """Authors that currently have an open (unflushed) run."""
        return sorted(self._open_runs)


def aggregate_events(
    events: Iterable[Mapping[str, Any]],
    *,
    max_run: int = 1000,
) -> list[AggregatedRecord]:
    """Aggregate an iterable of ``{"record", "author", "timestamp"}`` events."""
    aggregator = EntryAggregator(max_run=max_run)
    for event in events:
        aggregator.add(
            str(event.get("record", "")),
            str(event.get("author", "")),
            timestamp=int(event.get("timestamp", 0)),
        )
    return aggregator.flush()


def compression_ratio(raw_event_count: int, aggregated_records: list[AggregatedRecord]) -> float:
    """How many raw events one stored record represents on average."""
    if not aggregated_records:
        return 1.0
    return raw_event_count / len(aggregated_records)
