"""Construction of summary blocks Σ.

The summarizer implements Section IV-B/IV-C: at every summary slot it builds
a block that

* carries the same timestamp as the block before it,
* consists of deterministic information only (so every anchor node computes
  an identical block without propagation),
* absorbs the data of every sequence selected for expiry — copying block
  number, timestamp and entry number of each retained entry (Fig. 4) while
  skipping deletion requests, entries marked for deletion and expired
  temporary entries,
* optionally stores only Merkle references instead of full copies
  (Section V-B2), and
* optionally embeds redundancy material for a middle sequence to hamper the
  51 % attack (Section V-B1, Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.block import Block, BlockType, RedundancyRecord
from repro.core.config import ChainConfig, RedundancyPolicy, SummaryMode
from repro.core.deletion import DeletionRegistry
from repro.core.entry import Entry
from repro.core.retention import entry_survives, select_sequences_to_expire
from repro.core.sequence import SequenceView, middle_sequence
from repro.crypto.merkle import merkle_root


@dataclass(frozen=True)
class DroppedEntry:
    """An entry that was *not* carried forward, together with the reason."""

    block_number: int
    entry: Entry
    reason: str


@dataclass
class SummaryResult:
    """Everything produced by one summarisation step."""

    block: Block
    expired_sequences: list[SequenceView] = field(default_factory=list)
    carried_entries: list[Entry] = field(default_factory=list)
    dropped_entries: list[DroppedEntry] = field(default_factory=list)
    new_marker: Optional[int] = None

    @property
    def shifted_marker(self) -> bool:
        """True when the genesis marker moves as part of this step."""
        return self.new_marker is not None


class Summarizer:
    """Builds summary blocks for a configured chain."""

    def __init__(self, config: ChainConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # Entry selection
    # ------------------------------------------------------------------ #

    def collect_entries(
        self,
        expiring: list[SequenceView],
        registry: DeletionRegistry,
        *,
        current_time: int,
        current_block: int,
    ) -> tuple[list[Entry], list[DroppedEntry]]:
        """Split the expiring sequences' entries into carried and dropped."""
        carried: list[Entry] = []
        dropped: list[DroppedEntry] = []
        for view in expiring:
            for block, entry in view.entries():
                survives, reason = entry_survives(
                    entry,
                    containing_block_number=block.block_number,
                    registry=registry,
                    current_time=current_time,
                    current_block=current_block,
                )
                if survives:
                    carried.append(
                        entry.as_copy(
                            origin_block_number=block.block_number,
                            origin_timestamp=block.timestamp,
                        )
                    )
                else:
                    dropped.append(
                        DroppedEntry(block_number=block.block_number, entry=entry, reason=reason)
                    )
        return carried, dropped

    # ------------------------------------------------------------------ #
    # Redundancy (Fig. 9)
    # ------------------------------------------------------------------ #

    def build_redundancy(
        self,
        remaining: list[SequenceView],
        expiring: list[SequenceView],
    ) -> list[RedundancyRecord]:
        """Build the redundancy records for the new summary block.

        The paper stores *"the sequence to be deleted and the reference to a
        middle sequence"*; the deleted sequences' data is already inside the
        summary block via the carried entries, so the redundancy records
        cover the middle sequence of the remaining chain.
        """
        if self.config.redundancy is RedundancyPolicy.NONE:
            return []
        candidates = [view for view in remaining if view.is_complete]
        target = middle_sequence(candidates)
        if target is None and candidates:
            target = candidates[0]
        if target is None:
            return []
        if self.config.redundancy is RedundancyPolicy.MIDDLE_MERKLE_ROOT:
            return [
                RedundancyRecord(
                    sequence_index=target.index,
                    first_block_number=target.first_block_number,
                    last_block_number=target.last_block_number,
                    merkle_root=target.merkle_root(),
                )
            ]
        entries = tuple(
            entry.as_copy(origin_block_number=block.block_number, origin_timestamp=block.timestamp)
            for block, entry in target.data_entries()
        )
        return [
            RedundancyRecord(
                sequence_index=target.index,
                first_block_number=target.first_block_number,
                last_block_number=target.last_block_number,
                merkle_root=target.merkle_root(),
                entries=entries,
            )
        ]

    # ------------------------------------------------------------------ #
    # Summary block construction
    # ------------------------------------------------------------------ #

    def build_summary_block(
        self,
        *,
        sequences: list[SequenceView],
        previous_block: Block,
        next_block_number: int,
        registry: DeletionRegistry,
        current_time: int,
    ) -> SummaryResult:
        """Build the summary block that closes the current sequence.

        ``sequences`` is the partition of the living chain (oldest first,
        the last one being the sequence the new summary block terminates).
        """
        expiring = select_sequences_to_expire(self.config, sequences)
        carried, dropped = self.collect_entries(
            expiring,
            registry,
            current_time=current_time,
            current_block=next_block_number,
        )

        entries: list[Entry] = []
        summary_references: list[dict] = []
        if self.config.summary_mode is SummaryMode.FULL_COPY:
            entries = carried
        else:
            # Group the carried entries by the expiring sequence whose block
            # range their origin falls into — one pass over ``carried``
            # instead of rescanning it per expiring view.  Entries whose
            # origin lies outside every expiring range (re-carried copies of
            # long-gone sequences) stay unreferenced, as before.
            view_of_origin: dict[int, int] = {}
            retained_by_view: list[list[Entry]] = []
            for position, view in enumerate(expiring):
                retained_by_view.append([])
                for number in range(view.first_block_number, view.last_block_number + 1):
                    view_of_origin[number] = position
            for entry in carried:
                if entry.origin_block_number is None:
                    continue
                position = view_of_origin.get(entry.origin_block_number)
                if position is not None:
                    retained_by_view[position].append(entry)
            for view, retained_in_view in zip(expiring, retained_by_view):
                summary_references.append(
                    {
                        "sequence_index": view.index,
                        "first_block_number": view.first_block_number,
                        "last_block_number": view.last_block_number,
                        "entry_count": len(retained_in_view),
                        # The entries hash through their cached canonical
                        # serialisation — identical root, no re-serialising.
                        "merkle_root": merkle_root(retained_in_view),
                    }
                )

        if self.config.redundancy is RedundancyPolicy.NONE:
            redundancy: list[RedundancyRecord] = []
        else:
            remaining = [view for view in sequences if not any(view is gone for gone in expiring)]
            redundancy = self.build_redundancy(remaining, expiring)

        block = Block(
            block_number=next_block_number,
            timestamp=previous_block.timestamp,
            previous_hash=previous_block.block_hash,
            entries=entries,
            block_type=BlockType.SUMMARY,
            redundancy=redundancy,
            merged_sequences=[view.index for view in expiring],
            summary_references=summary_references,
        )

        new_marker = expiring[-1].last_block_number + 1 if expiring else None
        return SummaryResult(
            block=block,
            expired_sequences=expiring,
            carried_entries=carried,
            dropped_entries=dropped,
            new_marker=new_marker,
        )
