"""Blocks and summary blocks.

A block header consists of the block number α, the timestamp τ, the previous
block hash, the own block hash, and — for mined chains — a nonce (Fig. 6
prints ``block number; timestamp; previous block hash; own block hash;
optional data entry``).

Summary blocks Σ are a special block type introduced in Section IV-B.  They
contain deterministic information only, carry the same timestamp as the block
before them, are created locally by every anchor node (no propagation) and
absorb the data of expiring sequences.  On top of the copied entries a
summary block can embed redundancy material — the data or Merkle root of a
middle sequence — to hamper the 51 % attack (Section V-B1, Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.crypto.hashing import GENESIS_PREVIOUS_HASH, hash_hex, truncate_hash
from repro.core.entry import Entry
from repro.core.errors import ChainIntegrityError


class BlockType(str, Enum):
    """Discriminates ordinary blocks from summary blocks Σ."""

    NORMAL = "normal"
    SUMMARY = "summary"


@dataclass(frozen=True)
class RedundancyRecord:
    """Redundancy material embedded in a summary block (Fig. 9).

    Either the Merkle root of the referenced middle sequence
    (``merkle_root`` set, ``entries`` empty) or a full copy of its data
    (``entries`` populated), depending on the configured
    :class:`~repro.core.config.RedundancyPolicy`.
    """

    sequence_index: int
    first_block_number: int
    last_block_number: int
    merkle_root: Optional[str] = None
    entries: tuple[Entry, ...] = ()
    _canonical_cache: Optional[str] = field(default=None, init=False, repr=False, compare=False)

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "sequence_index": self.sequence_index,
            "first_block_number": self.first_block_number,
            "last_block_number": self.last_block_number,
            "merkle_root": self.merkle_root,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def __canonical_json__(self) -> str:
        """Cached canonical JSON, composed from the entries' own memos."""
        if self._canonical_cache is None:
            from repro.crypto.hashing import canonical_json

            payload = {
                "sequence_index": self.sequence_index,
                "first_block_number": self.first_block_number,
                "last_block_number": self.last_block_number,
                "merkle_root": self.merkle_root,
                "entries": list(self.entries),
            }
            # repro: allow[REPRO-F301] write-once memo of a pure function of frozen fields
            object.__setattr__(self, "_canonical_cache", canonical_json(payload))
        return self._canonical_cache

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RedundancyRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            sequence_index=int(payload["sequence_index"]),
            first_block_number=int(payload["first_block_number"]),
            last_block_number=int(payload["last_block_number"]),
            merkle_root=payload.get("merkle_root"),
            entries=tuple(Entry.from_dict(item) for item in payload.get("entries", ())),
        )


@dataclass
class Block:
    """A block of the selective-deletion blockchain.

    Blocks are conceptually immutable once appended; the only mutation the
    library performs is setting the proof-of-work nonce through
    :meth:`set_nonce`, which invalidates the cached hash.
    """

    block_number: int
    timestamp: int
    previous_hash: str
    entries: list[Entry] = field(default_factory=list)
    block_type: BlockType = BlockType.NORMAL
    nonce: int = 0
    redundancy: list[RedundancyRecord] = field(default_factory=list)
    merged_sequences: list[int] = field(default_factory=list)
    summary_references: list[dict[str, Any]] = field(default_factory=list)
    _cached_hash: Optional[str] = field(default=None, init=False, repr=False, compare=False)
    _cached_canonical: Optional[str] = field(default=None, init=False, repr=False, compare=False)
    _cached_byte_size: Optional[int] = field(default=None, init=False, repr=False, compare=False)
    _entry_lookup: Optional[dict[int, Entry]] = field(default=None, init=False, repr=False, compare=False)
    _copy_lookup: Optional[dict[tuple[int, int], Entry]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.block_number < 0:
            raise ChainIntegrityError("block number must be non-negative")
        if self.timestamp < 0:
            raise ChainIntegrityError("timestamp must be non-negative")
        if not self.previous_hash:
            raise ChainIntegrityError("previous hash must not be empty")
        self.entries = [
            entry if entry.entry_number is not None else entry.with_entry_number(index)
            for index, entry in enumerate(self.entries, start=1)
        ]

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #

    @property
    def is_summary(self) -> bool:
        """True for summary blocks Σ."""
        return self.block_type is BlockType.SUMMARY

    @property
    def is_genesis_origin(self) -> bool:
        """True for the original block 0 (previous hash ``DEADB``)."""
        return self.block_number == 0 and self.previous_hash == GENESIS_PREVIOUS_HASH

    @property
    def entry_count(self) -> int:
        """Number of entries stored in the block."""
        return len(self.entries)

    # ------------------------------------------------------------------ #
    # Hashing
    # ------------------------------------------------------------------ #

    def header_dict(self) -> dict[str, Any]:
        """Header fields that identify the block (content excluded)."""
        return {
            "block_number": self.block_number,
            "timestamp": self.timestamp,
            "previous_hash": self.previous_hash,
            "block_type": self.block_type.value,
            "nonce": self.nonce,
        }

    def content_dict(self) -> dict[str, Any]:
        """Full hashable content of the block, as plain JSON-ready dicts."""
        payload = self._hashable_content()
        payload["entries"] = [entry.to_dict() for entry in payload["entries"]]
        payload["redundancy"] = [record.to_dict() for record in payload["redundancy"]]
        return payload

    def _hashable_content(self) -> dict[str, Any]:
        """Same canonical form as :meth:`content_dict`, but carrying the
        domain objects themselves so their ``__canonical_json__`` memos are
        reused instead of re-serialising every entry.  :meth:`content_dict`
        derives from this, so the content shape is defined exactly once."""
        return {
            "header": self.header_dict(),
            "entries": list(self.entries),
            "redundancy": list(self.redundancy),
            "merged_sequences": list(self.merged_sequences),
            "summary_references": list(self.summary_references),
        }

    def compute_hash(self) -> str:
        """Recompute the block hash, ignoring the block-level hash cache.

        The per-entry canonical memos *are* reused: entries are frozen, so
        their serialisation cannot legitimately change after construction
        (mutating an entry's ``data`` dict in place violates that contract
        and is not detected here).  For a fully from-scratch recomputation,
        hash :meth:`content_dict` directly.
        """
        return hash_hex(self._hashable_content())

    @property
    def block_hash(self) -> str:
        """Cached block hash."""
        if self._cached_hash is None:
            self._cached_hash = self.compute_hash()
        return self._cached_hash

    def set_nonce(self, nonce: int) -> None:
        """Update the proof-of-work nonce and invalidate every derived cache.

        Must be called *before* the block is appended to a chain: consensus
        finalizers mine through this hook pre-append.  Mutating the nonce of
        an already-appended block leaves the chain index's rolling byte
        aggregates stale (``Blockchain.verify_index`` detects this).
        """
        self.nonce = nonce
        self._cached_hash = None
        self._cached_canonical = None
        self._cached_byte_size = None

    def __canonical_json__(self) -> str:
        """Cached canonical JSON of :meth:`to_dict` (hash included).

        Invalidated by :meth:`set_nonce`; otherwise sound because blocks are
        immutable once appended.
        """
        if self._cached_canonical is None:
            from repro.crypto.hashing import canonical_json

            payload = self._hashable_content()
            payload["block_hash"] = self.block_hash
            self._cached_canonical = canonical_json(payload)
        return self._cached_canonical

    # ------------------------------------------------------------------ #
    # Entry access
    # ------------------------------------------------------------------ #

    def entry(self, entry_number: int) -> Entry:
        """Return the entry with 1-based ``entry_number`` (O(1) lookup)."""
        if self._entry_lookup is None:
            lookup: dict[int, Entry] = {}
            for candidate in self.entries:
                if candidate.entry_number is not None:
                    lookup.setdefault(candidate.entry_number, candidate)
            self._entry_lookup = lookup
        found = self._entry_lookup.get(entry_number)
        if found is None:
            raise KeyError(f"block {self.block_number} has no entry number {entry_number}")
        return found

    def find_copy_of(self, origin_block_number: int, origin_entry_number: int) -> Optional[Entry]:
        """Locate the carried-forward copy of an original entry (O(1) lookup)."""
        if self._copy_lookup is None:
            lookup: dict[tuple[int, int], Entry] = {}
            for candidate in self.entries:
                if candidate.origin_block_number is not None:
                    key = (candidate.origin_block_number, candidate.origin_entry_number)
                    lookup.setdefault(key, candidate)
            self._copy_lookup = lookup
        return self._copy_lookup.get((origin_block_number, origin_entry_number))

    def data_entries(self) -> list[Entry]:
        """All entries that are plain data records (no deletion requests)."""
        return [entry for entry in self.entries if not entry.is_deletion_request]

    def deletion_requests(self) -> list[Entry]:
        """All deletion-request entries in this block."""
        return [entry for entry in self.entries if entry.is_deletion_request]

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #

    def byte_size(self) -> int:
        """Approximate serialised size of the block in bytes (memoised).

        Used by the storage-growth and summary-size benchmarks (Sections I
        and V-B2 motivate the concept with the unbounded growth of Bitcoin's
        chain).  The memo is invalidated by :meth:`set_nonce`, the only
        mutation performed after a block is built.
        """
        if self._cached_byte_size is None:
            self._cached_byte_size = len(self.__canonical_json__().encode("utf-8"))
        return self._cached_byte_size

    # ------------------------------------------------------------------ #
    # Serialisation and display
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation (includes the hash)."""
        payload = self.content_dict()
        payload["block_hash"] = self.block_hash
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Block":
        """Rebuild a block from :meth:`to_dict` output and verify its hash."""
        header = payload["header"]
        block = cls(
            block_number=int(header["block_number"]),
            timestamp=int(header["timestamp"]),
            previous_hash=str(header["previous_hash"]),
            entries=[Entry.from_dict(item) for item in payload.get("entries", ())],
            block_type=BlockType(header.get("block_type", BlockType.NORMAL.value)),
            nonce=int(header.get("nonce", 0)),
            redundancy=[RedundancyRecord.from_dict(item) for item in payload.get("redundancy", ())],
            merged_sequences=list(payload.get("merged_sequences", ())),
            summary_references=list(payload.get("summary_references", ())),
        )
        expected = payload.get("block_hash")
        if expected is not None and block.block_hash != expected:
            raise ChainIntegrityError(
                f"stored hash of block {block.block_number} does not match its content"
            )
        return block

    def display(self, *, hash_length: int = 5) -> str:
        """Console header line in the style of the paper's figures.

        Example: ``S2; t=2; prev=4F0C1; hash=A77E2`` for a summary block or
        ``1; t=1; prev=0BEEF; hash=4F0C1`` for a normal block.
        """
        prefix = f"S{self.block_number}" if self.is_summary else f"{self.block_number}"
        previous = (
            self.previous_hash
            if self.previous_hash == GENESIS_PREVIOUS_HASH
            else truncate_hash(self.previous_hash, hash_length)
        )
        own = truncate_hash(self.block_hash, hash_length)
        return f"{prefix}; t={self.timestamp}; prev={previous}; hash={own}"


def make_genesis_block(*, timestamp: int = 0, entries: Optional[Sequence[Entry]] = None) -> Block:
    """Create the original Genesis Block (block 0, previous hash ``DEADB``)."""
    return Block(
        block_number=0,
        timestamp=timestamp,
        previous_hash=GENESIS_PREVIOUS_HASH,
        entries=list(entries or []),
        block_type=BlockType.NORMAL,
    )


def link_blocks(blocks: Iterable[Block]) -> list[Block]:
    """Re-link a sequence of blocks so each previous-hash matches its parent.

    Helper for tests and workload generators that build blocks in bulk; the
    production path always links at append time.
    """
    linked: list[Block] = []
    previous: Optional[Block] = None
    for block in blocks:
        if previous is not None:
            block = Block(
                block_number=block.block_number,
                timestamp=block.timestamp,
                previous_hash=previous.block_hash,
                entries=list(block.entries),
                block_type=block.block_type,
                nonce=block.nonce,
                redundancy=list(block.redundancy),
                merged_sequences=list(block.merged_sequences),
                summary_references=list(block.summary_references),
            )
        linked.append(block)
        previous = block
    return linked
