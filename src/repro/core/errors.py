"""Exception hierarchy of the selective-deletion blockchain library.

All library-specific failures derive from :class:`SelectiveDeletionError`, so
applications can catch a single base class.  More specific subclasses exist
for the situations the paper reasons about explicitly: broken hash chains,
rejected deletion requests (authorization or semantic cohesion), schema
violations, and consensus/synchronisation failures.
"""

from __future__ import annotations


class SelectiveDeletionError(Exception):
    """Base class for all errors raised by the library."""


class ChainIntegrityError(SelectiveDeletionError):
    """The hash chain or block ordering is inconsistent.

    Raised by validation when a previous-hash link is broken, a block number
    is out of order, or a recomputed block hash differs from the stored one
    (Section IV-A: direct deletion "destroys the hash chain").
    """


class SchemaError(SelectiveDeletionError):
    """An entry does not satisfy the configured entry schema (Section V)."""


class AuthorizationError(SelectiveDeletionError):
    """A signed action is not permitted for the signing participant.

    Covers forged signatures, users trying to delete entries of other users,
    and role violations (Section IV-D1).
    """


class CohesionError(SelectiveDeletionError):
    """A deletion would break semantic cohesion of the chain (Section IV-D2)."""


class DeletionError(SelectiveDeletionError):
    """A deletion request is malformed or references a non-existent entry."""


class RetentionError(SelectiveDeletionError):
    """A retention policy constraint was violated.

    For example shrinking the chain below the configured minimum length or
    minimum time-span coverage (Section IV-D3).
    """


class ConsensusError(SelectiveDeletionError):
    """The quorum could not reach agreement (marker shift, summary hash)."""


class SynchronisationError(ConsensusError):
    """An anchor node computed a diverging summary block (Section IV-B).

    The paper notes that a divergent summary hash "would result in a fork in
    the blockchain and thus split the network"; the simulator raises this
    error when it detects that situation.
    """


class StorageError(SelectiveDeletionError):
    """A storage backend failed to persist or load chain data."""


class ConfigurationError(SelectiveDeletionError):
    """The chain configuration is internally inconsistent."""
