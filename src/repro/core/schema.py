"""Entry schemas.

Section V of the paper states that *"the structure of a data entry is
specified beforehand by a YAML schema"*.  This module provides a small,
dependency-free schema engine:

* :class:`FieldSpec` describes one field (name, type, required, bounds),
* :class:`EntrySchema` validates entry data dictionaries against a set of
  field specs,
* :func:`parse_schema_yaml` reads the YAML subset needed for schema files
  (nested two-level mappings with scalar values), so deployments can keep
  their schemas in plain-text files exactly as the paper suggests without
  pulling in a YAML dependency.

The default schema mirrors the console figures: a data record ``D``, the
user ``K`` and the signature ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.core.errors import SchemaError
from repro.crypto.hashing import canonical_json

#: Mapping of schema type names to the Python types they accept.
_TYPE_MAP: dict[str, tuple[type, ...]] = {
    "str": (str,),
    "int": (int,),
    "float": (int, float),
    "bool": (bool,),
    "any": (object,),
}


@dataclass(frozen=True)
class FieldSpec:
    """Description of a single entry field.

    Attributes
    ----------
    name:
        Field key inside the entry data dictionary.
    type_name:
        One of ``str``, ``int``, ``float``, ``bool`` or ``any``.
    required:
        Whether the field must be present.
    max_length:
        Optional maximum length for string fields.
    description:
        Free-text documentation carried along for reporting.
    """

    name: str
    type_name: str = "any"
    required: bool = True
    max_length: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must not be empty")
        if self.type_name not in _TYPE_MAP:
            known = ", ".join(sorted(_TYPE_MAP))
            raise SchemaError(f"unknown field type {self.type_name!r}; known types: {known}")
        if self.max_length is not None and self.max_length <= 0:
            raise SchemaError("max_length must be positive when set")

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` when ``value`` does not fit this spec."""
        expected = _TYPE_MAP[self.type_name]
        if self.type_name == "int" and isinstance(value, bool):
            raise SchemaError(f"field {self.name!r} expects int, got bool")
        if not isinstance(value, expected):
            raise SchemaError(
                f"field {self.name!r} expects {self.type_name}, got {type(value).__name__}"
            )
        if self.max_length is not None and isinstance(value, str) and len(value) > self.max_length:
            raise SchemaError(
                f"field {self.name!r} exceeds max_length {self.max_length} ({len(value)} chars)"
            )

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "name": self.name,
            "type": self.type_name,
            "required": self.required,
            "max_length": self.max_length,
            "description": self.description,
        }

    def __canonical_json__(self) -> str:
        """Canonical form: the serialised :meth:`to_dict` payload."""
        return canonical_json(self.to_dict())


@dataclass
class EntrySchema:
    """A named collection of field specs that entry data must satisfy."""

    name: str = "entry"
    fields: tuple[FieldSpec, ...] = ()
    allow_extra_fields: bool = False

    def field_names(self) -> list[str]:
        """Names of all declared fields, in declaration order."""
        return [spec.name for spec in self.fields]

    def validate(self, data: Mapping[str, Any]) -> None:
        """Validate an entry data mapping; raise :class:`SchemaError` on failure."""
        if not isinstance(data, Mapping):
            raise SchemaError(f"entry data must be a mapping, got {type(data).__name__}")
        declared = {spec.name: spec for spec in self.fields}
        for spec in self.fields:
            if spec.name not in data:
                if spec.required:
                    raise SchemaError(f"schema {self.name!r}: missing required field {spec.name!r}")
                continue
            spec.validate(data[spec.name])
        if not self.allow_extra_fields:
            extras = [key for key in data if key not in declared]
            if extras:
                raise SchemaError(
                    f"schema {self.name!r}: unexpected fields {sorted(extras)!r}"
                )

    def is_valid(self, data: Mapping[str, Any]) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(data)
        except SchemaError:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "name": self.name,
            "allow_extra_fields": self.allow_extra_fields,
            "fields": [spec.to_dict() for spec in self.fields],
        }


def _parse_scalar(raw: str) -> Any:
    """Interpret a YAML scalar: bool, int, null or bare/quoted string."""
    text = raw.strip()
    if text.startswith(("'", '"')) and text.endswith(("'", '"')) and len(text) >= 2:
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "~", ""):
        return None
    try:
        return int(text)
    except ValueError:
        return text


def parse_schema_yaml(text: str, *, name: str = "entry") -> EntrySchema:
    """Parse the two-level YAML subset used for entry schema files.

    Expected shape::

        D:
          type: str
          required: true
          max_length: 256
        K:
          type: str
        S:
          type: str

    Comments (``#``) and blank lines are ignored.  Anything deeper than two
    levels is rejected — schemas are intentionally flat.
    """
    fields: list[FieldSpec] = []
    current_name: Optional[str] = None
    current_attrs: dict[str, Any] = {}

    def flush() -> None:
        nonlocal current_name, current_attrs
        if current_name is None:
            return
        fields.append(
            FieldSpec(
                name=current_name,
                type_name=str(current_attrs.get("type", "any")),
                required=bool(current_attrs.get("required", True)),
                max_length=current_attrs.get("max_length"),
                description=str(current_attrs.get("description", "")),
            )
        )
        current_name = None
        current_attrs = {}

    # Tolerate uniformly indented documents (e.g. schemas embedded in code):
    # the indentation of the shallowest non-empty line counts as level zero.
    cleaned_lines = [raw.split("#", 1)[0].rstrip() for raw in text.splitlines()]
    non_empty = [line for line in cleaned_lines if line.strip()]
    base_indent = min((len(line) - len(line.lstrip(" "))) for line in non_empty) if non_empty else 0

    for line_number, line in enumerate(cleaned_lines, start=1):
        if not line.strip():
            continue
        indent = (len(line) - len(line.lstrip(" "))) - base_indent
        stripped = line.strip()
        if ":" not in stripped:
            raise SchemaError(f"schema line {line_number}: expected 'key: value', got {stripped!r}")
        key, _, value = stripped.partition(":")
        key = key.strip()
        if indent == 0:
            if value.strip():
                raise SchemaError(
                    f"schema line {line_number}: top-level field {key!r} must not have an inline value"
                )
            flush()
            current_name = key
        elif current_name is not None:
            current_attrs[key] = _parse_scalar(value)
        else:
            raise SchemaError(f"schema line {line_number}: attribute {key!r} outside of a field block")
    flush()

    if not fields:
        raise SchemaError("schema text declares no fields")
    return EntrySchema(name=name, fields=tuple(fields))


def default_log_schema() -> EntrySchema:
    """Schema of the paper's logging scenario: D (record), K (user), S (signature)."""
    return EntrySchema(
        name="login-log",
        fields=(
            FieldSpec(name="D", type_name="str", required=True, description="data record"),
            FieldSpec(name="K", type_name="str", required=True, description="user / key holder"),
            FieldSpec(name="S", type_name="str", required=True, description="signature"),
        ),
        allow_extra_fields=True,
    )


def schema_from_fields(name: str, field_types: Mapping[str, str], *, required: Iterable[str] = ()) -> EntrySchema:
    """Build a schema programmatically from a ``{field: type}`` mapping."""
    required_set = set(required) or set(field_types)
    specs = tuple(
        FieldSpec(name=field_name, type_name=type_name, required=field_name in required_set)
        for field_name, type_name in field_types.items()
    )
    return EntrySchema(name=name, fields=specs)
