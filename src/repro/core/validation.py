"""Chain validation.

Section IV-A explains why a naive deletion is impossible: it *"destroys the
hash chain of a blockchain"*.  The validator therefore checks exactly the
properties the concept preserves across summarisation and marker shifts:

* consecutive block numbers starting at the genesis marker,
* intact previous-hash links from the marker onwards (the shifted genesis is
  *"a trusted anchor for the left blockchain part already approved by the
  anchor nodes"*, so its own parent is not — and cannot be — checked),
* summary blocks exactly at the summary slots, carrying the timestamp of the
  block before them (Section IV-B),
* non-decreasing timestamps,
* optionally, valid entry signatures under the configured scheme,
* optionally, that approved deletions are effective (the target is neither in
  its original position nor carried forward anywhere).

Section V-B3 warns that after shortening, participants must not judge a chain
by its length or block index but only accept chains *"traceable from [the]
current status quo"* — :func:`is_traceable_extension` implements that rule
for the anchor-node synchronisation logic.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.block import Block, BlockType
from repro.core.config import ChainConfig
from repro.core.deletion import DeletionRegistry
from repro.core.entry import Entry
from repro.core.errors import AuthorizationError, ChainIntegrityError
from repro.core.sequence import is_summary_slot
from repro.crypto.hashing import GENESIS_PREVIOUS_HASH
from repro.crypto.signatures import SignedPayload, scheme_instance


def validate_block_link(previous: Block, block: Block) -> None:
    """Check numbering, hash link and timestamp ordering between neighbours."""
    if block.block_number != previous.block_number + 1:
        raise ChainIntegrityError(
            f"block {block.block_number} does not follow block {previous.block_number}"
        )
    if block.previous_hash != previous.block_hash:
        raise ChainIntegrityError(
            f"block {block.block_number} has a broken previous-hash link"
        )
    if block.timestamp < previous.timestamp:
        raise ChainIntegrityError(
            f"block {block.block_number} has a timestamp before its predecessor"
        )


def validate_entry_signature(entry: Entry, scheme_name: str) -> None:
    """Verify one entry signature under the named scheme."""
    scheme = scheme_instance(scheme_name)
    signed = SignedPayload(
        payload=entry.signing_payload(),
        signer=entry.author,
        signature=entry.signature,
        public_key=entry.public_key,
    )
    if not scheme.verify(signed):
        raise AuthorizationError(
            f"entry by {entry.author!r} carries an invalid {scheme_name} signature"
        )


def validate_block_signatures(block: Block, scheme_name: str) -> None:
    """Batch-verify every entry signature of a sealed block in one pass.

    This is the anchor-side form of signature checking: instead of paying the
    per-entry scheme setup (and, for ECDSA, a point decompression per entry),
    the whole block goes to :meth:`SignatureScheme.verify_batch`, which
    decodes each distinct author key once and reuses it across that author's
    entries.  Raises :class:`AuthorizationError` naming the first offender.
    """
    if not block.entries:
        return
    scheme = scheme_instance(scheme_name)
    batch = [
        SignedPayload(
            payload=entry.signing_payload(),
            signer=entry.author,
            signature=entry.signature,
            public_key=entry.public_key,
        )
        for entry in block.entries
    ]
    for entry, valid in zip(block.entries, scheme.verify_batch(batch)):
        if not valid:
            raise AuthorizationError(
                f"entry by {entry.author!r} in block {block.block_number} carries "
                f"an invalid {scheme_name} signature"
            )


def validate_chain(
    blocks: Sequence[Block],
    *,
    config: ChainConfig,
    genesis_marker: int = 0,
    verify_signatures: bool = False,
) -> None:
    """Validate a living chain; raises :class:`ChainIntegrityError` on failure."""
    if not blocks:
        raise ChainIntegrityError("chain contains no blocks")

    first = blocks[0]
    if first.block_number != genesis_marker:
        raise ChainIntegrityError(
            f"first living block is {first.block_number} but the genesis marker is {genesis_marker}"
        )
    if first.block_number == 0 and first.previous_hash != GENESIS_PREVIOUS_HASH:
        raise ChainIntegrityError("original Genesis Block must use the DEADB previous hash")

    previous = first
    for block in blocks[1:]:
        validate_block_link(previous, block)
        previous = block

    for index, block in enumerate(blocks):
        expected_summary = is_summary_slot(block.block_number, config.sequence_length)
        if expected_summary and block.block_type is not BlockType.SUMMARY:
            raise ChainIntegrityError(
                f"block {block.block_number} occupies a summary slot but is not a summary block"
            )
        if not expected_summary and block.block_type is BlockType.SUMMARY:
            raise ChainIntegrityError(
                f"block {block.block_number} is a summary block outside a summary slot"
            )
        if block.block_type is BlockType.SUMMARY and index > 0:
            if block.timestamp != blocks[index - 1].timestamp:
                raise ChainIntegrityError(
                    f"summary block {block.block_number} must reuse the previous block's timestamp"
                )

    if verify_signatures:
        for block in blocks:
            validate_block_signatures(block, config.signature_scheme)


def verify_summary_determinism(own: Block, other: Block) -> bool:
    """Compare two independently computed summary blocks (Section IV-B).

    Anchor nodes use the hash of their locally created summary block as a
    synchronisation check; a mismatch means the nodes diverged and the
    network would fork.
    """
    if not (own.is_summary and other.is_summary):
        return False
    return own.block_hash == other.block_hash


def is_traceable_extension(known_blocks: Sequence[Block], candidate_blocks: Sequence[Block]) -> bool:
    """Accept a candidate chain only if it extends the known status quo.

    Implements Section V-B3: a node that already trusts ``known_blocks`` must
    not switch to a chain merely because it is longer or has higher block
    indices; the candidate must contain the node's current head (same block
    number and hash) and extend it with valid links.
    """
    if not known_blocks:
        return bool(candidate_blocks)
    known_head = known_blocks[-1]
    anchor_index = None
    for index, block in enumerate(candidate_blocks):
        if block.block_number == known_head.block_number and block.block_hash == known_head.block_hash:
            anchor_index = index
            break
    if anchor_index is None:
        return False
    previous = candidate_blocks[anchor_index]
    for block in candidate_blocks[anchor_index + 1 :]:
        try:
            validate_block_link(previous, block)
        except ChainIntegrityError:
            return False
        previous = block
    return True


def deletion_is_effective(
    blocks: Sequence[Block],
    registry: DeletionRegistry,
) -> list[str]:
    """Check that every approved deletion target is really gone.

    Returns a list of violation descriptions (empty when everything marked
    for deletion that should already have been purged is indeed absent from
    summary blocks).  Targets whose original block is still living are not
    violations — deletion is delayed by design (Section IV-D3).
    """
    violations: list[str] = []
    living_numbers = {block.block_number for block in blocks}
    for block in blocks:
        if not block.is_summary:
            continue
        for entry in block.entries:
            if entry.origin_block_number is None:
                continue
            if entry.origin_block_number in living_numbers:
                continue
            if registry.is_marked_entry(entry, block.block_number):
                violations.append(
                    f"summary block {block.block_number} still carries deleted entry "
                    f"(origin block {entry.origin_block_number}, entry {entry.origin_entry_number})"
                )
    return violations
