"""Deletion requests and the registry of marked entries.

Section IV-D: a participant submits a *deletion entry* referencing the block
number and entry number of the data set to be forgotten.  The request follows
the same path as a normal entry (it is signed and stored in a block), the
quorum checks authorization and semantic cohesion, and — if approved — the
target entry is *marked*.  Marked entries are simply not copied into future
summary blocks, so they physically disappear once their sequence expires
(delayed deletion, Eq. 1).  Deletion entries themselves are never copied
forward, which is what Fig. 8 demonstrates.

Wrong requests *"can be included in the blockchain, but these have no further
effects"* — rejected requests are therefore recorded with their rejection
reason instead of being discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.core.entry import Entry, EntryKind, EntryReference
from repro.core.errors import DeletionError


class DeletionStatus(str, Enum):
    """Lifecycle of a deletion request."""

    #: Approved by the quorum; the target will not be copied forward.
    APPROVED = "approved"
    #: Stored in the chain but without effect (authorization or cohesion failed).
    REJECTED = "rejected"
    #: The target has physically left the chain (its sequence was cut off).
    EXECUTED = "executed"


@dataclass(frozen=True)
class DeletionDecision:
    """Outcome of evaluating a deletion request."""

    request: Entry
    target: EntryReference
    status: DeletionStatus
    reason: str = ""

    @property
    def is_approved(self) -> bool:
        """True for approved (or already executed) deletions."""
        return self.status in (DeletionStatus.APPROVED, DeletionStatus.EXECUTED)


#: Signature of an authorization hook: receives the deletion request entry and
#: the target entry, returns (allowed, reason).
Authorizer = Callable[[Entry, Entry], tuple[bool, str]]


def build_deletion_request(
    target: EntryReference,
    *,
    author: str,
    signature: str,
    public_key: Optional[str] = None,
    reason: str = "",
) -> Entry:
    """Construct the deletion-request entry for ``target``.

    The caller is responsible for producing ``signature`` with the configured
    signature scheme over :meth:`Entry.signing_payload`; the chain façade
    (:class:`repro.core.chain.Blockchain`) does this automatically.
    """
    data: dict[str, Any] = {"target": target.to_dict()}
    if reason:
        data["reason"] = reason
    return Entry(
        data=data,
        author=author,
        signature=signature,
        public_key=public_key,
        kind=EntryKind.DELETION_REQUEST,
    )


def default_authorizer(
    *,
    admins: Iterable[str] = (),
    allow_admin_foreign_deletion: bool = True,
) -> Authorizer:
    """The paper's authorization rule (Section IV-D1).

    A user may only delete entries whose stored signature shares the same key
    (here: the same author identity / public key); members of the quorum with
    the master signature — modelled as the ``admins`` set — may delete any
    entry when ``allow_admin_foreign_deletion`` is enabled.
    """
    admin_set = set(admins)

    def authorize(request: Entry, target: Entry) -> tuple[bool, str]:
        if request.public_key and target.public_key:
            if request.public_key == target.public_key:
                return True, "requester key matches the stored entry key"
        elif request.author == target.author:
            return True, "requester matches the stored entry author"
        if allow_admin_foreign_deletion and request.author in admin_set:
            return True, "requester holds the quorum master signature"
        return False, (
            f"user {request.author!r} is not allowed to delete an entry of {target.author!r}"
        )

    return authorize


@dataclass
class DeletionRegistry:
    """Book-keeping of all deletion requests and their outcomes.

    The registry is the single source of truth the summarizer consults when
    deciding which entries to carry forward.  It survives marker shifts: a
    target reference stays marked even after its sequence has been cut, so a
    copy that may still exist in a redundancy record is recognised as deleted.
    """

    _decisions: list[DeletionDecision] = field(default_factory=list)
    _approved_targets: dict[tuple[int, int], DeletionDecision] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record(self, decision: DeletionDecision) -> None:
        """Store a decision; approved targets become marked for deletion."""
        self._decisions.append(decision)
        if decision.is_approved:
            key = (decision.target.block_number, decision.target.entry_number)
            self._approved_targets[key] = decision

    def record_request(
        self,
        request: Entry,
        *,
        approved: bool,
        reason: str = "",
    ) -> DeletionDecision:
        """Convenience wrapper building and storing a decision from a request."""
        decision = DeletionDecision(
            request=request,
            target=request.deletion_target(),
            status=DeletionStatus.APPROVED if approved else DeletionStatus.REJECTED,
            reason=reason,
        )
        self.record(decision)
        return decision

    def mark_executed(self, target: EntryReference) -> None:
        """Flag an approved deletion as physically executed."""
        key = (target.block_number, target.entry_number)
        decision = self._approved_targets.get(key)
        if decision is None:
            raise DeletionError(f"no approved deletion for {target}")
        executed = DeletionDecision(
            request=decision.request,
            target=decision.target,
            status=DeletionStatus.EXECUTED,
            reason=decision.reason,
        )
        self._approved_targets[key] = executed
        self._decisions.append(executed)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def is_marked(self, reference: EntryReference) -> bool:
        """True when the referenced entry must not be copied forward."""
        return (reference.block_number, reference.entry_number) in self._approved_targets

    def is_marked_entry(self, entry: Entry, containing_block_number: int) -> bool:
        """Check an entry (original or summary copy) against the marks."""
        try:
            reference = entry.reference_in(containing_block_number)
        except DeletionError:
            return False
        return self.is_marked(reference)

    def decision_for(self, reference: EntryReference) -> Optional[DeletionDecision]:
        """Latest decision affecting ``reference``, if any."""
        return self._approved_targets.get((reference.block_number, reference.entry_number))

    @property
    def decisions(self) -> list[DeletionDecision]:
        """All recorded decisions, in chronological order."""
        return list(self._decisions)

    @property
    def approved_count(self) -> int:
        """Number of currently approved (or executed) deletion targets."""
        return len(self._approved_targets)

    @property
    def rejected_count(self) -> int:
        """Number of rejected requests."""
        return sum(1 for decision in self._decisions if decision.status is DeletionStatus.REJECTED)

    @property
    def executed_count(self) -> int:
        """Number of deletions whose target has physically left the chain."""
        return sum(
            1
            for decision in self._approved_targets.values()
            if decision.status is DeletionStatus.EXECUTED
        )

    def statistics(self) -> dict[str, int]:
        """Summary counters for reports and benchmarks."""
        # Every evaluated request yields exactly one APPROVED or REJECTED
        # decision; the EXECUTED entries appended by mark_executed re-record
        # the same request.  Counting by status (not object identity) keeps
        # the figure stable across snapshot round-trips, where from_dict
        # rebuilds a fresh request object per decision.
        return {
            "requests": sum(
                1 for d in self._decisions if d.status is not DeletionStatus.EXECUTED
            ),
            "approved": self.approved_count,
            "rejected": self.rejected_count,
            "executed": self.executed_count,
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable snapshot (used by the file storage backend)."""
        return {
            "decisions": [
                {
                    "request": decision.request.to_dict(),
                    "target": decision.target.to_dict(),
                    "status": decision.status.value,
                    "reason": decision.reason,
                }
                for decision in self._decisions
            ]
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeletionRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for item in payload.get("decisions", ()):
            decision = DeletionDecision(
                request=Entry.from_dict(item["request"]),
                target=EntryReference.from_dict(item["target"]),
                status=DeletionStatus(item["status"]),
                reason=item.get("reason", ""),
            )
            registry.record(decision)
        return registry
