"""The selective-deletion blockchain façade.

:class:`Blockchain` is the primary public API of the library.  It maintains
the *living* blocks, the shifting genesis marker *m*, the deletion registry
and the pending-entry pool, and it drives the summarizer:

* entries are submitted with :meth:`add_entry` (signed against the configured
  scheme and validated against the optional entry schema),
* deletion requests are submitted with :meth:`request_deletion`, which
  evaluates the paper's authorization rule plus an optional semantic-cohesion
  checker and records the decision,
* :meth:`seal_block` turns the pending entries into the next block and —
  whenever the following slot is a summary position — automatically creates
  the summary block, merges expiring sequences, shifts the marker and cuts
  the expired blocks off,
* :meth:`idle_tick` implements the empty-block progress rule of
  Section IV-D3.

The façade is layered (mirroring the anchor-node architecture of
Section IV-A): *where blocks live* is delegated to a pluggable
:class:`~repro.storage.memstore.BlockStore` (volatile memory by default, the
append-only journal for durable deployments), and *who is told about it* is
delegated to a typed :class:`~repro.core.events.EventBus` that anchor nodes,
metrics collectors and applications subscribe to.  A marker shift maps to
the store's ``truncate_before`` — the operation that physically reclaims
space, the paper's data-reduction claim.

The class is deliberately independent of any networking: anchor nodes in
:mod:`repro.network` each hold their own :class:`Blockchain` replica and rely
on the determinism of sealing to stay in sync, exactly as Section IV-B
prescribes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional, Union

from repro.core.block import Block, BlockType, make_genesis_block
from repro.core.clock import Clock, LogicalClock
from repro.core.config import ChainConfig
from repro.core.deletion import (
    Authorizer,
    DeletionDecision,
    DeletionRegistry,
    build_deletion_request,
    default_authorizer,
)
from repro.core.entry import Entry, EntryKind, EntryReference
from repro.core.errors import ChainIntegrityError, DeletionError, StorageError
from repro.core.events import ChainEvent, EventBus, EventType
from repro.core.index import ChainIndex
from repro.core.schema import EntrySchema
from repro.core.sequence import SequenceView, is_summary_slot
from repro.core.summarizer import Summarizer, SummaryResult
from repro.core.retention import needs_empty_block
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import new_scheme, sign_entry
from repro.storage.memstore import BlockStore, MemoryBlockStore

__all__ = ["Blockchain", "ChainEvent", "CohesionChecker"]

#: A semantic-cohesion checker receives the target reference, the chain and
#: the requesting participant, and returns (allowed, reason) — Section IV-D2.
CohesionChecker = Callable[[EntryReference, "Blockchain", str], tuple[bool, str]]


class Blockchain:
    """A blockchain with summary blocks, sequences and selective deletion."""

    def __init__(
        self,
        config: Optional[ChainConfig] = None,
        *,
        clock: Optional[Clock] = None,
        schema: Optional[EntrySchema] = None,
        authorizer: Optional[Authorizer] = None,
        cohesion_checker: Optional[CohesionChecker] = None,
        admins: Iterable[str] = (),
        block_finalizer: Optional[Callable[[Block], Block]] = None,
        store: Optional[BlockStore] = None,
        event_bus: Optional[EventBus] = None,
    ) -> None:
        self.config = config or ChainConfig()
        self.clock = clock or LogicalClock()
        self.schema = schema
        self.scheme = new_scheme(self.config.signature_scheme)
        self.registry = DeletionRegistry()
        self.summarizer = Summarizer(self.config)
        self.cohesion_checker = cohesion_checker
        self.authorizer = authorizer or default_authorizer(
            admins=admins,
            allow_admin_foreign_deletion=self.config.allow_foreign_deletion_by_admin,
        )
        #: Hook applied to every freshly built *normal* block before it is
        #: appended — consensus engines use it to mine or seal the block.
        #: Summary blocks bypass the hook because every anchor node must be
        #: able to compute them deterministically on its own (Section IV-B).
        self.block_finalizer = block_finalizer
        #: Typed event fabric: subscribe for announcements and metrics; the
        #: bounded audit log behind it backs the :attr:`events` trail.
        #: (Compared against None — an empty bus is falsy via ``__len__``.)
        self.bus = event_bus if event_bus is not None else EventBus()

        self._store: BlockStore = store if store is not None else MemoryBlockStore()
        self._head: Optional[Block] = None
        self._genesis_marker = 0
        self._pending: list[Entry] = []
        self._total_blocks_created = 0
        self._deleted_block_count = 0
        self._deleted_entry_count = 0
        self._index = ChainIndex(self.config.sequence_length)

        stored = list(self._store)
        if stored:
            self._adopt_stored_blocks(stored, clock_provided=clock is not None)
        else:
            genesis = make_genesis_block(timestamp=self.clock.now())
            self._append(genesis)
        self._create_due_summary_blocks()

    def _adopt_stored_blocks(self, blocks: list[Block], *, clock_provided: bool) -> None:
        """Resume from a non-empty block store (durable-mode restart).

        The living chain, marker, index and deletion registry are rebuilt
        from the stored blocks alone.  Block numbers are assigned
        consecutively from 0 over the chain's whole life, so the lifetime
        counters are exact for blocks; the dropped-entry counter is not
        reconstructible from the living blocks and restarts at 0.  Deletion
        requests whose request entry was itself already summarised away are
        likewise unrecoverable from the blocks — deployments that need the
        complete registry across restarts persist snapshots
        (:mod:`repro.storage.snapshot`), which serialise it.
        """
        self._head = blocks[-1]
        self._genesis_marker = blocks[0].block_number
        self._index = ChainIndex.build(blocks, self.config.sequence_length)
        self._total_blocks_created = self._head.block_number + 1
        self._deleted_block_count = self._total_blocks_created - len(blocks)
        if isinstance(self.clock, LogicalClock) and not clock_provided:
            self.clock = LogicalClock(start=self._head.timestamp + 1)
        self.validate()
        # Replay the deletion requests still sitting in living blocks — the
        # same reconstruction a replica performs in receive_block — so an
        # approved-but-not-yet-executed deletion keeps its mark and is still
        # dropped by the next summarisation cycle after the restart.
        for block in blocks:
            for entry in block.entries:
                if entry.is_deletion_request:
                    approved, reason = self._evaluate_deletion(entry, entry.deletion_target())
                    self.registry.record_request(entry, approved=approved, reason=reason)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def store(self) -> BlockStore:
        """The storage backend holding the living blocks."""
        return self._store

    @property
    def blocks(self) -> list[Block]:
        """The living blocks, oldest first (a copy; mutations are ignored)."""
        return list(self._store)

    @property
    def head(self) -> Block:
        """The newest block."""
        assert self._head is not None
        return self._head

    @property
    def genesis(self) -> Block:
        """The current (possibly shifted) Genesis Block."""
        return self._store.get(self._genesis_marker)

    @property
    def genesis_marker(self) -> int:
        """Block number the genesis marker *m* currently points at."""
        return self._genesis_marker

    @property
    def length(self) -> int:
        """Number of living blocks (the paper's l_β)."""
        return len(self._store)

    @property
    def next_block_number(self) -> int:
        """Block number the next appended block will receive."""
        return self.head.block_number + 1

    @property
    def total_blocks_created(self) -> int:
        """Blocks ever appended, including blocks that have been cut off."""
        return self._total_blocks_created

    @property
    def deleted_block_count(self) -> int:
        """Blocks physically removed from the chain so far."""
        return self._deleted_block_count

    @property
    def deleted_entry_count(self) -> int:
        """Entries dropped (not carried forward) during summarisation."""
        return self._deleted_entry_count

    @property
    def pending_entries(self) -> list[Entry]:
        """Entries submitted but not yet sealed into a block."""
        return list(self._pending)

    @property
    def events(self) -> list[ChainEvent]:
        """The audit trail: the bounded window of notable chain events."""
        return self.bus.audit_log

    def entry_count(self) -> int:
        """Total number of entries currently stored in living blocks (O(1))."""
        return self._index.entry_count

    def byte_size(self) -> int:
        """Approximate serialised size of the living chain in bytes (O(1))."""
        return self._index.byte_size

    def sequences(self) -> list[SequenceView]:
        """Partition of the living chain into sequences ω.

        The partition is maintained incrementally by the chain index; this
        accessor returns a defensive snapshot that stays stable across later
        appends and marker shifts.
        """
        return self._index.sequence_views()

    def completed_sequence_count(self) -> int:
        """Number of living sequences already closed by a summary block (O(1))."""
        return self._index.completed_view_count

    def sequence_statistics(self) -> dict[int, dict[str, int]]:
        """Rolling per-sequence entry/byte counters, keyed by sequence index."""
        return self._index.sequence_aggregates()

    def block_by_number(self, block_number: int) -> Block:
        """Return the living block with ``block_number``.

        Raises :class:`KeyError` for block numbers before the marker (deleted)
        or after the head.
        """
        if block_number < self._genesis_marker or block_number > self.head.block_number:
            raise KeyError(f"block {block_number} is not part of the living chain")
        try:
            block = self._store.get(block_number)
        except StorageError:
            raise KeyError(f"block {block_number} is not part of the living chain") from None
        if block.block_number != block_number:
            raise ChainIntegrityError(
                f"block numbering is inconsistent: expected {block_number}, found {block.block_number}"
            )
        return block

    # ------------------------------------------------------------------ #
    # Entry submission
    # ------------------------------------------------------------------ #

    def add_entry(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        key_pair: Optional[KeyPair] = None,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        validate_schema: bool = True,
    ) -> Entry:
        """Sign an entry and place it in the pending pool.

        The entry becomes part of the chain with the next :meth:`seal_block`.
        """
        if validate_schema and self.schema is not None:
            self.schema.validate(data)
        entry = Entry(
            data=dict(data),
            author=author,
            signature="",
            kind=EntryKind.DATA,
            expires_at_time=expires_at_time,
            expires_at_block=expires_at_block,
        )
        entry = sign_entry(self.scheme, entry, author, key_pair)
        self._pending.append(entry)
        return entry

    def submit_signed_entry(
        self,
        entry: Entry,
        *,
        validate_schema: bool = True,
    ) -> Optional[DeletionDecision]:
        """Accept an entry that was already signed by the submitting client.

        This is the path the anchor nodes use for entries arriving over the
        network: the client produced the signature, the node validates it,
        evaluates deletion requests, and queues the entry for the next block.
        Returns the deletion decision for deletion requests, ``None``
        otherwise.
        """
        from repro.core.validation import validate_entry_signature

        validate_entry_signature(entry, self.config.signature_scheme)
        if entry.is_deletion_request:
            reference = entry.deletion_target()
            approved, reason = self._evaluate_deletion(entry, reference)
            self._pending.append(entry)
            decision = self.registry.record_request(entry, approved=approved, reason=reason)
            self._publish_deletion_requested(entry.author, reference, approved, reason)
            return decision
        if validate_schema and self.schema is not None:
            self.schema.validate(entry.data)
        self._pending.append(entry)
        return None

    def request_deletion(
        self,
        target: Union[EntryReference, tuple[int, int]],
        author: str,
        *,
        key_pair: Optional[KeyPair] = None,
        reason: str = "",
        strict: bool = False,
    ) -> DeletionDecision:
        """Submit a signed deletion request for ``target``.

        The request entry is always added to the pending pool (the paper
        stores even ineffective requests); the returned decision states
        whether the quorum approved it.  With ``strict=True`` a rejected
        request raises instead.
        """
        reference = target if isinstance(target, EntryReference) else EntryReference(*target)
        request = build_deletion_request(reference, author=author, signature="", reason=reason)
        request = sign_entry(self.scheme, request, author, key_pair)

        approved, decision_reason = self._evaluate_deletion(request, reference)
        self._pending.append(request)
        decision = self.registry.record_request(request, approved=approved, reason=decision_reason)
        self._publish_deletion_requested(author, reference, approved, decision_reason)
        if strict and not approved:
            raise DeletionError(decision_reason)
        return decision

    def _evaluate_deletion(self, request: Entry, reference: EntryReference) -> tuple[bool, str]:
        located = self.find_entry(reference)
        if located is None:
            return False, f"target {reference} does not exist in the living chain"
        _, target_entry = located
        if target_entry.is_deletion_request:
            return False, "deletion requests cannot themselves be deleted"
        allowed, reason = self.authorizer(request, target_entry)
        if not allowed:
            return False, reason
        if self.cohesion_checker is not None:
            cohesive, cohesion_reason = self.cohesion_checker(reference, self, request.author)
            if not cohesive:
                return False, f"semantic cohesion violated: {cohesion_reason}"
        return True, reason

    # ------------------------------------------------------------------ #
    # Block production
    # ------------------------------------------------------------------ #

    def seal_block(self) -> Block:
        """Seal the pending entries into the next normal block.

        Afterwards any due summary block is created automatically, which may
        merge expiring sequences, shift the genesis marker and physically cut
        old blocks off.  Subscribers (anchor nodes announcing to their peers)
        are notified through a ``block-sealed`` event once sealing — including
        the follow-up summary work — has completed.
        """
        block = Block(
            block_number=self.next_block_number,
            timestamp=self.clock.now(),
            previous_hash=self.head.block_hash,
            entries=list(self._pending),
            block_type=BlockType.NORMAL,
        )
        if self.block_finalizer is not None:
            block = self.block_finalizer(block)
        self._pending = []
        self._append(block)
        self._create_due_summary_blocks()
        self._publish(
            EventType.BLOCK_SEALED,
            f"block {block.block_number} sealed with {len(block.entries)} entries",
            block_number=block.block_number,
            block=block,
            entry_count=len(block.entries),
        )
        return block

    def receive_block(self, block: Block) -> Block:
        """Adopt a normal block produced by another anchor node.

        Replicas append the received block as-is (keeping its timestamp and
        consensus seal), register any deletion requests it contains, and then
        compute the due summary block locally — the paper's synchronisation
        model of Section IV-B.  Summary blocks are rejected: they *"do not
        need to be propagated"* and must be computed by every node itself.
        """
        if block.is_summary:
            raise ChainIntegrityError("summary blocks are computed locally, never received")
        if is_summary_slot(block.block_number, self.config.sequence_length):
            raise ChainIntegrityError(
                f"received block {block.block_number} occupies a summary slot"
            )
        self._append(block)
        for entry in block.entries:
            if entry.is_deletion_request:
                reference = entry.deletion_target()
                approved, reason = self._evaluate_deletion(entry, reference)
                self.registry.record_request(entry, approved=approved, reason=reason)
                self._publish_deletion_requested(
                    entry.author, reference, approved, reason, replicated=True
                )
        self._create_due_summary_blocks()
        return block

    def add_entry_block(
        self,
        data: Mapping[str, Any],
        author: str,
        **entry_kwargs: Any,
    ) -> Block:
        """Convenience: submit a single entry and immediately seal the block.

        This is how the paper's evaluation operates — every login event
        becomes one block.
        """
        self.add_entry(data, author, **entry_kwargs)
        return self.seal_block()

    def idle_tick(self) -> Optional[Block]:
        """Append an empty block if the configured idle interval elapsed.

        Returns the appended block (possibly followed by an automatic summary
        block) or ``None`` when no action was needed.
        """
        if self._pending:
            return None
        if not needs_empty_block(
            self.config,
            last_block_timestamp=self.head.timestamp,
            current_time=self._peek_time(),
        ):
            return None
        self._publish(
            EventType.EMPTY_BLOCK,
            "idle interval elapsed; appending empty block",
        )
        return self.seal_block()

    def _peek_time(self) -> int:
        """Passive read of the chain clock (idle checks, expiry evaluation).

        Always routed through ``peek()``: ``LogicalClock.now()`` advances on
        every reading, so a passive read going through ``now()`` would
        silently age the chain (earlier idle-block triggers, earlier
        temporary-entry expiry).  Only block creation consumes ``now()``.
        """
        return self.clock.peek()

    def _append(self, block: Block) -> None:
        head = self._head
        if head is not None:
            if block.block_number != head.block_number + 1:
                raise ChainIntegrityError(
                    f"expected block number {head.block_number + 1}, got {block.block_number}"
                )
            if block.previous_hash != head.block_hash:
                raise ChainIntegrityError("previous hash does not match the current head")
        try:
            self._store.append(block)
        except StorageError as exc:
            raise ChainIntegrityError(f"storage backend rejected block: {exc}") from exc
        self._head = block
        self._total_blocks_created += 1
        self._index.on_append(block)
        self._publish(
            EventType.BLOCK_APPENDED,
            f"block {block.block_number} ({block.block_type.value}) appended",
            block=block,
            block_type=block.block_type.value,
        )

    def _create_due_summary_blocks(self) -> None:
        while is_summary_slot(self.next_block_number, self.config.sequence_length):
            self._create_summary_block()

    def _create_summary_block(self) -> SummaryResult:
        # Expiry is evaluated at the summary block's own timestamp — which
        # the paper defines as the *preceding block's* timestamp (Section
        # IV-B) — not at the local clock.  On-chain time makes the summary a
        # pure function of chain content: a replica recomputing it at
        # message-delivery time (arbitrarily later on the virtual clock)
        # reaches the identical carried/dropped split, so temporary-entry
        # expiry can never fork the quorum.
        result = self.summarizer.build_summary_block(
            sequences=self._index.live_views(),
            previous_block=self.head,
            next_block_number=self.next_block_number,
            registry=self.registry,
            current_time=self.head.timestamp,
        )
        self._append(result.block)
        self._publish(
            EventType.SUMMARY_CREATED,
            f"summary block {result.block.block_number} created "
            f"({len(result.carried_entries)} entries carried, {len(result.dropped_entries)} dropped)",
            carried_entries=len(result.carried_entries),
            dropped_entries=len(result.dropped_entries),
        )
        if result.shifted_marker:
            self._apply_marker_shift(result)
        return result

    def _apply_marker_shift(self, result: SummaryResult) -> None:
        assert result.new_marker is not None
        new_marker = result.new_marker
        cut_off: list[Block] = []
        for block in self._store:
            if block.block_number >= new_marker:
                break
            cut_off.append(block)
        self._store.truncate_before(new_marker)
        self._genesis_marker = new_marker
        self._index.cut_before(new_marker, cut_off)
        self._deleted_block_count += len(cut_off)
        self._deleted_entry_count += len(result.dropped_entries)
        for dropped in result.dropped_entries:
            if self.registry.is_marked_entry(dropped.entry, dropped.block_number):
                reference = dropped.entry.reference_in(dropped.block_number)
                try:
                    self.registry.mark_executed(reference)
                except DeletionError:
                    continue
                self._publish(
                    EventType.DELETION_EXECUTED,
                    f"deletion of {reference} executed; cut off by marker shift to {new_marker}",
                    reference=reference.to_dict(),
                    new_marker=new_marker,
                )
        merged = ", ".join(str(view.index) for view in result.expired_sequences)
        self._publish(
            EventType.MARKER_SHIFT,
            f"sequences [{merged}] merged into block {result.block.block_number}; "
            f"genesis marker moved to block {new_marker}; {len(cut_off)} blocks deleted",
            new_marker=new_marker,
            blocks_deleted=len(cut_off),
            merged_sequences=[view.index for view in result.expired_sequences],
        )

    def _publish(
        self,
        event_type: EventType,
        detail: str,
        *,
        block_number: Optional[int] = None,
        **payload: Any,
    ) -> None:
        """Publish a typed event anchored at the current head (or override)."""
        self.bus.publish(
            ChainEvent(
                block_number=self.head.block_number if block_number is None else block_number,
                kind=event_type.value,
                detail=detail,
                payload=payload,
            )
        )

    def _publish_deletion_requested(
        self,
        author: str,
        reference: EntryReference,
        approved: bool,
        reason: str,
        *,
        replicated: bool = False,
    ) -> None:
        verdict = "approved" if approved else "rejected"
        prefix = "replicated deletion request" if replicated else "deletion request"
        self._publish(
            EventType.DELETION_REQUESTED,
            f"{prefix} by {author} for {reference} {verdict}: {reason}",
            reference=reference.to_dict(),
            author=author,
            approved=approved,
            reason=reason,
        )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def find_entry(self, reference: EntryReference) -> Optional[tuple[Block, Entry]]:
        """Locate an entry by its original (block number, entry number).

        The original position wins if it is still living; otherwise the
        newest carried-forward copy inside a living summary block is
        returned.  Returns ``None`` when the entry does not exist (anymore).
        This is an O(1) lookup in the incrementally maintained chain index —
        the complexity the paper claims in Section IV-D (*"blocks are
        referenced directly by number"*).
        """
        return self._index.find(reference)

    def entry_exists(self, reference: EntryReference) -> bool:
        """True when the referenced entry is still retrievable from the chain."""
        return self.find_entry(reference) is not None

    def is_marked_for_deletion(self, reference: EntryReference) -> bool:
        """True when the entry is approved for (delayed) deletion.

        Applications must refuse new transactions that depend on marked data
        (Section IV-D3: *"Subsequent incoming transactions based on this
        marked data are no longer permitted"*).
        """
        return self.registry.is_marked(reference)

    def iter_entries(self) -> Iterable[tuple[Block, Entry]]:
        """Iterate over every (block, entry) pair in the living chain."""
        for block in self._store:
            for entry in block.entries:
                yield block, entry

    # ------------------------------------------------------------------ #
    # Validation and persistence
    # ------------------------------------------------------------------ #

    def validate(self, *, verify_signatures: bool = False) -> None:
        """Validate the living chain; raises on inconsistency."""
        from repro.core.validation import validate_chain

        validate_chain(
            list(self._store),
            config=self.config,
            genesis_marker=self._genesis_marker,
            verify_signatures=verify_signatures,
        )

    def statistics(self) -> dict[str, Any]:
        """Operational counters used by reports and benchmarks.

        Every chain-level figure comes from the rolling aggregates of the
        chain index, so this is O(1) — no repartitioning, no re-serialising.
        """
        return {
            "living_blocks": self.length,
            "living_entries": self._index.entry_count,
            "total_blocks_created": self._total_blocks_created,
            "deleted_blocks": self._deleted_block_count,
            "dropped_entries": self._deleted_entry_count,
            "genesis_marker": self._genesis_marker,
            "byte_size": self._index.byte_size,
            "completed_sequences": self._index.completed_view_count,
            "deletions": self.registry.statistics(),
        }

    def verify_index(self) -> None:
        """Validate the incremental index against the legacy linear scans.

        O(total entries); used by the equivalence tests and snapshot loads.
        Raises :class:`ChainIntegrityError` on any divergence.
        """
        self._index.self_check(list(self._store), self._genesis_marker)

    def to_dict(self) -> dict[str, Any]:
        """Serialise the full chain state (blocks, marker, registry, events)."""
        return {
            "config": self.config.to_dict(),
            "genesis_marker": self._genesis_marker,
            "total_blocks_created": self._total_blocks_created,
            "deleted_block_count": self._deleted_block_count,
            "deleted_entry_count": self._deleted_entry_count,
            "blocks": [block.to_dict() for block in self._store],
            "registry": self.registry.to_dict(),
            "events": [event.to_dict() for event in self.bus.audit_log],
        }

    @classmethod
    def from_dict(
        cls,
        payload: Mapping[str, Any],
        *,
        clock: Optional[Clock] = None,
        schema: Optional[EntrySchema] = None,
        authorizer: Optional[Authorizer] = None,
        cohesion_checker: Optional[CohesionChecker] = None,
        admins: Iterable[str] = (),
        store: Optional[BlockStore] = None,
        event_bus: Optional[EventBus] = None,
    ) -> "Blockchain":
        """Restore a chain previously serialised with :meth:`to_dict`.

        ``store`` selects the storage backend the restored chain runs on
        (fresh in-memory store by default); it must be empty — the snapshot's
        blocks are loaded into it.  The serialised audit trail is restored
        into the event bus, so the trail survives snapshot round-trips.
        """
        config = ChainConfig.from_dict(payload["config"])
        chain = cls.__new__(cls)
        chain.config = config
        chain.clock = clock or LogicalClock(start=0)
        chain.schema = schema
        chain.scheme = new_scheme(config.signature_scheme)
        chain.registry = DeletionRegistry.from_dict(payload.get("registry", {}))
        chain.summarizer = Summarizer(config)
        chain.cohesion_checker = cohesion_checker
        chain.authorizer = authorizer or default_authorizer(
            admins=admins,
            allow_admin_foreign_deletion=config.allow_foreign_deletion_by_admin,
        )
        chain.block_finalizer = None
        chain.bus = event_bus if event_bus is not None else EventBus()
        chain.bus.restore_audit_log(
            ChainEvent.from_dict(item) for item in payload.get("events", ())
        )
        blocks = [Block.from_dict(item) for item in payload.get("blocks", ())]
        if not blocks:
            raise ChainIntegrityError("serialised chain contains no blocks")
        chain._store = store if store is not None else MemoryBlockStore()
        if len(chain._store):
            raise ChainIntegrityError("the store passed to from_dict must be empty")
        for block in blocks:
            chain._store.append(block)
        chain._head = blocks[-1]
        chain._genesis_marker = int(payload.get("genesis_marker", blocks[0].block_number))
        chain._pending = []
        chain._total_blocks_created = int(payload.get("total_blocks_created", len(blocks)))
        chain._deleted_block_count = int(payload.get("deleted_block_count", 0))
        chain._deleted_entry_count = int(payload.get("deleted_entry_count", 0))
        chain._index = ChainIndex.build(blocks, config.sequence_length)
        # Restore the clock to continue after the last timestamp.
        if isinstance(chain.clock, LogicalClock) and clock is None:
            chain.clock = LogicalClock(start=blocks[-1].timestamp + 1)
        return chain

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (
            f"Blockchain(length={self.length}, marker={self._genesis_marker}, "
            f"head={self.head.block_number}, sequences={self._index.view_count})"
        )
