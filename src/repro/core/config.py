"""Configuration objects for the selective-deletion blockchain.

The paper leaves several knobs to the deployment:

* the sequence length *l* (distance between summary blocks, Section IV-B;
  the evaluation uses "a summary block for every third block"),
* the maximum chain length *l_max* that triggers summarisation and genesis
  shifting (Section IV-C, Eq. 1), alternatively a maximum number of
  sequences,
* a minimum remaining length / minimum number of summary blocks / minimum
  time-span coverage so the chain is never shortened too far
  (Section IV-D3),
* the summary-block content mode — full copies versus hash/Merkle references
  to off-chain packages (Section V-B2),
* the redundancy policy that hampers the 51 % attack by re-embedding a middle
  sequence or its Merkle root (Section V-B1, Fig. 9),
* the empty-block interval used to guarantee progress of delayed deletion
  when no transactions arrive (Section IV-D3).

:class:`ChainConfig` bundles all of them with validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.core.errors import ConfigurationError
from repro.crypto.hashing import canonical_json


class SummaryMode(str, Enum):
    """How a summary block carries forward data from expiring sequences."""

    #: Copy the full data part of every retained entry (paper default).
    FULL_COPY = "full_copy"
    #: Store only Merkle roots / hash pointers to the retained data; the data
    #: itself lives off-chain (the mitigation of Section V-B2).
    MERKLE_REFERENCE = "merkle_reference"


class RedundancyPolicy(str, Enum):
    """What extra confirmation material a summary block embeds (Fig. 9)."""

    #: No redundancy; a deleted sequence loses its confirmations.
    NONE = "none"
    #: Embed the Merkle root of the middle sequence omega_{l_beta/2}.
    MIDDLE_MERKLE_ROOT = "middle_merkle_root"
    #: Embed a full copy of the middle sequence's data.
    MIDDLE_FULL_COPY = "middle_full_copy"


class LengthUnit(str, Enum):
    """Unit in which the retention limit is expressed (Section IV-D3)."""

    BLOCKS = "blocks"
    SEQUENCES = "sequences"
    TIME = "time"


class ShrinkStrategy(str, Enum):
    """How many old sequences are merged once the retention limit is hit.

    Eq. 1 of the paper removes the first sequence; the evaluation (Fig. 7)
    merges *"the first and second sequence ... into the last summary block"*
    and Section IV-D3 notes that *"multiple sequences can also being combined
    in one summary block"*.  The strategy makes this choice explicit and is
    one of the ablations listed in DESIGN.md.
    """

    #: Apply Eq. 1 exactly once: merge only the oldest sequence.
    SINGLE_SEQUENCE = "single_sequence"
    #: Apply Eq. 1 repeatedly until the chain is back within the limit.
    TO_LIMIT = "to_limit"
    #: Merge every completed old sequence, keeping only the sequence that is
    #: being closed by the new summary block (matches the paper's evaluation).
    ALL_OLD = "all_old"


@dataclass(frozen=True)
class RetentionPolicy:
    """When the chain is considered "too long" and how far it may shrink.

    Attributes
    ----------
    unit:
        Whether ``max_length`` / ``min_length`` count blocks, sequences, or a
        time span (in clock ticks / seconds).
    max_length:
        Upper bound; exceeding it triggers summarisation of the oldest
        sequence(s).  ``None`` disables automatic shrinking.
    min_length:
        Lower bound that must remain after shrinking (Section IV-D3's
        "minimum length ... for the remaining blockchain").
    min_summary_blocks:
        Minimum number of summary blocks that must remain.
    min_time_span:
        Minimum covered time span (in the same unit as block timestamps)
        that must remain.
    """

    unit: LengthUnit = LengthUnit.BLOCKS
    max_length: Optional[int] = None
    min_length: int = 0
    min_summary_blocks: int = 0
    min_time_span: int = 0

    def __post_init__(self) -> None:
        if self.max_length is not None and self.max_length <= 0:
            raise ConfigurationError("max_length must be positive when set")
        if self.min_length < 0 or self.min_summary_blocks < 0 or self.min_time_span < 0:
            raise ConfigurationError("minimum retention bounds must be non-negative")
        if (
            self.max_length is not None
            and self.unit is not LengthUnit.TIME
            and self.min_length > self.max_length
        ):
            raise ConfigurationError("min_length cannot exceed max_length")

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "unit": self.unit.value,
            "max_length": self.max_length,
            "min_length": self.min_length,
            "min_summary_blocks": self.min_summary_blocks,
            "min_time_span": self.min_time_span,
        }

    def __canonical_json__(self) -> str:
        """Canonical form: the serialised :meth:`to_dict` payload."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RetentionPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        return cls(
            unit=LengthUnit(payload.get("unit", LengthUnit.BLOCKS.value)),
            max_length=payload.get("max_length"),
            min_length=int(payload.get("min_length", 0)),
            min_summary_blocks=int(payload.get("min_summary_blocks", 0)),
            min_time_span=int(payload.get("min_time_span", 0)),
        )


@dataclass(frozen=True)
class ChainConfig:
    """Complete configuration of a selective-deletion blockchain.

    Attributes
    ----------
    sequence_length:
        Number of blocks per sequence *including* the terminating summary
        block (the paper's *l*; the evaluation uses 3).
    retention:
        When and how far the chain shrinks.
    summary_mode:
        Full copies or Merkle references inside summary blocks.
    redundancy:
        51 %-attack hampering policy of Fig. 9.
    empty_block_interval:
        If no entry arrived for this many clock ticks, an empty block is
        appended so delayed deletions still make progress (Section IV-D3).
        ``None`` disables the behaviour.
    signature_scheme:
        Name of the signature scheme used for entries and deletion requests
        (``"simplified"`` or ``"ecdsa"``).
    allow_foreign_deletion_by_admin:
        Whether holders of the ``ADMIN`` role (the quorum's master signature)
        may delete entries they did not author (Section IV-D1).
    """

    sequence_length: int = 3
    retention: RetentionPolicy = field(default_factory=RetentionPolicy)
    shrink_strategy: ShrinkStrategy = ShrinkStrategy.TO_LIMIT
    summary_mode: SummaryMode = SummaryMode.FULL_COPY
    redundancy: RedundancyPolicy = RedundancyPolicy.NONE
    empty_block_interval: Optional[int] = None
    signature_scheme: str = "simplified"
    allow_foreign_deletion_by_admin: bool = True

    def __post_init__(self) -> None:
        if self.sequence_length < 2:
            raise ConfigurationError(
                "sequence_length must be at least 2 (one data block plus the summary block)"
            )
        if self.empty_block_interval is not None and self.empty_block_interval <= 0:
            raise ConfigurationError("empty_block_interval must be positive when set")
        if (
            self.retention.unit is LengthUnit.BLOCKS
            and self.retention.max_length is not None
            and self.retention.max_length < self.sequence_length
        ):
            raise ConfigurationError(
                "retention.max_length must be at least one full sequence of blocks"
            )

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "sequence_length": self.sequence_length,
            "retention": self.retention.to_dict(),
            "shrink_strategy": self.shrink_strategy.value,
            "summary_mode": self.summary_mode.value,
            "redundancy": self.redundancy.value,
            "empty_block_interval": self.empty_block_interval,
            "signature_scheme": self.signature_scheme,
            "allow_foreign_deletion_by_admin": self.allow_foreign_deletion_by_admin,
        }

    def __canonical_json__(self) -> str:
        """Canonical form: the serialised :meth:`to_dict` payload."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ChainConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        return cls(
            sequence_length=int(payload.get("sequence_length", 3)),
            retention=RetentionPolicy.from_dict(payload.get("retention", {})),
            shrink_strategy=ShrinkStrategy(
                payload.get("shrink_strategy", ShrinkStrategy.TO_LIMIT.value)
            ),
            summary_mode=SummaryMode(payload.get("summary_mode", SummaryMode.FULL_COPY.value)),
            redundancy=RedundancyPolicy(payload.get("redundancy", RedundancyPolicy.NONE.value)),
            empty_block_interval=payload.get("empty_block_interval"),
            signature_scheme=str(payload.get("signature_scheme", "simplified")),
            allow_foreign_deletion_by_admin=bool(payload.get("allow_foreign_deletion_by_admin", True)),
        )

    @classmethod
    def paper_evaluation(cls, *, max_sequences: int = 2) -> "ChainConfig":
        """The configuration of the paper's evaluation (Section V).

        A summary block every third block, simplified signatures, and — once
        more than ``max_sequences`` sequences exist — every completed old
        sequence merged into the newest summary block, which is exactly the
        behaviour shown in Figs. 6-8 (two sequences merged at once, genesis
        marker shifted to block 6).
        """
        return cls(
            sequence_length=3,
            retention=RetentionPolicy(unit=LengthUnit.SEQUENCES, max_length=max_sequences),
            shrink_strategy=ShrinkStrategy.ALL_OLD,
            summary_mode=SummaryMode.FULL_COPY,
            redundancy=RedundancyPolicy.NONE,
            signature_scheme="simplified",
        )
