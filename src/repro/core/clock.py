"""Clocks.

Block timestamps drive two paper mechanisms: summary blocks reuse the
timestamp of the preceding block (Section IV-B), and temporary entries as
well as time-based retention compare against the current time
(Sections IV-D3 and IV-D4).  To keep everything deterministic and testable
the chain takes an injectable clock; the default :class:`LogicalClock` simply
counts ticks, while :class:`SystemClock` uses wall-clock seconds for
deployments that want real timestamps.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Minimal clock interface: a monotonically non-decreasing integer time."""

    def now(self) -> int:
        """Return the current time."""
        ...  # pragma: no cover


class LogicalClock:
    """Deterministic tick counter advancing by ``step`` on every reading.

    Reading the time advances it, so consecutive blocks naturally receive
    increasing timestamps without any wall-clock dependence.  Tests and
    workload generators can also advance the clock explicitly to model idle
    periods (which is what triggers empty blocks, Section IV-D3).
    """

    def __init__(self, start: int = 0, step: int = 1) -> None:
        if step < 0:
            raise ValueError("clock step must be non-negative")
        self._current = start
        self._step = step

    def now(self) -> int:
        """Return the current tick and advance by the configured step."""
        value = self._current
        self._current += self._step
        return value

    def peek(self) -> int:
        """Return the next tick without advancing."""
        return self._current

    def advance(self, ticks: int) -> None:
        """Jump the clock forward by ``ticks`` (models idle time)."""
        if ticks < 0:
            raise ValueError("cannot advance the clock backwards")
        self._current += ticks


class FixedClock:
    """A clock frozen at a single value (useful for golden-output tests)."""

    def __init__(self, value: int = 0) -> None:
        self._value = value

    def now(self) -> int:
        """Return the frozen value."""
        return self._value

    def set(self, value: int) -> None:
        """Move the frozen value."""
        self._value = value


class SystemClock:
    """Wall-clock seconds since the epoch, as integers."""

    def now(self) -> int:
        """Return ``int(time.time())``."""
        return int(time.time())
