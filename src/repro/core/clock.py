"""Clocks.

Block timestamps drive two paper mechanisms: summary blocks reuse the
timestamp of the preceding block (Section IV-B), and temporary entries as
well as time-based retention compare against the current time
(Sections IV-D3 and IV-D4).  To keep everything deterministic and testable
the chain takes an injectable clock; the default :class:`LogicalClock` simply
counts ticks, :class:`SystemClock` uses wall-clock seconds for deployments
that want real timestamps, and :class:`SimulationClock` slaves chain time to
the virtual time of a network :class:`~repro.network.kernel.EventKernel`.

The protocol distinguishes *consuming* reads from *passive* reads:
``now()`` stamps a new block (and, for :class:`LogicalClock`, advances the
tick counter), while ``peek()`` answers "what time is it" without side
effects.  Every non-block read — idle-interval checks, expiry evaluation
during summarisation, logging, statistics — must use ``peek()``; a passive
read routed through ``now()`` would silently age a :class:`LogicalClock`
chain (see the regression tests in ``tests/test_core_config_schema.py``).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover - only for type annotations
    from repro.network.kernel import EventKernel


class Clock(Protocol):
    """Minimal clock interface: a monotonically non-decreasing integer time.

    ``now()`` is the consuming read used to stamp blocks; ``peek()`` is the
    passive read used everywhere else and must never advance the clock.
    """

    def now(self) -> int:
        """Return the current time (may advance the clock)."""
        ...  # pragma: no cover

    def peek(self) -> int:
        """Return the current time without advancing the clock."""
        ...  # pragma: no cover


class LogicalClock:
    """Deterministic tick counter advancing by ``step`` on every reading.

    Reading the time advances it, so consecutive blocks naturally receive
    increasing timestamps without any wall-clock dependence.  Tests and
    workload generators can also advance the clock explicitly to model idle
    periods (which is what triggers empty blocks, Section IV-D3).
    """

    def __init__(self, start: int = 0, step: int = 1) -> None:
        if step < 0:
            raise ValueError("clock step must be non-negative")
        self._current = start
        self._step = step

    def now(self) -> int:
        """Return the current tick and advance by the configured step."""
        value = self._current
        self._current += self._step
        return value

    def peek(self) -> int:
        """Return the next tick without advancing."""
        return self._current

    def advance(self, ticks: int) -> None:
        """Jump the clock forward by ``ticks`` (models idle time)."""
        if ticks < 0:
            raise ValueError("cannot advance the clock backwards")
        self._current += ticks


class FixedClock:
    """A clock frozen at a single value (useful for golden-output tests)."""

    def __init__(self, value: int = 0) -> None:
        self._value = value

    def now(self) -> int:
        """Return the frozen value."""
        return self._value

    def peek(self) -> int:
        """Return the frozen value (reading never changes it)."""
        return self._value

    def set(self, value: int) -> None:
        """Move the frozen value."""
        self._value = value


class SystemClock:
    """Wall-clock seconds since the epoch, as integers."""

    def now(self) -> int:
        """Return ``int(time.time())``."""
        return int(time.time())

    def peek(self) -> int:
        """Same as :meth:`now`; the wall clock advances on its own."""
        return int(time.time())


class SimulationClock:
    """Chain time slaved to the virtual time of an event kernel.

    Every chain in a simulated deployment holds one of these bound to the
    shared :class:`~repro.network.kernel.EventKernel`, so block timestamps,
    idle-interval checks and temporary-entry expiry all follow *simulated*
    time: an idle period is a stretch of kernel time with no traffic, not a
    manual ``tick()`` call.  Because every replica reads the same kernel,
    expiry decisions during summarisation agree across nodes by
    construction (with per-replica logical clocks they could diverge).

    ``ms_per_tick`` converts kernel milliseconds into chain ticks; the
    default of 1.0 makes one tick one virtual millisecond.  Reading the
    clock never advances it — the kernel owns time.  :meth:`advance` (used
    by the idle-tick protocol path) fast-forwards the *kernel*, executing
    any deliveries and faults that fall due on the way, so "advance the
    producer's clock" and "let simulated time pass" are the same operation.
    """

    def __init__(self, kernel: "EventKernel", *, ms_per_tick: float = 1.0, start: int = 0) -> None:
        if ms_per_tick <= 0:
            raise ValueError("ms_per_tick must be positive")
        self._kernel = kernel
        self._ms_per_tick = ms_per_tick
        self._start = start

    @property
    def kernel(self) -> "EventKernel":
        """The kernel this clock reads."""
        return self._kernel

    def now(self) -> int:
        """Current chain tick derived from kernel time (never advances)."""
        return self.peek()

    def peek(self) -> int:
        """Current chain tick derived from kernel time."""
        return self._start + int(self._kernel.now // self._ms_per_tick)

    def advance(self, ticks: int) -> None:
        """Fast-forward the kernel by ``ticks`` chain ticks of virtual time.

        Events (deliveries, scheduled faults, heartbeats) falling due inside
        the window are executed — simulated time genuinely passes.
        """
        if ticks < 0:
            raise ValueError("cannot advance the clock backwards")
        self._kernel.run_until(self._kernel.now + ticks * self._ms_per_tick)
