"""Gossip anti-entropy: periodic digest exchange between anchor replicas.

Push gossip alone leaves a residue: on sparse overlays with small fan-out a
block announcement can die out one hop short of some replica, and a node
that was offline misses the hops entirely.  The scenario catalogue used to
paper over this with an explicit catch-up call at the end of each run.  This
module replaces that fallback with the classic *anti-entropy* mechanism:

* every ``interval_ms`` of virtual time (a :meth:`EventKernel.every`
  booking), each online replica posts a tiny ``SYNC_DIGEST`` — head number,
  head hash, genesis marker — to a per-round fan-out subset of its overlay
  neighbours;
* a receiver that learns it is behind *pulls*: incremental catch-up
  (``SYNC_REQUEST``) while the gap is still served, snapshot bootstrap
  (:mod:`repro.sync.bootstrap`) when the sender's marker has shifted past
  the receiver's head.

Digest target selection reuses :meth:`GossipOverlay.targets` keyed by the
round number, so each round spreads over different neighbour subsets while
remaining a pure function of ``(seed, node, round)`` — runs replay
byte-identically.  The service keeps convergence counters (rounds run,
digests posted, first round at which all online replicas shared one head
hash) that :class:`~repro.network.simulator.NetworkSimulator` surfaces in
its reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.network.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.gossip import GossipOverlay
    from repro.network.kernel import EventHandle, EventKernel
    from repro.network.node import AnchorNode
    from repro.network.transport import InMemoryTransport

#: Default virtual-time gap between digest rounds.
DEFAULT_INTERVAL_MS = 150.0


class AntiEntropyService:
    """Books and accounts the periodic digest rounds of one deployment."""

    def __init__(
        self,
        *,
        transport: "InMemoryTransport",
        overlay: "GossipOverlay",
        kernel: "EventKernel",
        nodes: Mapping[str, "AnchorNode"],
        interval_ms: float = DEFAULT_INTERVAL_MS,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.transport = transport
        self.overlay = overlay
        self.kernel = kernel
        self.nodes = dict(nodes)
        self.interval_ms = float(interval_ms)
        self.rounds = 0
        self.digests_posted = 0
        #: First round whose *starting* state had every online replica on one
        #: head hash — i.e. the previous rounds had already converged the
        #: deployment.  ``None`` until observed.
        self.converged_at_round: Optional[int] = None
        self._handle: Optional["EventHandle"] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self, *, until: Optional[float] = None) -> "EventHandle":
        """Book the recurring digest round on the kernel."""
        if self._handle is not None and not self._handle.cancelled:
            raise ValueError("anti-entropy rounds are already running")
        self._handle = self.kernel.every(
            self.interval_ms, self._round, label="anti-entropy", until=until
        )
        return self._handle

    def stop(self) -> None:
        """Cancel the recurring rounds."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------ #
    # One round
    # ------------------------------------------------------------------ #

    def _online_ids(self) -> list[str]:
        return [
            node_id for node_id in sorted(self.nodes)
            if not self.transport.is_offline(node_id)
        ]

    def _is_converged(self) -> bool:
        heads = {
            self.nodes[node_id].chain.head.block_hash for node_id in self._online_ids()
        }
        return len(heads) <= 1

    def _round(self) -> None:
        """Post one digest per online replica to its per-round targets."""
        self.rounds += 1
        if self.converged_at_round is None and self._is_converged():
            self.converged_at_round = self.rounds
        for node_id in self._online_ids():
            chain = self.nodes[node_id].chain
            digest = Message(
                kind=MessageKind.SYNC_DIGEST,
                sender=node_id,
                payload={
                    "head": chain.head.block_number,
                    "head_hash": chain.head.block_hash,
                    "genesis_marker": chain.genesis_marker,
                    "round": self.rounds,
                },
            )
            targets = self.overlay.targets(node_id, f"anti-entropy:{self.rounds}")
            self.digests_posted += self.transport.publish(node_id, targets, digest)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def statistics(self) -> dict[str, Any]:
        """Service counters plus the per-node sync counters, aggregated."""
        totals: dict[str, int] = {}
        for node in self.nodes.values():
            for key, value in node.sync_stats.items():
                totals[key] = totals.get(key, 0) + value
        return {
            "interval_ms": self.interval_ms,
            "rounds": self.rounds,
            "digests_posted": self.digests_posted,
            "converged_at_round": self.converged_at_round,
            # Convergence as of *now* — a pull triggered by the final round
            # may have converged the deployment after that round started.
            "converged": self._is_converged(),
            "nodes": totals,
        }
