"""Replica synchronisation: wire snapshot bootstrap and gossip anti-entropy.

This package closes the replica lifecycle on top of the network stack
(:mod:`repro.network`) and the snapshot format (:mod:`repro.storage.snapshot`):

* :mod:`repro.sync.bootstrap` — a replica whose catch-up gap spans a
  genesis-marker shift pulls a peer's serialised snapshot in bounded,
  digest-verified ``SNAPSHOT_REQUEST``/``SNAPSHOT_CHUNK`` exchanges and
  adopts it wholesale (Section V-B4's "current status quo").
* :mod:`repro.sync.antientropy` — periodic ``SYNC_DIGEST`` rounds on the
  gossip overlay; replicas that learn they are behind pull via incremental
  catch-up or, across a marker shift, the snapshot bootstrap.

The decision logic that picks between the two lives in
:meth:`repro.network.node.AnchorNode.synchronize`.
"""

from repro.sync.antientropy import DEFAULT_INTERVAL_MS, AntiEntropyService
from repro.sync.bootstrap import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_MAX_RESTARTS,
    DEFAULT_MAX_RETRIES,
    BootstrapError,
    BootstrapReport,
    PeerProbe,
    SnapshotChunkCache,
    SnapshotManifest,
    fetch_snapshot,
    fetch_snapshot_striped,
    probe_snapshot_peer,
    rank_bootstrap_peers,
)

__all__ = [
    "AntiEntropyService",
    "DEFAULT_INTERVAL_MS",
    "BootstrapError",
    "BootstrapReport",
    "PeerProbe",
    "SnapshotChunkCache",
    "SnapshotManifest",
    "fetch_snapshot",
    "fetch_snapshot_striped",
    "probe_snapshot_peer",
    "rank_bootstrap_peers",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_MAX_RESTARTS",
    "DEFAULT_MAX_RETRIES",
]
