"""Snapshot bootstrap over the wire.

Incremental catch-up (``AnchorNode.catch_up``) replays missed *living* blocks
from a peer.  Once the peer's genesis marker has shifted past a replica's
head, the blocks the replica would need next have been physically deleted —
Section V-B4's isolation discussion: a node isolated across a summarisation
cycle cannot reconstruct the gap and must instead adopt the *"current status
quo"* wholesale.  This module implements that adoption as a chunked pull
protocol over the ordinary message transport:

1. The stale replica sends ``SNAPSHOT_REQUEST {chunk, chunk_size}`` requests.
2. The peer serialises its chain once per head
   (:class:`SnapshotChunkCache`), answers each request with a
   ``SNAPSHOT_CHUNK`` carrying one bounded slice plus the
   :class:`SnapshotManifest` (total size, chunk count, head hash, payload
   digest).
3. :func:`fetch_snapshot` pulls every chunk, retransmitting lost ones
   (bounded retries per chunk), restarts cleanly when the peer's head moves
   mid-transfer, and verifies the assembled payload against the manifest
   digest before handing it to
   :func:`repro.storage.snapshot.chain_from_payload`.

Everything is deterministic: chunk boundaries are pure arithmetic, the
digest is sha256 over the canonical payload, and on a kernel-backed
transport each request/response consumes virtual time — so a bootstrap
under loss replays byte-identically for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.core.errors import SelectiveDeletionError
from repro.network.message import Message, MessageKind
from repro.storage.snapshot import snapshot_digest, snapshot_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.chain import Blockchain
    from repro.network.transport import InMemoryTransport

#: Default chunk size in characters of the serialised payload.  Small enough
#: that a single loss costs one bounded retransmit, large enough that the
#: per-chunk message framing stays a minor overhead.
DEFAULT_CHUNK_SIZE = 4096

#: How often one chunk is re-requested before the fetch gives up.
DEFAULT_MAX_RETRIES = 4

#: How often the whole transfer restarts when the peer's head moves
#: mid-transfer (the peer kept sealing blocks while we were pulling chunks).
DEFAULT_MAX_RESTARTS = 4


class BootstrapError(SelectiveDeletionError):
    """Raised when a snapshot bootstrap cannot complete."""


@dataclass(frozen=True)
class SnapshotManifest:
    """Advertised shape of one wire snapshot (carried in every chunk)."""

    head_number: int
    head_hash: str
    genesis_marker: int
    total_bytes: int
    total_chunks: int
    chunk_size: int
    digest: str

    def to_dict(self) -> dict[str, Any]:
        """JSON view for the message payload."""
        return {
            "head_number": self.head_number,
            "head_hash": self.head_hash,
            "genesis_marker": self.genesis_marker,
            "total_bytes": self.total_bytes,
            "total_chunks": self.total_chunks,
            "chunk_size": self.chunk_size,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SnapshotManifest":
        """Rebuild a manifest from a message payload."""
        return cls(
            head_number=int(payload["head_number"]),
            head_hash=str(payload["head_hash"]),
            genesis_marker=int(payload["genesis_marker"]),
            total_bytes=int(payload["total_bytes"]),
            total_chunks=int(payload["total_chunks"]),
            chunk_size=int(payload["chunk_size"]),
            digest=str(payload["digest"]),
        )


class SnapshotChunkCache:
    """Serving side: serialise the chain once per head, slice on demand.

    Serialising a whole chain is the expensive part of answering a snapshot
    request; a bootstrap asks for dozens of chunks of the *same* state.  The
    cache keys the serialised payload by the chain's head hash, so repeated
    chunk requests (and retransmissions) cost string slicing only, and a new
    head naturally invalidates the cached payload.
    """

    def __init__(self, chain: "Blockchain") -> None:
        self.chain = chain
        self._head_hash: Optional[str] = None
        self._payload: str = ""
        self._digest: str = ""

    def _refresh(self) -> None:
        head_hash = self.chain.head.block_hash
        if head_hash == self._head_hash:
            return
        self._payload = snapshot_payload(self.chain)
        self._digest = snapshot_digest(self._payload)
        self._head_hash = head_hash

    def manifest(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> SnapshotManifest:
        """Manifest of the snapshot at the chain's current head."""
        if chunk_size < 1:
            raise BootstrapError(f"chunk_size must be positive, got {chunk_size}")
        self._refresh()
        total = len(self._payload)
        return SnapshotManifest(
            head_number=self.chain.head.block_number,
            head_hash=self.chain.head.block_hash,
            genesis_marker=self.chain.genesis_marker,
            total_bytes=total,
            total_chunks=max(1, -(-total // chunk_size)),
            chunk_size=chunk_size,
            digest=self._digest,
        )

    def chunk(self, index: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> str:
        """Slice ``index`` of the current snapshot payload."""
        manifest = self.manifest(chunk_size)
        if not 0 <= index < manifest.total_chunks:
            raise BootstrapError(
                f"chunk {index} out of range (snapshot has {manifest.total_chunks} chunks)"
            )
        start = index * chunk_size
        return self._payload[start : start + chunk_size]


@dataclass
class BootstrapReport:
    """Outcome and accounting of one :func:`fetch_snapshot` attempt."""

    peer_id: str
    succeeded: bool = False
    reason: str = ""
    chunks_fetched: int = 0
    retransmits: int = 0
    restarts: int = 0
    payload_bytes: int = 0
    manifest: Optional[SnapshotManifest] = None
    payload: Optional[str] = field(default=None, repr=False)

    def as_dict(self) -> dict[str, Any]:
        """Counter view for simulation reports (payload omitted)."""
        return {
            "peer_id": self.peer_id,
            "succeeded": self.succeeded,
            "reason": self.reason,
            "chunks_fetched": self.chunks_fetched,
            "retransmits": self.retransmits,
            "restarts": self.restarts,
            "payload_bytes": self.payload_bytes,
        }


def _request_chunk(
    transport: "InMemoryTransport",
    requester_id: str,
    peer_id: str,
    index: int,
    chunk_size: int,
    *,
    max_retries: int,
    report: BootstrapReport,
) -> Optional[Message]:
    """One chunk request with bounded retransmission on loss.

    Transport-generated errors (lost message, blocked link) are retried;
    an error the *peer* produced is a verdict about the request itself —
    most importantly "chunk out of range" after the peer's snapshot shrank
    mid-transfer — so it is returned to the caller immediately instead of
    burning every retry on the same doomed index.
    """
    for attempt in range(max_retries + 1):
        if attempt:
            report.retransmits += 1
        request = Message(
            kind=MessageKind.SNAPSHOT_REQUEST,
            sender=requester_id,
            payload={"chunk": index, "chunk_size": chunk_size},
        )
        response = transport.send(peer_id, request)
        if response is None or (response.is_error and response.sender == "transport"):
            continue
        return response
    return None


def fetch_snapshot(
    transport: "InMemoryTransport",
    requester_id: str,
    peer_id: str,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_retries: int = DEFAULT_MAX_RETRIES,
    max_restarts: int = DEFAULT_MAX_RESTARTS,
) -> BootstrapReport:
    """Pull a peer's snapshot in bounded chunks; verify it against the manifest.

    Returns a :class:`BootstrapReport`; on success ``report.payload`` holds
    the assembled wire payload (feed it to
    :func:`repro.storage.snapshot.chain_from_payload`) and
    ``report.manifest`` the manifest it was verified against.  The fetch
    never raises on delivery failures — loss and outages are expected
    operating conditions — only on programmer errors.
    """
    report = BootstrapReport(peer_id=peer_id)
    for restart in range(max_restarts + 1):
        if restart:
            report.restarts += 1
        first = _request_chunk(
            transport, requester_id, peer_id, 0, chunk_size,
            max_retries=max_retries, report=report,
        )
        if first is None:
            report.reason = f"peer {peer_id!r} unreachable (chunk 0 exhausted retries)"
            return report
        if first.is_error:
            # Chunk 0 always exists, so a peer verdict here means the
            # request itself was malformed (e.g. invalid chunk size).
            report.reason = str(first.payload.get("reason", "peer rejected the request"))
            return report
        manifest = SnapshotManifest.from_dict(first.payload["manifest"])
        parts: list[str] = [str(first.payload["data"])]
        report.chunks_fetched += 1
        stale = False
        for index in range(1, manifest.total_chunks):
            response = _request_chunk(
                transport, requester_id, peer_id, index, chunk_size,
                max_retries=max_retries, report=report,
            )
            if response is None:
                report.reason = f"chunk {index} exhausted retries"
                return report
            if response.is_error:
                # A peer verdict mid-transfer ("chunk out of range"): the
                # snapshot shrank under us — same remedy as a moved head.
                stale = True
                break
            current = SnapshotManifest.from_dict(response.payload["manifest"])
            if current.head_hash != manifest.head_hash:
                # The peer sealed new blocks mid-transfer; chunks of the old
                # and new snapshot cannot be mixed — start over.
                stale = True
                break
            parts.append(str(response.payload["data"]))
            report.chunks_fetched += 1
        if stale:
            continue
        payload = "".join(parts)
        if len(payload) != manifest.total_bytes or snapshot_digest(payload) != manifest.digest:
            report.reason = "assembled payload does not match the manifest digest"
            return report
        report.succeeded = True
        report.reason = "ok"
        report.manifest = manifest
        report.payload = payload
        report.payload_bytes = manifest.total_bytes
        return report
    report.reason = f"peer's head kept moving ({max_restarts} restarts exhausted)"
    return report
