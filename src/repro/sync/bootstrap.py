"""Snapshot bootstrap over the wire.

Incremental catch-up (``AnchorNode.catch_up``) replays missed *living* blocks
from a peer.  Once the peer's genesis marker has shifted past a replica's
head, the blocks the replica would need next have been physically deleted —
Section V-B4's isolation discussion: a node isolated across a summarisation
cycle cannot reconstruct the gap and must instead adopt the *"current status
quo"* wholesale.  This module implements that adoption as a chunked pull
protocol over the ordinary message transport:

1. The stale replica sends ``SNAPSHOT_REQUEST {chunk, chunk_size}`` requests.
2. The peer serialises its chain once per head
   (:class:`SnapshotChunkCache`), answers each request with a
   ``SNAPSHOT_CHUNK`` carrying one bounded slice plus the
   :class:`SnapshotManifest` (total size, chunk count, head hash, payload
   digest).
3. :func:`fetch_snapshot` pulls every chunk, retransmitting lost ones
   (bounded retries per chunk), restarts cleanly when the peer's head moves
   mid-transfer, and verifies the assembled payload against the manifest
   digest before handing it to
   :func:`repro.storage.snapshot.chain_from_payload`.

Everything is deterministic: chunk boundaries are pure arithmetic, the
digest is sha256 over the canonical payload, and on a kernel-backed
transport each request/response consumes virtual time — so a bootstrap
under loss replays byte-identically for a given seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence

from repro.core.errors import SelectiveDeletionError
from repro.network.message import Message, MessageKind
from repro.network.transport import TransportError
from repro.storage.snapshot import snapshot_digest, snapshot_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.chain import Blockchain
    from repro.network.transport import InMemoryTransport

#: Default chunk size in characters of the serialised payload.  Small enough
#: that a single loss costs one bounded retransmit, large enough that the
#: per-chunk message framing stays a minor overhead.
DEFAULT_CHUNK_SIZE = 4096

#: How often one chunk is re-requested before the fetch gives up.
DEFAULT_MAX_RETRIES = 4

#: How often the whole transfer restarts when the peer's head moves
#: mid-transfer (the peer kept sealing blocks while we were pulling chunks).
DEFAULT_MAX_RESTARTS = 4


class BootstrapError(SelectiveDeletionError):
    """Raised when a snapshot bootstrap cannot complete."""


@dataclass(frozen=True)
class SnapshotManifest:
    """Advertised shape of one wire snapshot (carried in every chunk)."""

    head_number: int
    head_hash: str
    genesis_marker: int
    total_bytes: int
    total_chunks: int
    chunk_size: int
    digest: str

    def to_dict(self) -> dict[str, Any]:
        """JSON view for the message payload."""
        return {
            "head_number": self.head_number,
            "head_hash": self.head_hash,
            "genesis_marker": self.genesis_marker,
            "total_bytes": self.total_bytes,
            "total_chunks": self.total_chunks,
            "chunk_size": self.chunk_size,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SnapshotManifest":
        """Rebuild a manifest from a message payload."""
        return cls(
            head_number=int(payload["head_number"]),
            head_hash=str(payload["head_hash"]),
            genesis_marker=int(payload["genesis_marker"]),
            total_bytes=int(payload["total_bytes"]),
            total_chunks=int(payload["total_chunks"]),
            chunk_size=int(payload["chunk_size"]),
            digest=str(payload["digest"]),
        )


class SnapshotChunkCache:
    """Serving side: serialise the chain once per head, slice on demand.

    Serialising a whole chain is the expensive part of answering a snapshot
    request; a bootstrap asks for dozens of chunks of the *same* state.  The
    cache keys the serialised payload by the chain's head hash, so repeated
    chunk requests (and retransmissions) cost string slicing only, and a new
    head naturally invalidates the cached payload.
    """

    def __init__(self, chain: "Blockchain") -> None:
        self.chain = chain
        self._head_hash: Optional[str] = None
        self._payload: str = ""
        self._digest: str = ""

    def _refresh(self) -> None:
        head_hash = self.chain.head.block_hash
        if head_hash == self._head_hash:
            return
        self._payload = snapshot_payload(self.chain)
        self._digest = snapshot_digest(self._payload)
        self._head_hash = head_hash

    def manifest(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> SnapshotManifest:
        """Manifest of the snapshot at the chain's current head."""
        if chunk_size < 1:
            raise BootstrapError(f"chunk_size must be positive, got {chunk_size}")
        self._refresh()
        total = len(self._payload)
        return SnapshotManifest(
            head_number=self.chain.head.block_number,
            head_hash=self.chain.head.block_hash,
            genesis_marker=self.chain.genesis_marker,
            total_bytes=total,
            total_chunks=max(1, -(-total // chunk_size)),
            chunk_size=chunk_size,
            digest=self._digest,
        )

    def chunk(self, index: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> str:
        """Slice ``index`` of the current snapshot payload."""
        manifest = self.manifest(chunk_size)
        if not 0 <= index < manifest.total_chunks:
            raise BootstrapError(
                f"chunk {index} out of range (snapshot has {manifest.total_chunks} chunks)"
            )
        start = index * chunk_size
        return self._payload[start : start + chunk_size]


@dataclass
class BootstrapReport:
    """Outcome and accounting of one :func:`fetch_snapshot` attempt."""

    peer_id: str
    succeeded: bool = False
    reason: str = ""
    chunks_fetched: int = 0
    retransmits: int = 0
    restarts: int = 0
    payload_bytes: int = 0
    manifest: Optional[SnapshotManifest] = None
    payload: Optional[str] = field(default=None, repr=False)
    #: Peers that actually served chunks (striped fetches only; a plain
    #: single-peer fetch leaves this at ``[peer_id]`` semantics via
    #: ``peer_id`` itself).
    donors: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """Counter view for simulation reports (payload omitted)."""
        return {
            "peer_id": self.peer_id,
            "succeeded": self.succeeded,
            "reason": self.reason,
            "chunks_fetched": self.chunks_fetched,
            "retransmits": self.retransmits,
            "restarts": self.restarts,
            "payload_bytes": self.payload_bytes,
            "donors": list(self.donors),
        }


def _request_chunk(
    transport: "InMemoryTransport",
    requester_id: str,
    peer_id: str,
    index: int,
    chunk_size: int,
    *,
    max_retries: int,
    report: BootstrapReport,
) -> Optional[Message]:
    """One chunk request with bounded retransmission on loss.

    Transport-generated errors (lost message, blocked link) are retried;
    an error the *peer* produced is a verdict about the request itself —
    most importantly "chunk out of range" after the peer's snapshot shrank
    mid-transfer — so it is returned to the caller immediately instead of
    burning every retry on the same doomed index.
    """
    for attempt in range(max_retries + 1):
        if attempt:
            report.retransmits += 1
        request = Message(
            kind=MessageKind.SNAPSHOT_REQUEST,
            sender=requester_id,
            payload={"chunk": index, "chunk_size": chunk_size},
        )
        response = transport.send(peer_id, request)
        if response is None or (response.is_error and response.sender == "transport"):
            continue
        return response
    return None


def fetch_snapshot(
    transport: "InMemoryTransport",
    requester_id: str,
    peer_id: str,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_retries: int = DEFAULT_MAX_RETRIES,
    max_restarts: int = DEFAULT_MAX_RESTARTS,
) -> BootstrapReport:
    """Pull a peer's snapshot in bounded chunks; verify it against the manifest.

    Returns a :class:`BootstrapReport`; on success ``report.payload`` holds
    the assembled wire payload (feed it to
    :func:`repro.storage.snapshot.chain_from_payload`) and
    ``report.manifest`` the manifest it was verified against.  The fetch
    never raises on delivery failures — loss and outages are expected
    operating conditions — only on programmer errors.
    """
    report = BootstrapReport(peer_id=peer_id)
    for restart in range(max_restarts + 1):
        if restart:
            report.restarts += 1
        first = _request_chunk(
            transport, requester_id, peer_id, 0, chunk_size,
            max_retries=max_retries, report=report,
        )
        if first is None:
            report.reason = f"peer {peer_id!r} unreachable (chunk 0 exhausted retries)"
            return report
        if first.is_error:
            # Chunk 0 always exists, so a peer verdict here means the
            # request itself was malformed (e.g. invalid chunk size).
            report.reason = str(first.payload.get("reason", "peer rejected the request"))
            return report
        manifest = SnapshotManifest.from_dict(first.payload["manifest"])
        parts: list[str] = [str(first.payload["data"])]
        report.chunks_fetched += 1
        stale = False
        for index in range(1, manifest.total_chunks):
            response = _request_chunk(
                transport, requester_id, peer_id, index, chunk_size,
                max_retries=max_retries, report=report,
            )
            if response is None:
                report.reason = f"chunk {index} exhausted retries"
                return report
            if response.is_error:
                # A peer verdict mid-transfer ("chunk out of range"): the
                # snapshot shrank under us — same remedy as a moved head.
                stale = True
                break
            current = SnapshotManifest.from_dict(response.payload["manifest"])
            if current.head_hash != manifest.head_hash:
                # The peer sealed new blocks mid-transfer; chunks of the old
                # and new snapshot cannot be mixed — start over.
                stale = True
                break
            parts.append(str(response.payload["data"]))
            report.chunks_fetched += 1
        if stale:
            continue
        payload = "".join(parts)
        if len(payload) != manifest.total_bytes or snapshot_digest(payload) != manifest.digest:
            report.reason = "assembled payload does not match the manifest digest"
            return report
        report.succeeded = True
        report.reason = "ok"
        report.manifest = manifest
        report.payload = payload
        report.payload_bytes = manifest.total_bytes
        return report
    report.reason = f"peer's head kept moving ({max_restarts} restarts exhausted)"
    return report


# --------------------------------------------------------------------- #
# Load-aware multi-peer bootstrap
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PeerProbe:
    """One answered bootstrap probe: who, how far, how busy, serving what."""

    peer_id: str
    #: Probe round-trip time in virtual ms (``0.0`` on a synchronous
    #: transport, where every peer is equally "near").
    rtt_ms: float
    #: Chunks the peer has served so far — its snapshot-serving load.
    load: int
    manifest: SnapshotManifest


def probe_snapshot_peer(
    transport: "InMemoryTransport",
    requester_id: str,
    peer_id: str,
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Optional[PeerProbe]:
    """Ask one peer for its snapshot manifest and serving load (no data).

    Returns ``None`` for unreachable peers and peers that cannot serve a
    snapshot — they simply drop out of the candidate ranking.
    """
    started = transport.kernel.now if transport.kernel is not None else 0.0
    request = Message(
        kind=MessageKind.SNAPSHOT_REQUEST,
        sender=requester_id,
        payload={"probe": True, "chunk_size": chunk_size},
    )
    try:
        response = transport.send(peer_id, request)
    except TransportError:
        return None
    if response is None or response.is_error:
        return None
    rtt = (transport.kernel.now - started) if transport.kernel is not None else 0.0
    return PeerProbe(
        peer_id=peer_id,
        rtt_ms=round(rtt, 6),
        load=int(response.payload.get("load", 0)),
        manifest=SnapshotManifest.from_dict(response.payload["manifest"]),
    )


def rank_bootstrap_peers(
    transport: "InMemoryTransport",
    requester_id: str,
    peer_ids: Sequence[str],
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[PeerProbe]:
    """Probe every candidate and rank them nearest-and-least-loaded first.

    All probes depart in one concurrent wave (one round trip of wall time on
    a kernel transport, not one per candidate), and each peer's RTT is
    measured from the shared departure instant — directly comparable across
    peers.  The sort key is ``(rtt_ms, load, peer_id)``: proximity dominates
    (a bootstrap is dozens of round trips), serving load breaks latency
    ties, and the peer id makes the ranking a total order so runs replay
    byte-identically.  Unreachable and snapshot-less peers drop out.
    """
    candidates = [peer for peer in sorted(set(peer_ids)) if peer != requester_id]
    probes: list[PeerProbe] = []
    kernel = transport.kernel
    if kernel is None:
        for peer_id in candidates:
            probe = probe_snapshot_peer(
                transport, requester_id, peer_id, chunk_size=chunk_size
            )
            if probe is not None:
                probes.append(probe)
        probes.sort(key=lambda probe: (probe.rtt_ms, probe.load, probe.peer_id))
        return probes
    started = kernel.now
    results: dict[str, tuple[Optional[Message], float]] = {}
    pending = {"count": 0}
    for peer_id in candidates:

        def on_response(response: Optional[Message], peer_id: str = peer_id) -> None:
            results[peer_id] = (response, kernel.now - started)
            pending["count"] -= 1

        pending["count"] += 1
        try:
            transport.send_async(
                peer_id,
                Message(
                    kind=MessageKind.SNAPSHOT_REQUEST,
                    sender=requester_id,
                    payload={"probe": True, "chunk_size": chunk_size},
                ),
                on_response=on_response,
            )
        except TransportError:
            pending["count"] -= 1
    while pending["count"] > 0 and kernel.step():
        pass
    for peer_id in candidates:
        response, rtt = results.get(peer_id, (None, 0.0))
        if response is None or response.is_error:
            continue
        probes.append(
            PeerProbe(
                peer_id=peer_id,
                rtt_ms=round(rtt, 6),
                load=int(response.payload.get("load", 0)),
                manifest=SnapshotManifest.from_dict(response.payload["manifest"]),
            )
        )
    probes.sort(key=lambda probe: (probe.rtt_ms, probe.load, probe.peer_id))
    return probes


def _request_wave(
    transport: "InMemoryTransport",
    requester_id: str,
    requests: Sequence[tuple[int, str, dict]],
) -> dict[int, Optional[Message]]:
    """Issue one ``SNAPSHOT_REQUEST`` per ``(key, recipient, payload)`` item.

    Under a kernel the whole wave departs at the same virtual instant via
    :meth:`~repro.network.transport.InMemoryTransport.send_async` and the
    kernel is stepped until every response (or its loss notice) has landed —
    the wave costs the *slowest* round trip, not the sum.  On a synchronous
    transport the requests simply run back to back.
    """
    responses: dict[int, Optional[Message]] = {}
    kernel = transport.kernel
    if kernel is None:
        for key, recipient, payload in requests:
            request = Message(
                kind=MessageKind.SNAPSHOT_REQUEST, sender=requester_id, payload=payload
            )
            try:
                responses[key] = transport.send(recipient, request)
            except TransportError:
                responses[key] = None
        return responses
    pending = {"count": 0}
    for key, recipient, payload in requests:
        request = Message(
            kind=MessageKind.SNAPSHOT_REQUEST, sender=requester_id, payload=payload
        )

        def on_response(response: Optional[Message], key: int = key) -> None:
            responses[key] = response
            pending["count"] -= 1

        pending["count"] += 1
        try:
            transport.send_async(recipient, request, on_response=on_response)
        except TransportError:
            pending["count"] -= 1
            responses[key] = None
    while pending["count"] > 0 and kernel.step():
        pass
    return responses


def _striped_requests(
    transport: "InMemoryTransport",
    requester_id: str,
    assignments: Sequence[tuple[int, str]],
    chunk_size: int,
) -> dict[int, Optional[Message]]:
    """One concurrent wave of chunk requests, one per ``(index, donor)``."""
    return _request_wave(
        transport,
        requester_id,
        [
            (index, donor, {"chunk": index, "chunk_size": chunk_size})
            for index, donor in assignments
        ],
    )


def fetch_snapshot_striped(
    transport: "InMemoryTransport",
    requester_id: str,
    peer_ids: Sequence[str],
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    max_retries: int = DEFAULT_MAX_RETRIES,
    max_restarts: int = DEFAULT_MAX_RESTARTS,
) -> BootstrapReport:
    """Pull one snapshot with chunks striped across the best-ranked peers.

    Candidates are probed and ranked (:func:`rank_bootstrap_peers`); every
    peer serving the best peer's exact *payload* joins the donor set, and
    chunk ``i``
    is assigned to donor ``(i + attempts) % len(donors)`` — deterministic,
    load-spreading, and self-healing: a chunk whose donor lost it is re-
    requested from the *next* donor rather than burning all retries on one
    sick peer.  Waves of ``len(donors)`` requests are issued concurrently
    (see :func:`_striped_requests`).

    Donors are replicas with independent clocks: under live traffic they
    seal and replay new blocks at slightly different instants, so one donor
    drifting off the snapshot head mid-transfer is the *expected* case, not
    a failed transfer.  A drifted donor (new head hash, or a "chunk out of
    range" verdict after its snapshot shrank) is evicted from the donor set
    and its chunks reassigned to the remaining donors; only when every
    donor has drifted does the transfer restart with a fresh ranking,
    exactly like :func:`fetch_snapshot`'s moved-head restart.
    """
    report = BootstrapReport(peer_id="")
    for restart in range(max_restarts + 1):
        if restart:
            report.restarts += 1
        ranked = rank_bootstrap_peers(
            transport, requester_id, peer_ids, chunk_size=chunk_size
        )
        if not ranked:
            report.reason = "no bootstrap peer answered the probe"
            return report
        # Freshness dominates the ranking: a near peer serving a stale head
        # would be adopted only to need another pull.  Among the peers at
        # the most advanced head, the probe order (nearest, least loaded)
        # picks the lead donor.
        top_head = max(probe.manifest.head_number for probe in ranked)
        fresh = [probe for probe in ranked if probe.manifest.head_number == top_head]
        best = fresh[0]
        report.peer_id = best.peer_id
        manifest = best.manifest
        # Donor membership is keyed by the payload *digest*, not the head
        # hash: the wire payload carries replica-local history (the chain
        # event log) the head hash does not commit, so two replicas at the
        # identical head can serve different bytes — and chunks of
        # different byte streams cannot be mixed.
        donors = [
            probe.peer_id
            for probe in fresh
            if probe.manifest.digest == manifest.digest
        ]
        report.donors = list(donors)
        parts: dict[int, str] = {}
        attempts = {index: 0 for index in range(manifest.total_chunks)}
        work: deque[int] = deque(range(manifest.total_chunks))
        active = list(donors)
        stale = False
        failure = ""
        while work and not failure:
            if not active:
                # Every donor drifted off the snapshot head: nobody can
                # serve the remaining chunks — re-rank and start over.
                stale = True
                break
            wave: list[tuple[int, str]] = []
            while work and len(wave) < len(active):
                index = work.popleft()
                wave.append((index, active[(index + attempts[index]) % len(active)]))
            responses = _striped_requests(transport, requester_id, wave, chunk_size)
            for index, donor in wave:
                response = responses.get(index)
                if response is None or (
                    response.is_error and response.sender == "transport"
                ):
                    attempts[index] += 1
                    report.retransmits += 1
                    if attempts[index] > max_retries:
                        failure = f"chunk {index} exhausted retries"
                        break
                    work.append(index)
                    continue
                if response.is_error or (
                    SnapshotManifest.from_dict(
                        response.payload["manifest"]
                    ).digest
                    != manifest.digest
                ):
                    # This donor no longer serves the snapshot we are
                    # assembling (sealed past it, or it shrank).  Evict it
                    # and re-request the chunk from the remaining donors.
                    if donor in active:
                        active.remove(donor)
                    work.append(index)
                    continue
                parts[index] = str(response.payload["data"])
                report.chunks_fetched += 1
        if stale:
            continue
        if failure:
            report.reason = failure
            return report
        payload = "".join(parts[index] for index in range(manifest.total_chunks))
        if len(payload) != manifest.total_bytes or snapshot_digest(payload) != manifest.digest:
            report.reason = "assembled payload does not match the manifest digest"
            return report
        report.succeeded = True
        report.reason = "ok"
        report.manifest = manifest
        report.payload = payload
        report.payload_bytes = manifest.total_bytes
        return report
    report.reason = f"peers' heads kept moving ({max_restarts} restarts exhausted)"
    return report
