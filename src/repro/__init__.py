"""repro — reproduction of "Selective Deletion in a Blockchain" (ICDCS 2020).

The package implements the paper's concept of a fully transactional
blockchain: regular summary blocks partition the chain into sequences, old
sequences are merged into new summary blocks, a shifting genesis marker lets
the chain forget its beginning, and signed deletion requests cause individual
entries to be left out of future summary blocks (delayed selective deletion).

Quickstart::

    from repro import Blockchain, ChainConfig

    chain = Blockchain(ChainConfig.paper_evaluation())
    chain.add_entry_block({"D": "Login ALPHA", "K": "ALPHA", "S": "sig_ALPHA"}, "ALPHA")
    block = chain.head
    chain.request_deletion((block.block_number, 1), "ALPHA")

Subpackages
-----------
``repro.core``
    The paper's contribution: chain, summary blocks, deletion, retention.
``repro.crypto``
    Hashing, Merkle trees, ECDSA signatures, chameleon hashes.
``repro.consensus``
    Pluggable consensus (PoA, simplified PoW) and quorum voting.
``repro.network``
    Anchor-node / client simulation replacing the paper's CORBA prototype.
``repro.authz``
    Role-based authorization and semantic-cohesion checking.
``repro.storage``
    In-memory, append-only file and snapshot storage backends.
``repro.baselines``
    Comparison systems: immutable chain, pruning, hard fork, chameleon
    redaction, off-chain storage.
``repro.workloads``
    Workload generators (logging, supply chain, vehicles, coins, GDPR).
``repro.analysis``
    Metrics, 51 %-attack model and console/report rendering.
"""

from repro.core import (
    Block,
    Blockchain,
    BlockType,
    ChainConfig,
    DeletionDecision,
    DeletionRegistry,
    DeletionStatus,
    Entry,
    EntryKind,
    EntryReference,
    EntrySchema,
    EventBus,
    EventType,
    LengthUnit,
    LogicalClock,
    RedundancyPolicy,
    RetentionPolicy,
    SelectiveDeletionError,
    SequenceView,
    ShrinkStrategy,
    SummaryMode,
    default_log_schema,
)
from repro.crypto import KeyPair, MerkleTree, merkle_root
from repro.service import (
    BaselineLedgerClient,
    DeletionReceipt,
    LedgerClient,
    LedgerRecord,
    LocalLedgerClient,
    RemoteLedgerClient,
    SubmitReceipt,
)

__version__ = "1.0.0"

__all__ = [
    "Block",
    "Blockchain",
    "BlockType",
    "ChainConfig",
    "DeletionDecision",
    "DeletionRegistry",
    "DeletionStatus",
    "Entry",
    "EntryKind",
    "EntryReference",
    "EntrySchema",
    "EventBus",
    "EventType",
    "LengthUnit",
    "LogicalClock",
    "RedundancyPolicy",
    "RetentionPolicy",
    "SelectiveDeletionError",
    "SequenceView",
    "ShrinkStrategy",
    "SummaryMode",
    "default_log_schema",
    "KeyPair",
    "MerkleTree",
    "merkle_root",
    "BaselineLedgerClient",
    "DeletionReceipt",
    "LedgerClient",
    "LedgerRecord",
    "LocalLedgerClient",
    "RemoteLedgerClient",
    "SubmitReceipt",
    "__version__",
]
