"""In-memory transport connecting clients and anchor nodes.

This is the substitution for the paper's CORBA middleware: a synchronous,
deterministic message fabric with

* per-link latency accounting (a seeded latency model, so benchmarks can
  report simulated network delay without real sleeping),
* fault injection — dropped links and network partitions — used by the node
  isolation discussion of Section V-B4,
* full message statistics for the evaluation harness.

Handlers are plain callables ``Message -> Message | None``; the transport
delivers synchronously, which keeps the anchor-node logic easy to reason
about while still exercising the real protocol paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import SelectiveDeletionError
from repro.crypto.hashing import canonical_json
from repro.network.message import Message, MessageKind

#: A message handler registered by a node.
Handler = Callable[[Message], Optional[Message]]


class TransportError(SelectiveDeletionError):
    """Raised when a message cannot be delivered (unknown node, partition)."""


@dataclass
class LatencyModel:
    """Deterministic pseudo-random latency per delivered message (in ms)."""

    minimum_ms: float = 1.0
    maximum_ms: float = 20.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.minimum_ms < 0 or self.maximum_ms < self.minimum_ms:
            raise ValueError("latency bounds must satisfy 0 <= minimum <= maximum")
        self._random = random.Random(self.seed)

    def sample(self) -> float:
        """Draw one latency sample."""
        return self._random.uniform(self.minimum_ms, self.maximum_ms)


@dataclass
class TransportStatistics:
    """Counters the evaluation harness reads after a simulation run."""

    delivered: int = 0
    dropped: int = 0
    broadcasts: int = 0
    bytes_transferred: int = 0
    simulated_latency_ms: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "delivered": self.delivered,
            "dropped": self.dropped,
            "broadcasts": self.broadcasts,
            "bytes_transferred": self.bytes_transferred,
            "simulated_latency_ms": round(self.simulated_latency_ms, 3),
        }


class InMemoryTransport:
    """Synchronous in-process message fabric with fault injection."""

    def __init__(self, latency: Optional[LatencyModel] = None) -> None:
        self.latency = latency or LatencyModel()
        self.statistics = TransportStatistics()
        self._handlers: dict[str, Handler] = {}
        self._blocked_links: set[tuple[str, str]] = set()
        self._offline: set[str] = set()
        self.message_log: list[Message] = []

    # ------------------------------------------------------------------ #
    # Registration and fault injection
    # ------------------------------------------------------------------ #

    def register(self, node_id: str, handler: Handler) -> None:
        """Attach a node's message handler under its id."""
        if node_id in self._handlers:
            raise TransportError(f"node id {node_id!r} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        """Remove a node (models a crashed node)."""
        self._handlers.pop(node_id, None)

    @property
    def node_ids(self) -> list[str]:
        """All currently registered node ids."""
        return sorted(self._handlers)

    def set_offline(self, node_id: str, offline: bool = True) -> None:
        """Take a node off the network without unregistering it."""
        if offline:
            self._offline.add(node_id)
        else:
            self._offline.discard(node_id)

    def block_link(self, first: str, second: str) -> None:
        """Drop all traffic between two nodes (both directions)."""
        self._blocked_links.add((first, second))
        self._blocked_links.add((second, first))

    def unblock_link(self, first: str, second: str) -> None:
        """Restore a previously blocked link."""
        self._blocked_links.discard((first, second))
        self._blocked_links.discard((second, first))

    def partition(self, group_a: list[str], group_b: list[str]) -> None:
        """Block every link between the two groups (Eclipse-style isolation)."""
        for a in group_a:
            for b in group_b:
                self.block_link(a, b)

    def heal_partition(self) -> None:
        """Remove all link blocks."""
        self._blocked_links.clear()

    def _deliverable(self, sender: str, recipient: str) -> bool:
        if recipient not in self._handlers:
            return False
        if sender in self._offline or recipient in self._offline:
            return False
        if (sender, recipient) in self._blocked_links:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #

    def send(self, recipient: str, message: Message) -> Optional[Message]:
        """Deliver a message synchronously and return the handler's response.

        Raises :class:`TransportError` when the recipient does not exist;
        returns an error message when the link is blocked or a party is
        offline (callers can then retry against another anchor node, which is
        exactly the mitigation Section V-B4 proposes against node isolation).
        """
        if recipient not in self._handlers:
            raise TransportError(f"unknown recipient {recipient!r}")
        if not self._deliverable(message.sender, recipient):
            self.statistics.dropped += 1
            return message.error("transport", f"link {message.sender!r} -> {recipient!r} unavailable")
        self.statistics.delivered += 1
        self.statistics.simulated_latency_ms += self.latency.sample()
        self.statistics.bytes_transferred += len(canonical_json(message.to_dict()).encode("utf-8"))
        self.message_log.append(message)
        response = self._handlers[recipient](message)
        if response is not None:
            self.statistics.delivered += 1
            self.statistics.simulated_latency_ms += self.latency.sample()
            self.statistics.bytes_transferred += len(
                canonical_json(response.to_dict()).encode("utf-8")
            )
            self.message_log.append(response)
        return response

    def broadcast(self, sender: str, recipients: list[str], message: Message) -> dict[str, Optional[Message]]:
        """Send the same message to several recipients, collecting responses."""
        self.statistics.broadcasts += 1
        responses: dict[str, Optional[Message]] = {}
        for recipient in recipients:
            if recipient == sender:
                continue
            try:
                responses[recipient] = self.send(recipient, message)
            except TransportError:
                responses[recipient] = message.error("transport", f"unknown recipient {recipient!r}")
                self.statistics.dropped += 1
        return responses

    def messages_of_kind(self, kind: MessageKind) -> list[Message]:
        """Filter the message log by kind (used in tests and reports)."""
        return [message for message in self.message_log if message.kind is kind]
