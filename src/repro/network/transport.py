"""In-memory transport connecting clients and anchor nodes.

This is the substitution for the paper's CORBA middleware: a deterministic
message fabric with per-link latency, fault injection (dropped links,
partitions, outages, seeded probabilistic loss) and full message statistics
for the evaluation harness.

The transport runs in one of two modes:

* **Synchronous compatibility mode** (no kernel): handlers are invoked
  immediately in call order, exactly like the original prototype harness.
  Latency samples are accounted in the statistics but do not affect
  ordering — convenient for unit tests and the parity harness, but unable
  to reproduce the reordering/failover effects of Section V-B4.
* **Scheduled mode** (constructed with an
  :class:`~repro.network.kernel.EventKernel`): every latency sample becomes
  a *delivery time*.  Requests and responses are events on the kernel's
  virtual clock, messages genuinely arrive out of order, and deliverability
  (offline nodes, blocked links, partitions) is evaluated *at delivery
  time* — so a message posted during a partition whose delivery time falls
  after the heal does arrive, and one posted milliseconds before an outage
  can still be lost.  Faults themselves can be scheduled as kernel events
  (:meth:`InMemoryTransport.schedule_partition` and friends).

Handlers are plain callables ``Message -> Message | None``.  Request/response
exchanges use :meth:`InMemoryTransport.send`; one-way dissemination (gossip,
block announcements) uses :meth:`InMemoryTransport.post`, whose handler
return value is discarded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.core.errors import SelectiveDeletionError
from repro.crypto.hashing import canonical_json
from repro.network.kernel import EventHandle, EventKernel
from repro.network.message import Message, MessageKind

#: A message handler registered by a node.
Handler = Callable[[Message], Optional[Message]]


class TransportError(SelectiveDeletionError):
    """Raised when a message cannot be delivered (unknown node, partition)."""


@dataclass
class LatencyModel:
    """Deterministic pseudo-random latency per delivered message (in ms).

    In scheduled mode the sample *is* the delivery delay; in synchronous
    compatibility mode it is only accumulated into the statistics.  The
    per-link hook :meth:`sample_for` lets subclasses shape latency by
    endpoint pair (see :class:`GeoLatencyModel`).
    """

    minimum_ms: float = 1.0
    maximum_ms: float = 20.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.minimum_ms < 0 or self.maximum_ms < self.minimum_ms:
            raise ValueError("latency bounds must satisfy 0 <= minimum <= maximum")
        self._random = random.Random(self.seed)

    def sample(self) -> float:
        """Draw one latency sample."""
        return self._random.uniform(self.minimum_ms, self.maximum_ms)

    def sample_for(self, sender: str, recipient: str) -> float:
        """Latency of one ``sender -> recipient`` message (default: :meth:`sample`)."""
        return self.sample()


@dataclass
class GeoLatencyModel(LatencyModel):
    """Latency shaped by a region assignment (geo-distributed deployments).

    Nodes map to named regions; messages crossing a region boundary pay a
    fixed ``cross_region_ms`` penalty on top of the base jitter.  Unmapped
    nodes fall into ``default_region``.
    """

    regions: dict[str, str] = field(default_factory=dict)
    cross_region_ms: float = 80.0
    default_region: str = "local"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cross_region_ms < 0:
            raise ValueError("cross_region_ms must be non-negative")

    def region_of(self, node_id: str) -> str:
        """Region a node is pinned to."""
        return self.regions.get(node_id, self.default_region)

    def sample_for(self, sender: str, recipient: str) -> float:
        """Base jitter plus the cross-region penalty when regions differ."""
        base = self.sample()
        if self.region_of(sender) != self.region_of(recipient):
            return base + self.cross_region_ms
        return base


@dataclass
class TransportStatistics:
    """Counters the evaluation harness reads after a simulation run.

    ``delivery_latency_ms`` sums the per-message latency samples.  In
    scheduled mode these are true delivery latencies (they decided *when*
    each message arrived); in synchronous mode they remain accounting-only
    figures that never influenced ordering — the historical behaviour, kept
    under the historical alias ``simulated_latency_ms``.

    ``dropped`` counts messages undeliverable for *structural* reasons
    (offline node, blocked link, unknown recipient); ``lost`` counts
    messages eaten by the probabilistic loss model (``loss_rate``).  A lost
    message also increments ``dropped``, so the historical total is
    unchanged.
    """

    delivered: int = 0
    dropped: int = 0
    lost: int = 0
    broadcasts: int = 0
    timeouts: int = 0
    bytes_transferred: int = 0
    delivery_latency_ms: float = 0.0

    @property
    def simulated_latency_ms(self) -> float:
        """Deprecated alias for :attr:`delivery_latency_ms`."""
        return self.delivery_latency_ms

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "delivered": self.delivered,
            "dropped": self.dropped,
            "lost": self.lost,
            "broadcasts": self.broadcasts,
            "timeouts": self.timeouts,
            "bytes_transferred": self.bytes_transferred,
            "delivery_latency_ms": round(self.delivery_latency_ms, 3),
            # Historical name, kept so existing report consumers keep working.
            "simulated_latency_ms": round(self.delivery_latency_ms, 3),
        }


class InMemoryTransport:
    """In-process message fabric with fault injection.

    Without a kernel the transport is synchronous (see module docstring);
    with one, every message delivery is a scheduled virtual-time event.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        *,
        kernel: Optional[EventKernel] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 23,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.latency = latency or LatencyModel()
        self.kernel = kernel
        #: Probability that any single delivery is silently eaten by the
        #: network (evaluated per message at delivery time, seeded — so runs
        #: replay identically).  Models the lossy links snapshot bootstrap
        #: must retransmit through.
        self.loss_rate = float(loss_rate)
        self._loss_random = random.Random(loss_seed)
        self.statistics = TransportStatistics()
        self._handlers: dict[str, Handler] = {}
        self._blocked_links: set[tuple[str, str]] = set()
        self._offline: set[str] = set()
        self.message_log: list[Message] = []

    @property
    def scheduled(self) -> bool:
        """True when deliveries run on a kernel's virtual clock."""
        return self.kernel is not None

    # ------------------------------------------------------------------ #
    # Registration and fault injection
    # ------------------------------------------------------------------ #

    def register(self, node_id: str, handler: Handler) -> None:
        """Attach a node's message handler under its id."""
        if node_id in self._handlers:
            raise TransportError(f"node id {node_id!r} is already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: str) -> None:
        """Remove a node (models a crashed node)."""
        self._handlers.pop(node_id, None)

    @property
    def node_ids(self) -> list[str]:
        """All currently registered node ids."""
        return sorted(self._handlers)

    def set_offline(self, node_id: str, offline: bool = True) -> None:
        """Take a node off the network without unregistering it."""
        if offline:
            self._offline.add(node_id)
        else:
            self._offline.discard(node_id)

    def is_offline(self, node_id: str) -> bool:
        """True while the node is taken off the network."""
        return node_id in self._offline

    def block_link(self, first: str, second: str) -> None:
        """Drop all traffic between two nodes (both directions)."""
        self._blocked_links.add((first, second))
        self._blocked_links.add((second, first))

    def unblock_link(self, first: str, second: str) -> None:
        """Restore a previously blocked link."""
        self._blocked_links.discard((first, second))
        self._blocked_links.discard((second, first))

    def partition(self, group_a: list[str], group_b: list[str]) -> None:
        """Block every link between the two groups (Eclipse-style isolation)."""
        for a in group_a:
            for b in group_b:
                self.block_link(a, b)

    def heal_partition(self) -> None:
        """Remove all link blocks."""
        self._blocked_links.clear()

    def _path_open(self, sender: str, recipient: str) -> bool:
        """Link-level reachability (ignores handler registration)."""
        if sender in self._offline or recipient in self._offline:
            return False
        if (sender, recipient) in self._blocked_links:
            return False
        return True

    def _deliverable(self, sender: str, recipient: str) -> bool:
        if recipient not in self._handlers:
            return False
        return self._path_open(sender, recipient)

    def _loses(self) -> bool:
        """Draw the loss model for one delivery (no draw when lossless)."""
        if self.loss_rate <= 0.0:
            return False
        if self._loss_random.random() >= self.loss_rate:
            return False
        self.statistics.lost += 1
        self.statistics.dropped += 1
        return True

    # ------------------------------------------------------------------ #
    # Scheduled fault injection (kernel mode)
    # ------------------------------------------------------------------ #

    def _require_kernel(self) -> EventKernel:
        if self.kernel is None:
            raise TransportError("scheduling faults requires a kernel-backed transport")
        return self.kernel

    def schedule_offline(self, node_id: str, at: float) -> EventHandle:
        """Take a node off the network at virtual time ``at``."""
        return self._require_kernel().schedule_at(
            at, lambda: self.set_offline(node_id, True), label=f"offline:{node_id}"
        )

    def schedule_online(self, node_id: str, at: float) -> EventHandle:
        """Bring a node back at virtual time ``at``."""
        return self._require_kernel().schedule_at(
            at, lambda: self.set_offline(node_id, False), label=f"online:{node_id}"
        )

    def schedule_partition(
        self, group_a: Iterable[str], group_b: Iterable[str], at: float
    ) -> EventHandle:
        """Split the network into two groups at virtual time ``at``."""
        first, second = list(group_a), list(group_b)
        return self._require_kernel().schedule_at(
            at, lambda: self.partition(first, second), label="partition"
        )

    def schedule_heal(self, at: float) -> EventHandle:
        """Remove every link block at virtual time ``at``.

        Messages already in flight whose delivery time falls after ``at``
        will arrive — the partition delayed them, it did not consume them.
        """
        return self._require_kernel().schedule_at(at, self.heal_partition, label="heal")

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #

    def _account_delivery(self, message: Message, latency_ms: float) -> None:
        self.statistics.delivered += 1
        self.statistics.delivery_latency_ms += latency_ms
        self.statistics.bytes_transferred += len(canonical_json(message.to_dict()).encode("utf-8"))
        self.message_log.append(message)

    def send(
        self, recipient: str, message: Message, *, timeout_ms: Optional[float] = None
    ) -> Optional[Message]:
        """Deliver a message and return the handler's response.

        Raises :class:`TransportError` when the recipient does not exist;
        returns an error message when the link is blocked or a party is
        offline (callers can then retry against another anchor node, which is
        exactly the mitigation Section V-B4 proposes against node isolation).

        In scheduled mode the exchange consumes virtual time: the request is
        delivered at ``now + latency``, any events due earlier (other
        messages, scheduled faults) run first, and the response travels back
        with its own latency.  ``timeout_ms`` bounds the round trip —
        ``None`` is returned when the (virtual) round trip exceeds it.
        """
        if recipient not in self._handlers:
            raise TransportError(f"unknown recipient {recipient!r}")
        if self.kernel is not None:
            return self._send_scheduled(recipient, message, timeout_ms)
        return self._send_sync(recipient, message, timeout_ms)

    def _send_sync(
        self, recipient: str, message: Message, timeout_ms: Optional[float]
    ) -> Optional[Message]:
        if not self._deliverable(message.sender, recipient):
            self.statistics.dropped += 1
            return message.error("transport", f"link {message.sender!r} -> {recipient!r} unavailable")
        if self._loses():
            return message.error(
                "transport", f"message {message.sender!r} -> {recipient!r} lost"
            )
        request_latency = self.latency.sample_for(message.sender, recipient)
        self._account_delivery(message, request_latency)
        response = self._handlers[recipient](message)
        if response is None:
            return None
        response_latency = self.latency.sample_for(recipient, message.sender)
        if timeout_ms is not None and request_latency + response_latency > timeout_ms:
            self.statistics.timeouts += 1
            return None
        if self._loses():
            return message.error(
                "transport", f"response from {recipient!r} to {message.sender!r} lost"
            )
        self._account_delivery(response, response_latency)
        return response

    def _send_scheduled(
        self, recipient: str, message: Message, timeout_ms: Optional[float]
    ) -> Optional[Message]:
        kernel = self.kernel
        assert kernel is not None
        start = kernel.now
        request_latency = self.latency.sample_for(message.sender, recipient)
        outcome: dict[str, Any] = {}

        def arrive() -> None:
            # Deliverability is decided at *delivery* time: faults scheduled
            # (or healed) while the message was in flight apply.
            if not self._deliverable(message.sender, recipient):
                self.statistics.dropped += 1
                outcome["undeliverable"] = True
                outcome["response"] = message.error(
                    "transport", f"link {message.sender!r} -> {recipient!r} unavailable"
                )
                return
            if self._loses():
                outcome["undeliverable"] = True
                outcome["response"] = message.error(
                    "transport", f"message {message.sender!r} -> {recipient!r} lost"
                )
                return
            self._account_delivery(message, request_latency)
            outcome["response"] = self._handlers[recipient](message)
            # The handler may itself have consumed virtual time (forwarding
            # to the producer, announcing blocks); the response leaves the
            # moment it returns — not when the caller's wait unwinds, which
            # under concurrent senders can be much later.
            outcome["handled_at"] = kernel.now

        kernel.schedule(
            request_latency, arrive, label=f"deliver:{message.kind.value}->{recipient}"
        )
        kernel.run_until(start + request_latency)
        response = outcome.get("response")
        if outcome.get("undeliverable") or response is None:
            return response
        response_latency = self.latency.sample_for(recipient, message.sender)
        arrival = float(outcome["handled_at"]) + response_latency
        # An arrival instant the clock already reached is not a wait at all:
        # concurrent exchanges that advanced time past it do not delay this
        # response (their round trips and ours overlap), and entering the
        # kernel here would steal same-instant events that belong to the
        # caller's *next* wait.
        if arrival > kernel.now:
            kernel.run_until(arrival)
        if timeout_ms is not None and arrival - start > timeout_ms:
            self.statistics.timeouts += 1
            return None
        if not self._path_open(recipient, message.sender):
            self.statistics.dropped += 1
            return message.error(
                "transport", f"response from {recipient!r} to {message.sender!r} lost"
            )
        if self._loses():
            return message.error(
                "transport", f"response from {recipient!r} to {message.sender!r} lost"
            )
        self._account_delivery(response, response_latency)
        return response

    def send_async(
        self,
        recipient: str,
        message: Message,
        *,
        on_response: Callable[[Optional[Message]], None],
        timeout_ms: Optional[float] = None,
    ) -> None:
        """Event-driven request/response exchange (kernel mode only).

        Semantically :meth:`send`, but instead of waiting on the virtual
        clock the caller's continuation is invoked when the response
        arrives: the request is delivered at ``now + latency``, the handler
        runs at delivery time, and ``on_response`` fires one response
        latency after the handler returns.  Nothing blocks, so any number
        of exchanges — to the same node or different ones — overlap fully
        in virtual time.  This is what lets a sharded fleet keep K
        deployments busy at once; the blocking :meth:`send` serialises the
        caller behind one outstanding round trip.

        ``on_response`` receives the response message, an error message for
        transport faults (matching :meth:`send`'s error surface), or
        ``None`` for a silent handler or an exceeded ``timeout_ms``.
        """
        kernel = self._require_kernel()
        if recipient not in self._handlers:
            raise TransportError(f"unknown recipient {recipient!r}")
        start = kernel.now
        request_latency = self.latency.sample_for(message.sender, recipient)

        def arrive() -> None:
            if not self._deliverable(message.sender, recipient):
                self.statistics.dropped += 1
                on_response(
                    message.error(
                        "transport", f"link {message.sender!r} -> {recipient!r} unavailable"
                    )
                )
                return
            if self._loses():
                on_response(
                    message.error(
                        "transport", f"message {message.sender!r} -> {recipient!r} lost"
                    )
                )
                return
            self._account_delivery(message, request_latency)
            response = self._handlers[recipient](message)
            if response is None:
                on_response(None)
                return
            # The handler may have consumed virtual time; the response
            # leaves the moment it returns, exactly as in the blocking path.
            response_latency = self.latency.sample_for(recipient, message.sender)
            if timeout_ms is not None and (kernel.now - start) + response_latency > timeout_ms:
                self.statistics.timeouts += 1
                on_response(None)
                return

            def respond() -> None:
                if not self._path_open(recipient, message.sender):
                    self.statistics.dropped += 1
                    on_response(
                        message.error(
                            "transport",
                            f"response from {recipient!r} to {message.sender!r} lost",
                        )
                    )
                    return
                if self._loses():
                    on_response(
                        message.error(
                            "transport",
                            f"response from {recipient!r} to {message.sender!r} lost",
                        )
                    )
                    return
                self._account_delivery(response, response_latency)
                on_response(response)

            kernel.schedule(
                response_latency,
                respond,
                label=f"respond:{message.kind.value}->{message.sender}",
            )

        kernel.schedule(
            request_latency, arrive, label=f"deliver:{message.kind.value}->{recipient}"
        )

    def post(self, recipient: str, message: Message) -> Optional[EventHandle]:
        """Fire-and-forget one-way delivery; any handler response is discarded.

        This is the primitive gossip and block announcements ride on.  In
        scheduled mode the message is queued for delivery at ``now +
        latency`` and the call returns immediately — delivery (and the
        deliverability check) happens when the kernel reaches that instant,
        so posts genuinely arrive out of order and may outlive partitions.
        In synchronous mode the message is delivered inline.
        """
        if self.kernel is None:
            if recipient not in self._handlers or not self._deliverable(message.sender, recipient):
                self.statistics.dropped += 1
                return None
            if self._loses():
                return None
            self._account_delivery(message, self.latency.sample_for(message.sender, recipient))
            self._handlers[recipient](message)
            return None

        latency = self.latency.sample_for(message.sender, recipient)

        def arrive() -> None:
            if not self._deliverable(message.sender, recipient):
                self.statistics.dropped += 1
                return
            if self._loses():
                return
            self._account_delivery(message, latency)
            self._handlers[recipient](message)

        return self.kernel.schedule(
            latency, arrive, label=f"post:{message.kind.value}->{recipient}"
        )

    def broadcast(
        self, sender: str, recipients: list[str], message: Message
    ) -> dict[str, Optional[Message]]:
        """Send the same message to several recipients, collecting responses."""
        self.statistics.broadcasts += 1
        responses: dict[str, Optional[Message]] = {}
        for recipient in recipients:
            if recipient == sender:
                continue
            try:
                responses[recipient] = self.send(recipient, message)
            except TransportError:
                responses[recipient] = message.error("transport", f"unknown recipient {recipient!r}")
                self.statistics.dropped += 1
        return responses

    def publish(self, sender: str, recipients: list[str], message: Message) -> int:
        """One-way fan-out via :meth:`post`; returns the number of posts."""
        self.statistics.broadcasts += 1
        posted = 0
        for recipient in recipients:
            if recipient == sender:
                continue
            self.post(recipient, message)
            posted += 1
        return posted

    def messages_of_kind(self, kind: MessageKind) -> list[Message]:
        """Filter the message log by kind (used in tests and reports)."""
        return [message for message in self.message_log if message.kind is kind]
