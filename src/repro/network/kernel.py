"""Deterministic discrete-event kernel for the network simulation.

The paper's evaluation (Section V) ran on a real CORBA deployment where
message delay, node outages and partitions genuinely reorder and postpone
delivery.  The reproduction's transport used to deliver everything
synchronously in call order and merely *account* latency afterwards, so none
of those effects could occur.  This module supplies the missing substrate: a
virtual-time event scheduler the whole network stack runs on.

Design
------
* Events live in a priority queue keyed by ``(time, tiebreak, seq)``.
  ``time`` is virtual milliseconds; ``tiebreak`` is drawn from a seeded RNG
  so the ordering of same-instant events is *deterministic but not
  insertion-ordered* (two runs with the same seed replay identically, yet
  simultaneous messages do not trivially arrive in call order); ``seq`` is a
  monotone counter that makes the ordering total.
* ``run_until`` / ``run`` pop due events and advance :attr:`now` — virtual
  time only moves through the kernel, never through the wall clock, which is
  what makes every simulation replayable byte-for-byte.
* Handlers may schedule further events (including nested ``run_until`` calls
  from the transport's request/response path); the kernel never schedules
  into the past, so ``now`` is monotone and the heap invariant holds.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.errors import SelectiveDeletionError

#: A scheduled action; return values are ignored.
Action = Callable[[], Any]


class KernelError(SelectiveDeletionError):
    """Raised on invalid scheduling requests (e.g. scheduling into the past)."""


@dataclass(slots=True)
class EventHandle:
    """Cancellation token for a scheduled (possibly recurring) event.

    One handle is allocated per scheduled event, so the class is slotted:
    simulations schedule hundreds of thousands of events and the per-instance
    ``__dict__`` was pure overhead on the kernel's hot path.
    """

    time: float
    label: str = ""
    recurring: bool = False
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event (and, for recurring events, all repeats) from firing."""
        self.cancelled = True


class EventKernel:
    """A deterministic virtual-time event scheduler."""

    def __init__(self, *, seed: int = 11) -> None:
        self.seed = seed
        self._queue: list[tuple[float, float, int, EventHandle, Action]] = []
        self._seq = itertools.count()
        self._tiebreak = random.Random(seed)
        # Bound method, looked up once: schedule_at draws exactly one sample
        # per call and sits on the hot path of every message send.
        self._tiebreak_random = self._tiebreak.random
        self._now = 0.0
        self.events_scheduled = 0
        self.events_processed = 0
        self.events_cancelled = 0

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (cancelled ones included)."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the earliest queued live event, or ``None``."""
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)
            self.events_cancelled += 1
        return self._queue[0][0] if self._queue else None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule_at(self, time: float, action: Action, *, label: str = "") -> EventHandle:
        """Schedule ``action`` at absolute virtual ``time``."""
        if time < self._now:
            raise KernelError(
                f"cannot schedule {label or 'event'!r} at {time}; virtual time is already {self._now}"
            )
        time = float(time)
        handle = EventHandle(time=time, label=label)
        heapq.heappush(
            self._queue, (time, self._tiebreak_random(), next(self._seq), handle, action)
        )
        self.events_scheduled += 1
        return handle

    def schedule(self, delay: float, action: Action, *, label: str = "") -> EventHandle:
        """Schedule ``action`` ``delay`` virtual milliseconds from now."""
        if delay < 0:
            raise KernelError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, action, label=label)

    def every(
        self,
        interval: float,
        action: Action,
        *,
        label: str = "",
        until: Optional[float] = None,
    ) -> EventHandle:
        """Schedule ``action`` every ``interval`` ms (first firing after one
        interval) until the returned handle is cancelled or ``until`` passes."""
        if interval <= 0:
            raise KernelError(f"interval must be positive, got {interval}")
        master = EventHandle(time=self._now + interval, label=label, recurring=True)
        if until is not None and master.time > until:
            # The bound expires before the first firing: nothing to schedule.
            master.cancelled = True
            return master

        def fire() -> None:
            if master.cancelled:
                return
            action()
            next_time = self._now + interval
            if until is None or next_time <= until:
                master.time = next_time
                self.schedule_at(next_time, fire, label=label)

        self.schedule_at(master.time, fire, label=label)
        return master

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute the single earliest queued event; ``False`` when idle."""
        queue = self._queue
        heappop = heapq.heappop
        while queue:
            time, _, _, handle, action = heappop(queue)
            if handle.cancelled:
                self.events_cancelled += 1
                continue
            # Nested execution (a handler advancing time itself) may already
            # have moved `now` past this event's nominal time; virtual time
            # never flows backwards.
            if time > self._now:
                self._now = time
            self.events_processed += 1
            action()
            return True
        return False

    def run_until(self, time: float) -> int:
        """Execute every event due at or before ``time``; set now to ``time``.

        Returns the number of events executed.  A target before the current
        virtual time is a no-op (time never rewinds) — this is what makes the
        call safe to nest from within event handlers.
        """
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        while queue:
            head_time, _, _, head_handle, _ = queue[0]
            if head_handle.cancelled:
                heappop(queue)
                self.events_cancelled += 1
                continue
            if head_time > time:
                break
            if self.step():
                executed += 1
        if time > self._now:
            self._now = time
        return executed

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Drain the queue (or execute at most ``max_events``); returns count."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            if self.step():
                executed += 1
        return executed

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def statistics(self) -> dict[str, Any]:
        """Deterministic counters for simulation reports."""
        return {
            "virtual_time_ms": round(self._now, 6),
            "events_scheduled": self.events_scheduled,
            "events_processed": self.events_processed,
            "events_cancelled": self.events_cancelled,
            "seed": self.seed,
        }

    def __repr__(self) -> str:
        return (
            f"EventKernel(now={self._now:.3f}ms, pending={len(self._queue)}, "
            f"processed={self.events_processed}, seed={self.seed})"
        )
