"""Messages exchanged between clients and anchor nodes.

The paper's prototype was a CORBA client–server system; the reproduction
replaces the middleware with explicit message objects over an in-memory
transport (see DESIGN.md, substitution table).  Message kinds cover the
interactions the concept needs: submitting entries / deletion requests,
announcing sealed blocks, comparing locally computed summary-block hashes as
a synchronisation check (Section IV-B), incremental catch-up and snapshot
bootstrap for replicas that fell behind (Section V-B4), and the periodic
anti-entropy digests that keep sparse gossip overlays converged.

Message-kind taxonomy
---------------------
Every protocol message is one of the kinds below.  "reply" names the kind
the receiver answers with; one-way kinds (gossip hops, digests) have no
reply — their handler return value is discarded by ``InMemoryTransport.post``.

===================== ================= =============== ============================================== =================
kind                  sender            receiver        payload schema                                 reply
===================== ================= =============== ============================================== =================
``SUBMIT_ENTRY``      client            any anchor      ``{entry, defer_seal?}``                       ``ACK``/``ERROR``
``SUBMIT_DELETION``   client            any anchor      ``{entry}`` (a deletion-request entry)         ``ACK``/``ERROR``
``SEAL_REQUEST``      client            producer        ``{}``                                         ``ACK``
``IDLE_TICK``         client            producer        ``{ticks}``                                    ``ACK``
``FIND_ENTRY``        client            any anchor      ``{reference}``                                ``SYNC_RESPONSE``
``QUERY_STATISTICS``  client            any anchor      ``{}``                                         ``SYNC_RESPONSE``
``BLOCK_ANNOUNCE``    producer/relay    peers           ``{block, gossip?: {item, hops}}``             ``ACK`` or one-way
``SUMMARY_HASH``      anchor            peers           ``{block_number, block_hash}``                 ``SYNC_RESPONSE``
``SYNC_REQUEST``      anchor/client     anchor          ``{from_block}``                               ``SYNC_RESPONSE``
``SYNC_RESPONSE``     anchor            requester       kind-specific result fields                    —
``SYNC_DIGEST``       anchor            overlay targets ``{head, head_hash, genesis_marker, round}``   one-way
``SNAPSHOT_REQUEST``  stale anchor      peer anchor     ``{chunk, chunk_size}``                        ``SNAPSHOT_CHUNK``
``SNAPSHOT_CHUNK``    peer anchor       stale anchor    ``{manifest, chunk, data}``                    —
``VOTE_REQUEST``      candidate         online anchors  ``{proposal_id, candidate, candidate_head}``   ``VOTE_RESPONSE``
``VOTE_RESPONSE``     anchor            candidate       ``{proposal_id, approve, head}``               —
``PRODUCER_CHANGE``   new producer      online anchors  ``{producer}``                                 ``ACK``
``RPC_CALL``          rpc client        rpc server      ``{service, method, args, kwargs}``            ``RPC_RESULT``
``RPC_RESULT``        rpc server        rpc client      ``{value}`` or ``{error}``                     —
``ACK``               handler           requester       request-specific receipt fields                —
``ERROR``             handler/transport requester       ``{reason}``                                   —
===================== ================= =============== ============================================== =================

The snapshot kinds implement the wire bootstrap of :mod:`repro.sync.bootstrap`:
a replica whose catch-up gap spans a marker shift pulls its peer's serialised
snapshot in bounded chunks (``manifest`` carries total size/chunk count, the
head hash the snapshot captures, and a digest the assembled payload must
match).  ``SYNC_DIGEST`` is the anti-entropy beacon of
:mod:`repro.sync.antientropy`: receivers that learn they are behind pull via
``SYNC_REQUEST`` or, across a marker shift, the snapshot kinds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional

_MESSAGE_COUNTER = itertools.count(1)


def reset_message_counter(start: int = 1) -> None:
    """Rewind the process-global message-id counter.

    Message ids exist to link responses to requests; they are process-global
    state, so their absolute values depend on everything that ran earlier in
    the process.  The scenario engine resets the counter before each run so
    that byte accounting (serialised messages include their id) is identical
    across repeated runs — the determinism pin of the scenario catalogue.
    """
    global _MESSAGE_COUNTER
    _MESSAGE_COUNTER = itertools.count(start)


class MessageKind(str, Enum):
    """All message types of the anchor-node protocol (see module taxonomy)."""

    SUBMIT_ENTRY = "submit_entry"
    SUBMIT_DELETION = "submit_deletion"
    SEAL_REQUEST = "seal_request"
    IDLE_TICK = "idle_tick"
    FIND_ENTRY = "find_entry"
    QUERY_STATISTICS = "query_statistics"
    BLOCK_ANNOUNCE = "block_announce"
    SUMMARY_HASH = "summary_hash"
    SYNC_REQUEST = "sync_request"
    SYNC_RESPONSE = "sync_response"
    SYNC_DIGEST = "sync_digest"
    SNAPSHOT_REQUEST = "snapshot_request"
    SNAPSHOT_CHUNK = "snapshot_chunk"
    VOTE_REQUEST = "vote_request"
    VOTE_RESPONSE = "vote_response"
    PRODUCER_CHANGE = "producer_change"
    RPC_CALL = "rpc_call"
    RPC_RESULT = "rpc_result"
    ACK = "ack"
    ERROR = "error"


@dataclass(frozen=True)
class Message:
    """A single protocol message."""

    kind: MessageKind
    sender: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))
    in_reply_to: Optional[int] = None

    def reply(self, kind: MessageKind, sender: str, payload: Optional[Mapping[str, Any]] = None) -> "Message":
        """Build a response message linked to this one."""
        return Message(
            kind=kind,
            sender=sender,
            payload=payload or {},
            in_reply_to=self.message_id,
        )

    def error(self, sender: str, reason: str) -> "Message":
        """Build an error response."""
        return self.reply(MessageKind.ERROR, sender, {"reason": reason})

    @property
    def is_error(self) -> bool:
        """True for error responses."""
        return self.kind is MessageKind.ERROR

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (used for size accounting)."""
        return {
            "kind": self.kind.value,
            "sender": self.sender,
            "payload": dict(self.payload),
            "message_id": self.message_id,
            "in_reply_to": self.in_reply_to,
        }
