"""Messages exchanged between clients and anchor nodes.

The paper's prototype was a CORBA client–server system; the reproduction
replaces the middleware with explicit message objects over an in-memory
transport (see DESIGN.md, substitution table).  Message kinds cover the three
interactions the concept needs: submitting entries / deletion requests,
announcing sealed blocks, and comparing locally computed summary-block hashes
as a synchronisation check (Section IV-B).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional

_MESSAGE_COUNTER = itertools.count(1)


def reset_message_counter(start: int = 1) -> None:
    """Rewind the process-global message-id counter.

    Message ids exist to link responses to requests; they are process-global
    state, so their absolute values depend on everything that ran earlier in
    the process.  The scenario engine resets the counter before each run so
    that byte accounting (serialised messages include their id) is identical
    across repeated runs — the determinism pin of the scenario catalogue.
    """
    global _MESSAGE_COUNTER
    _MESSAGE_COUNTER = itertools.count(start)


class MessageKind(str, Enum):
    """All message types of the anchor-node protocol."""

    SUBMIT_ENTRY = "submit_entry"
    SUBMIT_DELETION = "submit_deletion"
    SEAL_REQUEST = "seal_request"
    IDLE_TICK = "idle_tick"
    FIND_ENTRY = "find_entry"
    QUERY_STATISTICS = "query_statistics"
    BLOCK_ANNOUNCE = "block_announce"
    SUMMARY_HASH = "summary_hash"
    SYNC_REQUEST = "sync_request"
    SYNC_RESPONSE = "sync_response"
    VOTE_REQUEST = "vote_request"
    VOTE_RESPONSE = "vote_response"
    PRODUCER_CHANGE = "producer_change"
    RPC_CALL = "rpc_call"
    RPC_RESULT = "rpc_result"
    ACK = "ack"
    ERROR = "error"


@dataclass(frozen=True)
class Message:
    """A single protocol message."""

    kind: MessageKind
    sender: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))
    in_reply_to: Optional[int] = None

    def reply(self, kind: MessageKind, sender: str, payload: Optional[Mapping[str, Any]] = None) -> "Message":
        """Build a response message linked to this one."""
        return Message(
            kind=kind,
            sender=sender,
            payload=payload or {},
            in_reply_to=self.message_id,
        )

    def error(self, sender: str, reason: str) -> "Message":
        """Build an error response."""
        return self.reply(MessageKind.ERROR, sender, {"reason": reason})

    @property
    def is_error(self) -> bool:
        """True for error responses."""
        return self.kind is MessageKind.ERROR

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (used for size accounting)."""
        return {
            "kind": self.kind.value,
            "sender": self.sender,
            "payload": dict(self.payload),
            "message_id": self.message_id,
            "in_reply_to": self.in_reply_to,
        }
