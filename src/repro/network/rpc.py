"""A minimal RPC layer — the stand-in for the paper's CORBA middleware.

The published prototype glued its Python and Java components together with
CORBA so that components stay language independent and reusable.  The
reproduction keeps the same architectural seam but implements it as a small
request/response protocol on top of :class:`InMemoryTransport`:

* :class:`RpcServer` exposes a whitelisted set of methods of a target object
  (typically an :class:`~repro.network.node.AnchorNode` or its chain),
* :class:`RpcClient` builds a dynamic proxy whose attribute calls are
  marshalled into ``RPC_CALL`` messages and unmarshalled from ``RPC_RESULT``
  responses.

Only JSON-serialisable arguments and return values may cross the boundary,
which mirrors the IDL restriction real CORBA deployments live with.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from repro.core.errors import SelectiveDeletionError
from repro.network.message import Message, MessageKind
from repro.network.transport import InMemoryTransport, TransportError


class RpcError(SelectiveDeletionError):
    """Raised on the client side when a remote call fails."""


class RpcTimeout(RpcError):
    """Raised when a remote call exceeds the client's round-trip budget."""


class RpcServer:
    """Expose named methods of a target object over the transport."""

    def __init__(
        self,
        service_id: str,
        transport: InMemoryTransport,
        *,
        methods: Mapping[str, Callable[..., Any]],
    ) -> None:
        self.service_id = service_id
        self.transport = transport
        self._methods = dict(methods)
        transport.register(service_id, self.handle_message)

    @property
    def method_names(self) -> list[str]:
        """Names of all exposed methods."""
        return sorted(self._methods)

    def handle_message(self, message: Message) -> Optional[Message]:
        """Execute an RPC call and marshal the result."""
        if message.kind is not MessageKind.RPC_CALL:
            return message.error(self.service_id, "RPC server only accepts RPC_CALL messages")
        method_name = str(message.payload.get("method", ""))
        method = self._methods.get(method_name)
        if method is None:
            return message.error(
                self.service_id,
                f"unknown RPC method {method_name!r}; exposed: {self.method_names}",
            )
        args = list(message.payload.get("args", []))
        kwargs = dict(message.payload.get("kwargs", {}))
        try:
            result = method(*args, **kwargs)
        except SelectiveDeletionError as exc:
            return message.error(self.service_id, f"{type(exc).__name__}: {exc}")
        except (TypeError, ValueError, KeyError) as exc:
            # A malformed call (wrong arity, bad argument shape) is the
            # *caller's* fault; it must come back as a typed rejection, not
            # tear down the server's handler inside the kernel loop.
            return message.error(
                self.service_id,
                f"bad call to {method_name!r}: {type(exc).__name__}: {exc}",
            )
        return message.reply(MessageKind.RPC_RESULT, self.service_id, {"result": result})


class _RemoteMethod:
    """Callable proxy for one remote method."""

    def __init__(self, client: "RpcClient", method_name: str) -> None:
        self._client = client
        self._method_name = method_name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._client.call(self._method_name, *args, **kwargs)


class RpcClient:
    """Dynamic proxy marshalling attribute calls into RPC messages.

    ``timeout_ms`` bounds the (simulated) round trip of every call: when the
    request plus response latency exceeds it, the transport abandons the
    response and the client raises :class:`RpcTimeout` — the behaviour a
    CORBA client would observe on a slow or half-partitioned link.
    """

    def __init__(
        self,
        client_id: str,
        service_id: str,
        transport: InMemoryTransport,
        *,
        timeout_ms: Optional[float] = None,
    ) -> None:
        self.client_id = client_id
        self.service_id = service_id
        self.transport = transport
        self.timeout_ms = timeout_ms

    def call(self, method_name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a remote method and return its unmarshalled result."""
        message = Message(
            kind=MessageKind.RPC_CALL,
            sender=self.client_id,
            payload={"method": method_name, "args": list(args), "kwargs": dict(kwargs)},
        )
        try:
            response = self.transport.send(
                self.service_id, message, timeout_ms=self.timeout_ms
            )
        except TransportError as exc:
            raise RpcError(f"unknown service {self.service_id!r}: {exc}") from exc
        if response is None:
            if self.timeout_ms is not None:
                raise RpcTimeout(
                    f"call {method_name!r} to {self.service_id!r} exceeded {self.timeout_ms} ms"
                )
            raise RpcError(f"no response from service {self.service_id!r}")
        if response.is_error:
            raise RpcError(str(response.payload.get("reason", "remote call failed")))
        return response.payload.get("result")

    def __getattr__(self, name: str) -> _RemoteMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return _RemoteMethod(self, name)


def expose_chain_api(node_chain_service_id: str, transport: InMemoryTransport, chain: Any) -> RpcServer:
    """Publish the read-only chain API of an anchor node via RPC.

    Exposes the calls a CORBA client of the original prototype would issue:
    chain length, statistics, the genesis marker and a serialised dump.
    """
    return RpcServer(
        node_chain_service_id,
        transport,
        methods={
            "length": lambda: chain.length,
            "genesis_marker": lambda: chain.genesis_marker,
            "statistics": lambda: chain.statistics(),
            "dump": lambda: chain.to_dict(),
            "head_number": lambda: chain.head.block_number,
        },
    )
