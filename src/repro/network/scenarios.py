"""Named simulation scenarios on the deterministic event kernel.

The paper's evaluation ran hand-crafted fault experiments against a live
CORBA deployment (Section V).  This module packages the interesting runs as
a *catalogue of named scenarios*: each entry builds a kernel-backed
deployment, books traffic and faults on the virtual clock, drains the
simulation and returns a plain-dict result.

Determinism guarantee: a scenario is a pure function of ``(name, seed,
parameters)``.  Every random choice — latency samples, event tie-breaking,
gossip fan-out selection, workload contents — draws from seeded generators,
and virtual time only advances through the kernel, so two runs with the same
inputs produce byte-identical result dictionaries (pinned by
``tests/test_scenarios.py``).

Run from the command line::

    python -m repro simulate --list
    python -m repro simulate --scenario partition-and-heal --seed 11
    python -m repro simulate --scenario failover-storm --smoke

Catalogue
---------
* ``bursty-traffic``        — traffic bursts separated by idle periods; empty
  blocks emerge from simulated idle time (Section IV-D3).
* ``node-churn``            — replicas leave and rejoin; catch-up restores
  convergence (Section V-B4 isolation recovery).
* ``partition-and-heal``    — a scheduled partition delays gossip delivery;
  in-flight messages arrive after the heal.
* ``failover-storm``        — the producer dies; the quorum elects the most
  up-to-date replica over delayed ballots and traffic resumes.
* ``geo-latency-profiles``  — the same workload under increasing cross-region
  latency penalties.
* ``gossip-vs-broadcast``   — message cost of overlay gossip versus full
  broadcast for the same workload.
* ``replica-bootstrap``     — a node rejoins behind a genesis-marker shift on
  a lossy network; anti-entropy digests trigger a wire snapshot bootstrap
  and the deployment converges without any scenario-level fallback.

Adversarial scenarios (byzantine actors from :mod:`repro.adversary`; every
run pairs the attack counters with the quorum's defence counters under
``report["adversary"]``):

* ``byzantine-producer``    — an equivocating producer splits conflicting
  blocks over the replicas; forks are detected and repaired, and the outcome
  is cross-checked against the 51 %-attack model of
  :mod:`repro.analysis.attack`.
* ``forged-erasure``        — forged, impersonated and replayed deletion
  requests die as typed rejections on the wire path (Sections IV-D1/D2).
* ``digest-spoof``          — a byzantine peer advertises fabricated
  ``SYNC_DIGEST`` heads; baited pulls fail harmlessly.
* ``clock-skew``            — a clock-skewed replica wins the producer
  failover; its future timestamps age temporary entries prematurely.

Workload scenarios (the full paper workload generators on virtual arrival
timelines — one closed-loop
:class:`~repro.workloads.driver.ScenarioWorkloadDriver` by default, an
open-loop :class:`~repro.workloads.fleet.FleetDriver` when ``n_clients``
is raised above 1):

* ``gdpr-erasure``          — Art. 17 erasure requests trail a personal-data
  stream; deletion latency is measured in virtual milliseconds.
* ``supply-chain-recall``   — Industry-4.0 product stages with best-before
  expiry on simulated time, plus a regulator recall mid-stream.
* ``vehicle-telemetry``     — workshop maintenance logs on a lossy network;
  decommissioning triggers authority deletions, anti-entropy repairs loss.
* ``coin-economy``          — a coin-transfer graph through a partition and
  heal; lost-wallet outputs are reclaimed by a recovery admin afterwards.
* ``fleet-saturation``      — an open-loop client fleet drives one
  deployment past its service rate; the report's p50/p95/p99 request
  percentiles and shed counters say how it degraded.
* ``sharded-fleet``         — the same fleet against K author-sharded
  deployments on one virtual clock behind a
  :class:`~repro.service.sharding.ShardRouter`; per-shard lanes overlap
  round trips so the aggregate service rate scales with K, and post-traffic
  GDPR erasures fan out to exactly the shards holding each author.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.adversary import (
    ClockSkewedReplica,
    DeletionForger,
    DigestSpoofer,
    EquivocatingProducer,
)
from repro.analysis.attack import (
    analytic_success_probability,
    confirmation_depth,
    simulate_attack,
)
from repro.authz.bell_lapadula import BellLaPadulaModel, SecurityLevel
from repro.core.chain import CohesionChecker
from repro.core.config import ChainConfig, RedundancyPolicy
from repro.core.entry import EntryReference
from repro.core.errors import SelectiveDeletionError
from repro.network.gossip import GossipOverlay, GossipTopology
from repro.network.kernel import EventKernel
from repro.network.message import MessageKind, reset_message_counter
from repro.network.simulator import NetworkSimulator
from repro.network.transport import GeoLatencyModel, LatencyModel
from repro.service.sharding import ShardRouter
from repro.workloads.coins import CoinTransferWorkload
from repro.workloads.fleet import derive_client_seed
from repro.workloads.stats import has_samples
from repro.workloads.gdpr import GdprErasureWorkload
from repro.workloads.logging import LoginAuditWorkload
from repro.workloads.supply_chain import SupplyChainWorkload
from repro.workloads.vehicle import VehicleLifecycleWorkload

#: A scenario body: ``(seed, params) -> result-extras dict``.
ScenarioFn = Callable[[int, dict[str, Any]], dict[str, Any]]


class ScenarioError(SelectiveDeletionError):
    """Raised for unknown scenario names or invalid parameters."""


@dataclass(frozen=True)
class Scenario:
    """One catalogue entry."""

    name: str
    description: str
    defaults: dict[str, Any]
    smoke: dict[str, Any]
    fn: ScenarioFn


SCENARIOS: dict[str, Scenario] = {}


def scenario(
    name: str,
    description: str,
    *,
    defaults: dict[str, Any],
    smoke: Optional[dict[str, Any]] = None,
) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario under ``name`` with default / smoke parameters."""

    def register(fn: ScenarioFn) -> ScenarioFn:
        stray = set(smoke or {}) - set(defaults)
        if stray:
            # A typo'd smoke key would otherwise silently become a new
            # parameter nothing reads; fail at registration instead.
            raise ScenarioError(
                f"smoke parameter(s) {sorted(stray)} of scenario {name!r} are not "
                f"declared in defaults {sorted(defaults)}"
            )
        SCENARIOS[name] = Scenario(
            name=name,
            description=description,
            defaults=dict(defaults),
            smoke=dict(smoke or {}),
            fn=fn,
        )
        return fn

    return register


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def scenario_catalogue() -> list[Scenario]:
    """All registered scenarios, sorted by name."""
    return [SCENARIOS[name] for name in scenario_names()]


def validate_overrides(name: str, overrides: dict[str, Any]) -> None:
    """Raise :class:`ScenarioError` for override keys ``name`` lacks — or
    values whose type does not match the parameter's default.

    Exposed so callers running *several* scenarios (``simulate --scenario
    all``) can reject a typo'd parameter up front instead of aborting
    mid-run after some scenarios already executed.  The type check turns
    ``records="ten"`` into a named, listed error before any scenario body
    tries ``int(params["records"])``.
    """
    entry = SCENARIOS.get(name)
    if entry is None:
        raise ScenarioError(f"unknown scenario {name!r}; available: {scenario_names()}")
    unknown = set(overrides) - set(entry.defaults)
    if unknown:
        offending = ", ".join(repr(key) for key in sorted(unknown))
        raise ScenarioError(
            f"unknown parameter(s) {offending} for scenario {name!r}; "
            f"valid parameters: {sorted(entry.defaults)}"
        )
    for key in sorted(overrides):
        default, value = entry.defaults[key], overrides[key]
        if isinstance(default, bool) or isinstance(value, bool):
            acceptable = isinstance(default, bool) and isinstance(value, bool)
        elif isinstance(default, (int, float)):
            acceptable = isinstance(value, (int, float))
        else:
            acceptable = isinstance(value, type(default))
        if not acceptable:
            raise ScenarioError(
                f"parameter {key!r} of scenario {name!r} expects "
                f"{type(default).__name__} (default {default!r}), "
                f"got {type(value).__name__} {value!r}"
            )


def run_scenario(
    name: str, *, seed: int = 7, smoke: bool = False, **overrides: Any
) -> dict[str, Any]:
    """Run a named scenario and return its plain-dict result.

    ``smoke`` applies the scenario's tiny-parameter overrides (CI smoke
    jobs); explicit ``overrides`` win over both defaults and smoke values.
    The result is byte-identical across runs for the same inputs.
    """
    validate_overrides(name, overrides)
    entry = SCENARIOS[name]
    params = dict(entry.defaults)
    if smoke:
        params.update(entry.smoke)
    params.update(overrides)
    # Message ids are process-global; rewind them so byte accounting is
    # identical no matter what ran earlier in the process.
    reset_message_counter()
    result = entry.fn(seed, params)
    return {
        "scenario": name,
        "seed": seed,
        "smoke": smoke,
        "parameters": {key: params[key] for key in sorted(params)},
        **result,
    }


# --------------------------------------------------------------------- #
# Deployment helpers
# --------------------------------------------------------------------- #


def _anchor_ids(count: int) -> list[str]:
    return [f"anchor-{index}" for index in range(count)]


def _overlay(kind: str, anchors: int, *, fanout: int, seed: int) -> Optional[GossipOverlay]:
    """Build the gossip overlay named by ``kind`` (``"none"`` disables it)."""
    ids = _anchor_ids(anchors)
    if kind == "none":
        return None
    if kind == "clique":
        topology = GossipTopology.fully_connected(ids)
    elif kind == "ring":
        topology = GossipTopology.ring(ids)
    elif kind == "random-regular":
        topology = GossipTopology.random_regular(ids, degree=max(fanout + 1, 3), seed=seed)
    else:
        raise ScenarioError(f"unknown overlay kind {kind!r}")
    return GossipOverlay(topology, fanout=fanout, seed=seed)


def _deployment(
    seed: int,
    *,
    anchors: int,
    overlay: str = "clique",
    fanout: int = 2,
    latency: Optional[LatencyModel] = None,
    config: Optional[ChainConfig] = None,
    loss_rate: float = 0.0,
    admins: tuple[str, ...] = (),
    cohesion_checker: Optional[CohesionChecker] = None,
) -> NetworkSimulator:
    """A kernel-backed deployment with independently seeded randomness.

    The default chain config keeps every block (no retention limit): most
    fault scenarios rely on isolated replicas *catching up* over the wire,
    which is only possible while the missed normal blocks are still living.
    ``replica-bootstrap`` runs the paper's evaluation config instead, so a
    marker shift opens a gap that only the snapshot bootstrap can close.
    """
    kernel = EventKernel(seed=seed)
    return NetworkSimulator(
        anchor_count=anchors,
        config=config or ChainConfig(sequence_length=3),
        latency=latency or LatencyModel(seed=seed + 1),
        kernel=kernel,
        gossip=_overlay(overlay, anchors, fanout=fanout, seed=seed + 2),
        loss_rate=loss_rate,
        loss_seed=seed + 3,
        admins=admins,
        cohesion_checker=cohesion_checker,
    )


def _login(user: str, index: int) -> dict[str, str]:
    return {"D": f"Login {user} #{index}", "K": user, "S": f"sig_{user}"}


# --------------------------------------------------------------------- #
# Catalogue
# --------------------------------------------------------------------- #


@scenario(
    "bursty-traffic",
    "traffic bursts separated by idle periods; empty blocks emerge from simulated time",
    defaults={
        "anchors": 3,
        "bursts": 4,
        "burst_size": 5,
        "burst_gap_ms": 500.0,
        "entry_gap_ms": 8.0,
        "idle_heartbeat_ms": 40.0,
        "empty_block_interval_ticks": 120,
        "fanout": 2,
    },
    smoke={"bursts": 2, "burst_size": 2},
)
def _bursty_traffic(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    config = dataclasses.replace(
        ChainConfig.paper_evaluation(),
        empty_block_interval=int(params["empty_block_interval_ticks"]),
    )
    simulator = _deployment(
        seed, anchors=int(params["anchors"]), fanout=int(params["fanout"]), config=config
    )
    kernel = simulator.kernel
    assert kernel is not None
    users = ["ALPHA", "BRAVO", "CHARLIE"]
    for user in users:
        simulator.add_client(user)
    horizon = float(params["bursts"]) * float(params["burst_gap_ms"])
    # The idle heartbeat stands in for the operator's empty-block cron job:
    # it merely *asks* "has the idle interval elapsed?" — whether an empty
    # block appears is decided by simulated time (Section IV-D3).
    kernel.every(
        float(params["idle_heartbeat_ms"]),
        lambda: simulator.producer.chain.idle_tick(),
        label="idle-heartbeat",
        until=horizon,
    )
    for burst in range(int(params["bursts"])):
        base = burst * float(params["burst_gap_ms"]) + 30.0
        for index in range(int(params["burst_size"])):
            user = users[(burst + index) % len(users)]
            kernel.schedule_at(
                base + index * float(params["entry_gap_ms"]),
                lambda user=user, index=index: simulator.submit_entry(
                    user, _login(user, index)
                ),
                label=f"burst-{burst}-entry-{index}",
            )
    kernel.run_until(horizon)
    simulator.sync_check()
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "node-churn",
    "replicas leave and rejoin; catch-up restores convergence after each return",
    defaults={
        "anchors": 4,
        "events": 12,
        "entry_gap_ms": 60.0,
        "churn": [
            ["anchor-2", 120.0, 420.0],
            ["anchor-3", 360.0, 660.0],
        ],
        "fanout": 2,
    },
    smoke={"events": 6, "churn": [["anchor-2", 80.0, 220.0]]},
)
def _node_churn(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    simulator = _deployment(seed, anchors=int(params["anchors"]), fanout=int(params["fanout"]))
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    for node_id, down_at, up_at in params["churn"]:
        simulator.schedule_offline(node_id, float(down_at))
        simulator.schedule_online(node_id, float(up_at))
        # The returning node asks a reachable anchor for what it missed —
        # the recovery procedure of Section V-B4.
        kernel.schedule_at(
            float(up_at) + 30.0,
            lambda node_id=node_id: simulator.anchors[node_id].catch_up(simulator.producer_id),
            label=f"catch-up:{node_id}",
        )
    for index in range(int(params["events"])):
        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]),
            lambda index=index: simulator.submit_entry("ALPHA", _login("ALPHA", index)),
            label=f"entry-{index}",
        )
    report = simulator.finalize()
    # A replica that was offline at the end of traffic may still trail.
    for node_id, _, _ in params["churn"]:
        simulator.anchors[node_id].catch_up(simulator.producer_id)
    return {
        "report": report.as_dict(),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "partition-and-heal",
    "a scheduled partition delays delivery; in-flight messages arrive after the heal",
    defaults={
        "anchors": 4,
        "events": 10,
        "entry_gap_ms": 60.0,
        "partition_at_ms": 150.0,
        "heal_at_ms": 450.0,
        "latency_min_ms": 40.0,
        "latency_max_ms": 140.0,
        "fanout": 2,
    },
    smoke={"events": 5, "partition_at_ms": 80.0, "heal_at_ms": 260.0},
)
def _partition_and_heal(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        latency=LatencyModel(
            minimum_ms=float(params["latency_min_ms"]),
            maximum_ms=float(params["latency_max_ms"]),
            seed=seed + 1,
        ),
    )
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    ids = simulator.anchor_ids
    near, far = ids[: len(ids) // 2], ids[len(ids) // 2 :]
    simulator.schedule_partition(near, far, float(params["partition_at_ms"]))
    simulator.schedule_heal(float(params["heal_at_ms"]))
    snapshots: dict[str, dict[str, int]] = {}
    kernel.schedule_at(
        float(params["heal_at_ms"]) - 1.0,
        lambda: snapshots.__setitem__("at_heal", simulator.all_heads()),
        label="snapshot-at-heal",
    )
    for index in range(int(params["events"])):
        kernel.schedule_at(
            30.0 + index * float(params["entry_gap_ms"]),
            lambda index=index: simulator.submit_entry(
                "ALPHA", _login("ALPHA", index), anchor_id=simulator.producer_id
            ),
            label=f"entry-{index}",
        )
    # Gossip hops dropped *during* the partition are gone — and even a
    # near-side replica may sit on buffered out-of-order blocks whose
    # predecessors were lost because the overlay routed them through the
    # far side.  No scripted recovery: the periodic anti-entropy digests
    # alone detect the gaps after the heal and pull the missing blocks
    # (repro.sync.antientropy replacing the old scenario-level catch-up).
    horizon = float(params["heal_at_ms"]) + 400.0
    simulator.enable_anti_entropy(interval_ms=90.0, until=horizon)
    kernel.run_until(horizon)
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "heads_at_heal": snapshots.get("at_heal", {}),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "failover-storm",
    "the producer dies mid-traffic; the quorum elects a new one over delayed ballots",
    defaults={
        "anchors": 4,
        "events": 12,
        "entry_gap_ms": 50.0,
        "fail_at_ms": 200.0,
        "elect_at_ms": 280.0,
        "recover_at_ms": 640.0,
        "fanout": 2,
    },
    smoke={"events": 6, "fail_at_ms": 120.0, "elect_at_ms": 170.0, "recover_at_ms": 340.0},
)
def _failover_storm(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    simulator = _deployment(seed, anchors=int(params["anchors"]), fanout=int(params["fanout"]))
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    first_producer = simulator.producer_id
    simulator.schedule_offline(first_producer, float(params["fail_at_ms"]))
    kernel.schedule_at(
        float(params["elect_at_ms"]),
        lambda: simulator.elect_new_producer(exclude=(first_producer,)),
        label="failover-election",
    )
    simulator.schedule_online(first_producer, float(params["recover_at_ms"]))
    kernel.schedule_at(
        float(params["recover_at_ms"]) + 30.0,
        lambda: simulator.anchors[first_producer].catch_up(simulator.producer_id),
        label=f"catch-up:{first_producer}",
    )
    accepted: list[int] = []
    for index in range(int(params["events"])):
        def submit(index: int = index) -> None:
            response = simulator.submit_entry("ALPHA", _login("ALPHA", index))
            if not response.is_error:
                accepted.append(index)

        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]), submit, label=f"entry-{index}"
        )
    report = simulator.finalize()
    simulator.anchors[first_producer].catch_up(simulator.producer_id)
    return {
        "report": report.as_dict(),
        "first_producer": first_producer,
        "final_producer": simulator.producer_id,
        "entries_accepted": len(accepted),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "geo-latency-profiles",
    "the same workload under increasing cross-region latency penalties",
    defaults={
        "anchors": 4,
        "events": 8,
        "entry_gap_ms": 80.0,
        "profiles": [["single-region", 0.0], ["two-regions", 60.0], ["three-continents", 150.0]],
        "fanout": 2,
    },
    smoke={"events": 4},
)
def _geo_latency_profiles(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    region_names = ["eu", "us", "ap"]
    anchors = int(params["anchors"])
    regions = {
        anchor_id: region_names[index % len(region_names)]
        for index, anchor_id in enumerate(_anchor_ids(anchors))
    }
    profiles: dict[str, dict[str, Any]] = {}
    for profile_name, cross_ms in params["profiles"]:
        reset_message_counter()  # comparable byte accounting per profile
        simulator = _deployment(
            seed,
            anchors=anchors,
            fanout=int(params["fanout"]),
            latency=GeoLatencyModel(
                seed=seed + 1, regions=dict(regions), cross_region_ms=float(cross_ms)
            ),
        )
        kernel = simulator.kernel
        assert kernel is not None
        simulator.add_client("ALPHA")
        for index in range(int(params["events"])):
            kernel.schedule_at(
                20.0 + index * float(params["entry_gap_ms"]),
                lambda index=index, simulator=simulator: simulator.submit_entry(
                    "ALPHA", _login("ALPHA", index)
                ),
                label=f"entry-{index}",
            )
        report = simulator.finalize()
        profiles[profile_name] = {
            "cross_region_ms": float(cross_ms),
            "delivery_latency_ms": report.transport["delivery_latency_ms"],
            "virtual_time_ms": report.kernel["virtual_time_ms"],
            "replicas_identical": simulator.replicas_identical(),
        }
    return {"regions": regions, "profiles": profiles}


@scenario(
    "gossip-vs-broadcast",
    "message cost of overlay gossip versus full broadcast for the same workload",
    defaults={"anchors": 8, "events": 6, "entry_gap_ms": 70.0, "fanout": 2},
    smoke={"anchors": 4, "events": 3},
)
def _gossip_vs_broadcast(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    modes: dict[str, dict[str, Any]] = {}
    for mode, overlay in (("gossip", "random-regular"), ("broadcast", "none")):
        # Fresh message ids per mode: ids are serialised into every message,
        # so byte accounting would otherwise be skewed against the mode that
        # runs second.
        reset_message_counter()
        simulator = _deployment(
            seed, anchors=int(params["anchors"]), overlay=overlay, fanout=int(params["fanout"])
        )
        kernel = simulator.kernel
        assert kernel is not None
        simulator.add_client("ALPHA")
        for index in range(int(params["events"])):
            kernel.schedule_at(
                20.0 + index * float(params["entry_gap_ms"]),
                lambda index=index, simulator=simulator: simulator.submit_entry(
                    "ALPHA", _login("ALPHA", index), anchor_id=simulator.producer_id
                ),
                label=f"entry-{index}",
            )
        report = simulator.finalize()
        # Gossip fan-out may leave a replica one hop short on sparse graphs;
        # a catch-up round makes the convergence comparison fair.
        for node_id in simulator.anchor_ids:
            if node_id != simulator.producer_id:
                simulator.anchors[node_id].catch_up(simulator.producer_id)
        producer_announcements = sum(
            1
            for message in simulator.transport.message_log
            if message.sender == simulator.producer_id
            and message.kind is MessageKind.BLOCK_ANNOUNCE
        )
        modes[mode] = {
            "delivered": report.transport["delivered"],
            "dropped": report.transport["dropped"],
            "bytes_transferred": report.transport["bytes_transferred"],
            # The axis gossip is about: the producer's own egress per block
            # is bounded by the fan-out instead of growing with the quorum.
            "producer_announcements": producer_announcements,
            "virtual_time_ms": report.kernel["virtual_time_ms"],
            "replicas_identical": simulator.replicas_identical(),
        }
    return {"modes": modes}


@scenario(
    "replica-bootstrap",
    "a node rejoins behind a marker shift under loss; anti-entropy triggers a wire snapshot bootstrap",
    defaults={
        "anchors": 4,
        "events": 24,
        "entry_gap_ms": 40.0,
        "offline_at_ms": 60.0,
        "rejoin_at_ms": 1100.0,
        "settle_ms": 700.0,
        "loss_rate": 0.05,
        "chunk_size": 2048,
        "anti_entropy_interval_ms": 120.0,
        "fanout": 2,
    },
    smoke={"events": 12, "rejoin_at_ms": 600.0, "settle_ms": 600.0},
)
def _replica_bootstrap(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """The full replica lifecycle: join late, bootstrap, stay converged.

    The straggler goes offline almost immediately and stays away while the
    producer seals enough blocks to complete summarisation cycles and shift
    the genesis marker — so on rejoin, incremental catch-up is structurally
    impossible (the blocks it needs were physically deleted).  No recovery
    is scripted: the periodic anti-entropy digests alone must detect the
    stale replica, and its pull must escalate to the chunked snapshot
    bootstrap — across a transport that randomly loses messages, forcing
    chunk retransmissions.
    """
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=ChainConfig.paper_evaluation(),
        loss_rate=float(params["loss_rate"]),
    )
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    straggler = simulator.anchor_ids[-1]
    horizon = float(params["rejoin_at_ms"]) + float(params["settle_ms"])
    simulator.enable_anti_entropy(
        interval_ms=float(params["anti_entropy_interval_ms"]), until=horizon
    )
    simulator.schedule_offline(straggler, float(params["offline_at_ms"]))
    simulator.schedule_online(straggler, float(params["rejoin_at_ms"]))
    checkpoints: dict[str, Any] = {}

    def snapshot_rejoin_state() -> None:
        checkpoints["producer_marker"] = simulator.producer.chain.genesis_marker
        checkpoints["producer_head"] = simulator.producer.chain.head.block_number
        checkpoints["straggler_head"] = simulator.anchors[straggler].chain.head.block_number

    kernel.schedule_at(
        float(params["rejoin_at_ms"]) - 1.0, snapshot_rejoin_state, label="rejoin-state"
    )
    accepted: list[int] = []
    for index in range(int(params["events"])):
        def submit(index: int = index) -> None:
            response = simulator.submit_entry(
                "ALPHA", _login("ALPHA", index), anchor_id=simulator.producer_id
            )
            if not response.is_error:
                accepted.append(index)

        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]), submit, label=f"entry-{index}"
        )
    kernel.run_until(horizon)
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "straggler": straggler,
        "entries_accepted": len(accepted),
        "at_rejoin": checkpoints,
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


# --------------------------------------------------------------------- #
# Adversarial scenarios (repro.adversary)
# --------------------------------------------------------------------- #
#
# Byzantine actors from repro.adversary injected into kernel deployments.
# Every run reports both sides under report["adversary"]: the actors'
# attack counters and the quorum's defence counters (typed deletion
# rejections, divergence detections, bounded rejected-block windows,
# fork repairs).  Like every catalogue entry the runs are byte-identical
# per (seed, parameters) — including everything the adversary does.


def _ack_reference(response: Message) -> Optional[EntryReference]:
    """The sealed entry's origin reference, from a submit ACK."""
    if response.is_error or "block_number" not in response.payload:
        return None
    return EntryReference(
        block_number=int(response.payload["block_number"]),
        entry_number=int(response.payload["entry_number"]),
    )


@scenario(
    "byzantine-producer",
    "an equivocating producer splits conflicting blocks over the replicas; "
    "forks are detected, repaired, and cross-checked against the 51%-attack model",
    defaults={
        "anchors": 4,
        "events": 8,
        "entry_gap_ms": 50.0,
        "attack_at_ms": 260.0,
        "variants": 2,
        "attacker_share": 0.35,
        "attack_trials": 400,
        "settle_ms": 250.0,
        "fanout": 2,
    },
    smoke={"events": 4, "attack_at_ms": 140.0, "attack_trials": 120},
)
def _byzantine_producer(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """Section IV-B's feared fork, manufactured on purpose.

    Mid-traffic, an equivocating producer crafts conflicting same-height
    blocks on the honest head and feeds a different variant to every
    replica.  Victims still sitting on that head fork; the honest producer's
    subsequent blocks no longer link on forked replicas (their rejections
    land in the bounded ``rejected_blocks`` window), the summary-hash
    comparison detects the divergence, and
    :meth:`~repro.network.simulator.NetworkSimulator.repair_divergent_replicas`
    restores convergence by snapshot adoption.  The run closes by
    cross-checking against :mod:`repro.analysis.attack`: at the final chain
    length, summarised history without redundancy is rewritable by this
    attacker share (success probability >= 0.5 at one block of work) while
    middle-sequence redundancy keeps it protected.
    """
    simulator = _deployment(seed, anchors=int(params["anchors"]), fanout=int(params["fanout"]))
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    byzantine = simulator.inject_adversary(
        EquivocatingProducer("byzantine-0", simulator.transport)
    )
    forged_heights: list[int] = []

    def attack() -> None:
        victims = [peer for peer in simulator.anchor_ids if peer != simulator.producer_id]
        blocks = byzantine.equivocate(
            victims, head=simulator.producer.chain.head, variants=int(params["variants"])
        )
        forged_heights.extend(block.block_number for block in blocks)

    kernel.schedule_at(float(params["attack_at_ms"]), attack, label="equivocation")
    for index in range(int(params["events"])):
        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]),
            lambda index=index: simulator.submit_entry(
                "ALPHA", _login("ALPHA", index), anchor_id=simulator.producer_id
            ),
            label=f"entry-{index}",
        )
    horizon = 25.0 + float(params["events"]) * float(params["entry_gap_ms"])
    kernel.run_until(horizon + float(params["settle_ms"]))
    # Detection first (the paper's summary-hash comparison), then repair.
    detection = simulator.sync_check()
    repaired = simulator.repair_divergent_replicas()
    after_repair = simulator.sync_check()
    # Close the loop with Section V-B1: does the deployment's final chain
    # length actually leave summarised history rewritable for this attacker?
    chain_length = simulator.producer.chain.head.block_number + 1
    share = float(params["attacker_share"])
    attack_rng = random.Random(seed + 61)
    model: dict[str, Any] = {"chain_length": chain_length, "attacker_share": share}
    for label, policy in (
        ("no_redundancy", RedundancyPolicy.NONE),
        ("middle_sequence", RedundancyPolicy.MIDDLE_MERKLE_ROOT),
    ):
        profile = confirmation_depth(chain_length, policy)
        outcome = simulate_attack(
            attacker_share=share,
            blocks_to_rewrite=profile.blocks_to_rewrite,
            trials=int(params["attack_trials"]),
            rng=attack_rng,
        )
        model[label] = {
            "blocks_to_rewrite": profile.blocks_to_rewrite,
            "analytic_success": round(
                analytic_success_probability(share, profile.blocks_to_rewrite), 6
            ),
            "simulated_success": round(outcome.success_rate, 6),
        }
    model["none_rewritable"] = model["no_redundancy"]["analytic_success"] >= 0.5
    model["middle_protected"] = model["middle_sequence"]["analytic_success"] < 0.5
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "forged_heights": forged_heights,
        "diverged_peers_detected": len(detection.diverged_peers),
        "replicas_repaired": repaired,
        "in_sync_after_repair": after_repair.in_sync,
        "attack_model": model,
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "forged-erasure",
    "forged, impersonated and replayed deletion requests die as typed rejections on the wire path",
    defaults={
        "anchors": 3,
        "records": 10,
        "entry_gap_ms": 40.0,
        "delete_after": 4,
        "forge_lag_ms": 60.0,
        "replay_lag_ms": 120.0,
        "settle_ms": 150.0,
        "fanout": 2,
    },
    smoke={"records": 8},
)
def _forged_erasure(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """Three escalating attacks on deletion authorization (Section IV-D1/D2).

    ALPHA writes records under the paper's evaluation config (marker shifts
    physically cut old sequences) and legitimately erases the first one.
    The forger MALLORY then attacks the second record three ways, and each
    attempt must die in a *different* layer, visible as a typed rejection:

    * ``forge``       — signed as MALLORY: the authorizer's signature
      comparison rejects (``rejected_unauthorized``),
    * ``impersonate`` — signed claiming ALPHA: the simplified scheme is not
      binding, so the authorizer passes — but the record is classified
      CONFIDENTIAL above ALPHA's own clearance, so the Bell-LaPadula
      cohesion layer rejects (``rejected_cohesion``),
    * ``replay``      — ALPHA's captured legitimate request, re-sent after
      its execution: the target physically left the chain, so the
      missing-target check rejects (``rejected_missing_target``).
    """
    model = BellLaPadulaModel()
    model.clear_subject("SECURITY-OFFICER", SecurityLevel.SECRET)
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=ChainConfig.paper_evaluation(),
        cohesion_checker=model.as_cohesion_checker(),
    )
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    forger = simulator.inject_adversary(DeletionForger("MALLORY", simulator.transport))
    references: dict[int, EntryReference] = {}
    outcomes: dict[str, str] = {}
    gap = float(params["entry_gap_ms"])

    def submit(index: int) -> None:
        response = simulator.submit_entry(
            "ALPHA",
            {"D": f"Record #{index}", "K": "ALPHA", "S": "sig_ALPHA"},
            anchor_id=simulator.producer_id,
        )
        reference = _ack_reference(response)
        if reference is None:
            return
        references[index] = reference
        if index == 1:
            # The second record holds sensitive content: classified above
            # its own author's clearance, so only cleared officers may ever
            # delete it — the defence in depth the impersonation runs into.
            model.classify_entry(reference, SecurityLevel.CONFIDENTIAL)

    for index in range(int(params["records"])):
        kernel.schedule_at(25.0 + index * gap, lambda index=index: submit(index), label=f"record-{index}")

    def legitimate_erasure() -> None:
        response = simulator.submit_deletion(
            "ALPHA",
            references[0],
            anchor_id=simulator.producer_id,
            reason="legitimate erasure",
        )
        outcomes["legitimate"] = str(response.payload.get("deletion_status", "error"))

    kernel.schedule_at(
        25.0 + float(params["delete_after"]) * gap + gap / 2,
        legitimate_erasure,
        label="legitimate-erasure",
    )
    forge_at = 25.0 + float(params["records"]) * gap + float(params["forge_lag_ms"])

    def forge_phase() -> None:
        target = references[1]
        forger.forge(simulator.producer_id, target, reason="hostile takedown")
        forger.impersonate(
            simulator.producer_id, target, victim="ALPHA", reason="hostile takedown"
        )

    kernel.schedule_at(forge_at, forge_phase, label="forge-phase")
    kernel.schedule_at(
        forge_at + float(params["replay_lag_ms"]),
        # limit=1: the first SUBMIT_DELETION on the wire is ALPHA's
        # legitimate request — replayed after its target was cut.
        lambda: forger.replay(simulator.producer_id, limit=1),
        label="replay-phase",
    )
    kernel.run_until(forge_at + float(params["replay_lag_ms"]) + float(params["settle_ms"]))
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "legitimate_status": outcomes.get("legitimate", "missing"),
        "typed_rejections": {
            key: forger.stats[key]
            for key in sorted(forger.stats)
            if key.startswith("rejected_")
        },
        "approved_forgeries": forger.stats.get("approved", 0),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "digest-spoof",
    "a byzantine peer advertises fabricated sync digests; baited pulls fail and replicas stay converged",
    defaults={
        "anchors": 4,
        "events": 8,
        "entry_gap_ms": 60.0,
        "spoof_interval_ms": 130.0,
        "spoof_lead": 4,
        "anti_entropy_interval_ms": 150.0,
        "settle_ms": 400.0,
        "fanout": 2,
    },
    smoke={"events": 4, "settle_ms": 300.0},
)
def _digest_spoof(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """Anti-entropy under a lying peer: containment, not prevention.

    A digest spoofer advertises heads always ``spoof_lead`` blocks past the
    honest head, baiting replicas into pulls that the spoofer answers with a
    fake marker shift and a refused snapshot.  The defence under test is
    that a failed pull changes *nothing*: victims keep their replicas, the
    honest anti-entropy rounds keep the quorum converged, and the only
    trace of the attack is the spoofer's own counters (``pulls_baited``,
    ``snapshots_refused``) next to the unchanged convergence report.
    """
    simulator = _deployment(seed, anchors=int(params["anchors"]), fanout=int(params["fanout"]))
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    spoofer = simulator.inject_adversary(DigestSpoofer("spoofer-0", simulator.transport))
    horizon = 25.0 + float(params["events"]) * float(params["entry_gap_ms"]) + float(
        params["settle_ms"]
    )
    simulator.enable_anti_entropy(
        interval_ms=float(params["anti_entropy_interval_ms"]), until=horizon
    )
    spoofer.start(
        kernel=kernel,
        targets=simulator.anchor_ids,
        interval_ms=float(params["spoof_interval_ms"]),
        head_fn=lambda: simulator.producer.chain.head.block_number,
        lead=int(params["spoof_lead"]),
        until=horizon,
    )
    for index in range(int(params["events"])):
        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]),
            lambda index=index: simulator.submit_entry("ALPHA", _login("ALPHA", index)),
            label=f"entry-{index}",
        )
    kernel.run_until(horizon)
    spoofer.stop()
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "pulls_baited": spoofer.stats.get("pulls_baited", 0),
        "snapshots_refused": spoofer.stats.get("snapshots_refused", 0),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "clock-skew",
    "a clock-skewed replica wins the producer failover; its future timestamps age temporary entries prematurely",
    defaults={
        "anchors": 3,
        "events": 6,
        "entry_gap_ms": 50.0,
        "skew_ticks": 5000,
        "temp_ttl_ticks": 2000,
        "fail_at_ms": 340.0,
        "elect_at_ms": 400.0,
        "post_events": 5,
        "settle_ms": 200.0,
        "fanout": 2,
    },
    smoke={"events": 4, "post_events": 3, "fail_at_ms": 240.0, "elect_at_ms": 300.0},
)
def _clock_skew(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """What clock skew can — and cannot — do to the quorum (Section IV-D4).

    One replica runs ``skew_ticks`` ahead.  While it is a mere follower the
    skew is invisible: expiry evaluates on *on-chain* timestamps, so every
    replica ages the temporary entry identically and the quorum cannot
    fork.  Then the honest producer dies and the skewed replica wins the
    failover — blocks it seals stamp future timestamps, and a temporary
    entry far from its honest expiry is aged out prematurely.  The quorum
    *still* does not fork (every replica reads the same skewed on-chain
    time); the damage is semantic, and the run measures it: the entry is
    gone while the honest clock says it should have lived.
    """
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=ChainConfig.paper_evaluation(),
    )
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    skewed_id = simulator.anchor_ids[-1]
    actor = simulator.inject_adversary(
        ClockSkewedReplica(
            f"skew:{skewed_id}",
            simulator.transport,
            kernel=kernel,
            skew_ticks=int(params["skew_ticks"]),
        )
    )
    actor.apply(simulator.anchors[skewed_id])
    first_producer = simulator.producer_id
    ttl = int(params["temp_ttl_ticks"])
    checkpoints: dict[str, Any] = {}

    def submit(index: int) -> None:
        if index == 0:
            # The canary: a temporary entry whose honest expiry lies far
            # beyond this run's virtual horizon.
            response = simulator.submit_entry(
                "ALPHA",
                {"D": "Temporary record", "K": "ALPHA", "S": "sig_ALPHA"},
                anchor_id=simulator.producer_id,
                expires_at_time=ttl,
            )
            checkpoints["temp_reference"] = _ack_reference(response)
        else:
            simulator.submit_entry(
                "ALPHA", _login("ALPHA", index), anchor_id=simulator.producer_id
            )

    for index in range(int(params["events"])):
        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]),
            lambda index=index: submit(index),
            label=f"entry-{index}",
        )
    simulator.schedule_offline(first_producer, float(params["fail_at_ms"]))
    kernel.schedule_at(
        float(params["elect_at_ms"]),
        # Every honest candidate is excluded: the adversarial premise is
        # that the skewed replica wins the failover.
        lambda: simulator.elect_new_producer(
            exclude=tuple(peer for peer in simulator.anchor_ids if peer != skewed_id)
        ),
        label="skewed-failover",
    )
    post_base = float(params["elect_at_ms"]) + 40.0
    for index in range(int(params["post_events"])):
        kernel.schedule_at(
            post_base + index * float(params["entry_gap_ms"]),
            lambda index=index: simulator.submit_entry(
                "ALPHA", _login("ALPHA", 100 + index), anchor_id=skewed_id
            ),
            label=f"post-entry-{index}",
        )
    horizon = post_base + float(params["post_events"]) * float(params["entry_gap_ms"]) + float(
        params["settle_ms"]
    )
    kernel.run_until(horizon)
    honest_ticks = int(kernel.now)
    temp_reference = checkpoints.get("temp_reference")
    temp_gone = (
        temp_reference is not None
        and simulator.anchors[skewed_id].chain.find_entry(temp_reference) is None
    )
    head = simulator.anchors[skewed_id].chain.head
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "first_producer": first_producer,
        "final_producer": simulator.producer_id,
        "head_timestamp": head.timestamp,
        "honest_clock_ticks": honest_ticks,
        "temp_expired": temp_gone,
        "premature_expiry": bool(temp_gone and honest_ticks < ttl),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


# --------------------------------------------------------------------- #
# Workload scenarios (repro.workloads.driver)
# --------------------------------------------------------------------- #
#
# Each scenario runs one of the paper's application workload generators
# through a ScenarioWorkloadDriver: the workload's events receive virtual
# arrival times (workloads.arrival_schedule) and execute against a
# RemoteLedgerClient on a kernel-backed anchor deployment — so deletion
# latency, marker shifts, temporary-entry expiry and anti-entropy interact
# with message latency, loss and partitions on *simulated* time.  The
# resulting reports carry per-workload counters under report["workloads"].


def _workload_chain_config(params: dict[str, Any]) -> ChainConfig:
    """The paper's evaluation config plus the scenario's idle interval."""
    return dataclasses.replace(
        ChainConfig.paper_evaluation(),
        empty_block_interval=int(params["empty_block_interval_ticks"]),
    )


def _book_idle_heartbeat(
    simulator: NetworkSimulator, params: dict[str, Any], *, until: float
) -> None:
    """Ask the producer periodically whether the idle interval elapsed.

    The heartbeat stands in for the operator's empty-block cron job
    (Section IV-D3): whether an empty block actually appears is decided by
    simulated time, and empty blocks are what keep delayed deletions moving
    once workload traffic has ended.
    """
    kernel = simulator.kernel
    assert kernel is not None
    kernel.every(
        float(params["idle_heartbeat_ms"]),
        lambda: simulator.producer.chain.idle_tick(),
        label="idle-heartbeat",
        until=until,
    )


def _drive_traffic(
    simulator: NetworkSimulator,
    params: dict[str, Any],
    build_workload: Callable[[int], Any],
    **drive_kwargs: Any,
) -> Any:
    """One closed-loop driver or an open-loop fleet, per ``n_clients``.

    ``build_workload(client_index)`` constructs client ``client_index``'s
    pre-seeded workload (scenarios derive sub-seeds with
    :func:`~repro.workloads.fleet.derive_client_seed`, whose client 0 keeps
    the base seed).  ``n_clients == 1`` — every workload scenario's default —
    takes the original :meth:`~NetworkSimulator.drive_workload` path
    unchanged, so single-client runs stay byte-identical to the catalogue
    before fleets existed; ``n_clients > 1`` builds an open-loop
    :class:`~repro.workloads.fleet.FleetDriver` under the default in-flight
    budget.
    """
    n_clients = int(params.get("n_clients", 1))
    if n_clients < 1:
        raise ValueError("n_clients must be at least 1")
    if n_clients == 1:
        return simulator.drive_workload(build_workload(0), **drive_kwargs)
    return simulator.drive_fleet(
        [build_workload(client_index) for client_index in range(n_clients)],
        **drive_kwargs,
    )


def _set_submit_hook(driver: Any, params: dict[str, Any], hook: Callable[..., None]) -> None:
    """Install a client-indexed submit hook on either driver kind.

    Scenario hooks take ``(client_index, position, event, receipt)``; the
    single-driver path adapts them to its ``(position, event, receipt)``
    signature with client index 0.
    """
    if int(params.get("n_clients", 1)) == 1:
        driver.on_submitted = (
            lambda position, event, receipt: hook(0, position, event, receipt)
        )
    else:
        driver.on_submitted = hook


def _traffic_deletion(
    driver: Any,
    params: dict[str, Any],
    client_index: int,
    target: Any,
    author: str,
    *,
    reason: str = "",
) -> Any:
    """Route an application-level deletion through the issuing client."""
    if int(params.get("n_clients", 1)) == 1:
        return driver.request_deletion(target, author, reason=reason)
    return driver.request_deletion(
        target, author, reason=reason, client_index=client_index
    )


@scenario(
    "gdpr-erasure",
    "Art. 17 erasure requests trail a personal-data stream; deletion latency in virtual ms",
    defaults={
        "anchors": 3,
        "records": 60,
        "subjects": 12,
        "erasure_probability": 0.35,
        "min_delay": 3,
        "max_delay": 25,
        "mean_gap_ms": 25.0,
        "erasure_lag_ms": 40.0,
        "settle_ms": 900.0,
        "idle_heartbeat_ms": 50.0,
        "empty_block_interval_ticks": 120,
        "fanout": 2,
        "n_clients": 1,
    },
    smoke={"records": 24, "settle_ms": 600.0},
)
def _gdpr_erasure(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """Section II's erasure timeline on virtual time.

    Personal-data records arrive on the workload's seeded timeline; each
    data subject's Art. 17 request fires at its scheduled stream position
    (requests whose position falls after the stream are flushed once the
    stream ends).  The idle heartbeat keeps summarisation cycles running
    after traffic stops, so every approved erasure is eventually *executed*
    — and the report's virtual-millisecond latency histogram captures the
    paper's delayed-deletion bound (Section IV-D3) under real message delay.
    """
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=_workload_chain_config(params),
    )
    kernel = simulator.kernel
    assert kernel is not None
    n_clients = int(params["n_clients"])

    def build_workload(client_index: int) -> GdprErasureWorkload:
        return GdprErasureWorkload(
            num_records=int(params["records"]),
            num_subjects=int(params["subjects"]),
            erasure_probability=float(params["erasure_probability"]),
            min_delay=int(params["min_delay"]),
            max_delay=int(params["max_delay"]),
            seed=derive_client_seed(seed + 17, client_index),
        )

    driver = _drive_traffic(
        simulator,
        params,
        build_workload,
        mean_gap_ms=float(params["mean_gap_ms"]),
        start_at_ms=20.0,
    )
    # Per-client application state: every fleet client runs its own
    # derived-seed record stream with its own erasure schedule.
    workloads = [driver.workload] if n_clients == 1 else driver.workloads
    subjects = [
        {case.record_index: case.subject for case in workload.cases()}
        for workload in workloads
    ]
    erasures_due = [workload.erasure_schedule() for workload in workloads]
    references: list[dict[int, Any]] = [{} for _ in workloads]
    flushed: list[tuple[int, int]] = []

    def erase(client_index: int, record_index: int) -> None:
        reference = references[client_index].get(record_index)
        if reference is not None:
            _traffic_deletion(
                driver,
                params,
                client_index,
                reference,
                subjects[client_index][record_index],
                reason="Art. 17 erasure request",
            )

    def on_submitted(client_index: int, position: int, event: Any, receipt: Any) -> None:
        if receipt.ok and receipt.reference is not None:
            references[client_index][int(event.data["record_index"])] = receipt.reference
        for due in erasures_due[client_index].get(position, []):
            erase(client_index, due)

    def flush_late_erasures() -> None:
        # Erasure positions beyond the stream: the data subjects come back
        # after the write traffic ended and still exercise their right.
        for client_index, workload in enumerate(workloads):
            for position in sorted(erasures_due[client_index]):
                if position >= workload.num_records:
                    for due in sorted(erasures_due[client_index][position]):
                        flushed.append((client_index, due))
                        erase(client_index, due)

    completion: dict[str, float] = {}

    def after_traffic() -> None:
        # Anchored at *actual* completion: under backlog (arrivals faster
        # than the service round trip) traffic finishes past the nominal
        # horizon, and late erasures / settle heartbeats must follow it.
        completion["at_ms"] = kernel.now
        kernel.schedule(
            float(params["erasure_lag_ms"]), flush_late_erasures, label="late-erasures"
        )
        _book_idle_heartbeat(
            simulator, params, until=kernel.now + float(params["settle_ms"])
        )

    _set_submit_hook(driver, params, on_submitted)
    driver.on_finished = after_traffic
    driver.schedule()
    kernel.run()
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "erasures_due": sum(
            len(due) for per_client in erasures_due for due in per_client.values()
        ),
        "erasures_after_stream": len(flushed),
        "traffic_completed_at_ms": round(completion["at_ms"], 6),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "supply-chain-recall",
    "product stages with best-before expiry on simulated time; a regulator recall mid-stream",
    defaults={
        "anchors": 3,
        "products": 16,
        "stations": 5,
        "shelf_life_ticks": 40,
        "expiry_ms_per_tick": 12.0,
        "recall_rate": 0.25,
        "mean_gap_ms": 12.0,
        "settle_ms": 1400.0,
        "idle_heartbeat_ms": 60.0,
        "empty_block_interval_ticks": 150,
        "fanout": 2,
        "n_clients": 1,
    },
    smoke={"products": 8, "settle_ms": 900.0},
)
def _supply_chain_recall(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """Industry-4.0 product tracking (Section VI) under simulated time.

    Every stage entry carries a best-before bound expressed in workload
    ticks; the driver rescales it into virtual milliseconds
    (``expiry_ms_per_tick``) so expiry is decided by the same simulated
    clock every replica reads — expired products vanish from the chain
    without any deletion request.  A regulator (holder of the quorum master
    signature) additionally recalls a seeded fraction of products the
    moment their final stage ships, deleting the recalled product's whole
    trail on request.
    """
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=_workload_chain_config(params),
        admins=("REGULATOR",),
    )
    kernel = simulator.kernel
    assert kernel is not None
    n_clients = int(params["n_clients"])

    def build_workload(client_index: int) -> SupplyChainWorkload:
        return SupplyChainWorkload(
            num_products=int(params["products"]),
            shelf_life_ticks=int(params["shelf_life_ticks"]),
            stations=int(params["stations"]),
            seed=derive_client_seed(seed + 29, client_index),
        )

    driver = _drive_traffic(
        simulator,
        params,
        build_workload,
        mean_gap_ms=float(params["mean_gap_ms"]),
        start_at_ms=20.0,
        expiry_ms_per_tick=float(params["expiry_ms_per_tick"]),
    )
    workloads = [driver.workload] if n_clients == 1 else driver.workloads
    # Per-client recall draws and reference maps: fleet clients ship
    # identically-named product ids, so everything is keyed by client.
    recalled: list[set[str]] = []
    for client_index, workload in enumerate(workloads):
        recall_rng = random.Random(derive_client_seed(seed + 31, client_index))
        recalled.append(
            {
                f"PRODUCT-{index:05d}"
                for index in range(workload.num_products)
                if recall_rng.random() < float(params["recall_rate"])
            }
        )
    product_refs: list[dict[str, list[Any]]] = [{} for _ in workloads]
    recall_requests = 0
    final_stage = workloads[0].stages[-1]

    def on_submitted(client_index: int, position: int, event: Any, receipt: Any) -> None:
        nonlocal recall_requests
        product = event.data.get("product")
        if product is None or not receipt.ok or receipt.reference is None:
            return
        product_refs[client_index].setdefault(product, []).append(receipt.reference)
        if product in recalled[client_index] and event.data.get("stage") == final_stage:
            for reference in product_refs[client_index][product]:
                recall_requests += 1
                _traffic_deletion(
                    driver,
                    params,
                    client_index,
                    reference,
                    "REGULATOR",
                    reason=f"recall of {product}",
                )

    completion: dict[str, float] = {}

    def after_traffic() -> None:
        completion["at_ms"] = kernel.now
        _book_idle_heartbeat(
            simulator, params, until=kernel.now + float(params["settle_ms"])
        )

    _set_submit_hook(driver, params, on_submitted)
    driver.on_finished = after_traffic
    driver.schedule()
    kernel.run()
    # Which product trails are fully gone (expired or recalled) is read
    # through the client *before* finalising, so the lookups' virtual time
    # is part of the deterministic run.
    vanished = sum(
        1
        for refs_by_product in product_refs
        for product, refs in sorted(refs_by_product.items())
        if all(driver.client.find_entry(reference) is None for reference in refs)
    )
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "recalled_products": sorted(recalled[0])
        if n_clients == 1
        else [sorted(per_client) for per_client in recalled],
        "recall_requests": recall_requests,
        "products_fully_vanished": vanished,
        "traffic_completed_at_ms": round(completion["at_ms"], 6),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "vehicle-telemetry",
    "workshop telemetry on a lossy network; decommissioning triggers authority deletions",
    defaults={
        "anchors": 4,
        "vehicles": 10,
        "events_per_vehicle": 6,
        "decommission_fraction": 0.4,
        "workshops": 4,
        "mean_gap_ms": 18.0,
        "loss_rate": 0.03,
        "anti_entropy_interval_ms": 120.0,
        "settle_ms": 1000.0,
        "idle_heartbeat_ms": 60.0,
        "empty_block_interval_ticks": 140,
        "fanout": 2,
        "n_clients": 1,
    },
    smoke={"vehicles": 6, "events_per_vehicle": 4, "settle_ms": 800.0},
)
def _vehicle_telemetry(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """Vehicle life-cycle documentation (Section VI) on a lossy network.

    Workshops submit maintenance telemetry; when the registration authority
    decommissions a vehicle it requests deletion of the vehicle's entire
    maintenance trail (the admin path of Section IV-D1).  The transport
    randomly loses messages, so replicas genuinely miss announcements —
    periodic anti-entropy digests detect and repair the gaps, and the final
    report shows convergence despite the loss.
    """
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=_workload_chain_config(params),
        loss_rate=float(params["loss_rate"]),
        admins=("REGISTRATION-AUTHORITY",),
    )
    kernel = simulator.kernel
    assert kernel is not None
    n_clients = int(params["n_clients"])

    def build_workload(client_index: int) -> VehicleLifecycleWorkload:
        return VehicleLifecycleWorkload(
            num_vehicles=int(params["vehicles"]),
            events_per_vehicle=int(params["events_per_vehicle"]),
            decommission_fraction=float(params["decommission_fraction"]),
            workshops=int(params["workshops"]),
            seed=derive_client_seed(seed + 41, client_index),
        )

    driver = _drive_traffic(
        simulator,
        params,
        build_workload,
        mean_gap_ms=float(params["mean_gap_ms"]),
        start_at_ms=20.0,
    )
    # Fleet clients reuse the same VIN namespace, so reference maps are
    # keyed by (client, vin).
    vehicle_refs: dict[tuple[int, str], list[Any]] = {}
    decommissioned: list[str] = []

    def on_submitted(client_index: int, position: int, event: Any, receipt: Any) -> None:
        vin = event.data.get("vin")
        if vin is None or not receipt.ok or receipt.reference is None:
            return
        if event.data.get("maintenance") == "decommissioned":
            decommissioned.append(vin if n_clients == 1 else f"c{client_index}:{vin}")
            for reference in vehicle_refs.get((client_index, vin), []):
                _traffic_deletion(
                    driver,
                    params,
                    client_index,
                    reference,
                    "REGISTRATION-AUTHORITY",
                    reason=f"{vin} decommissioned",
                )
        else:
            vehicle_refs.setdefault((client_index, vin), []).append(receipt.reference)

    completion: dict[str, float] = {}

    def after_traffic() -> None:
        completion["at_ms"] = kernel.now
        settle = float(params["settle_ms"])
        _book_idle_heartbeat(simulator, params, until=kernel.now + settle)
        # Anti-entropy outlives the idle heartbeat by a few quiet rounds:
        # while the heartbeat runs, empty blocks keep moving the producer's
        # head, so a straggler's pull can land perpetually one block short —
        # the quiet tail lets the last rounds converge on a stationary head.
        quiet = 4 * float(params["anti_entropy_interval_ms"])
        simulator.enable_anti_entropy(
            interval_ms=float(params["anti_entropy_interval_ms"]),
            until=kernel.now + settle + quiet,
        )

    _set_submit_hook(driver, params, on_submitted)
    driver.on_finished = after_traffic
    driver.schedule()
    kernel.run()
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "decommissioned_vehicles": decommissioned,
        "traffic_completed_at_ms": round(completion["at_ms"], 6),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "coin-economy",
    "a coin-transfer graph through a partition and heal; lost-wallet outputs reclaimed after",
    defaults={
        "anchors": 4,
        "transfers": 40,
        "wallets": 8,
        "spend_probability": 0.6,
        "lost_wallet_fraction": 0.25,
        "mean_gap_ms": 25.0,
        "partition_at_ms": 300.0,
        "heal_at_ms": 700.0,
        "anti_entropy_interval_ms": 110.0,
        "recovery_lag_ms": 150.0,
        "settle_ms": 900.0,
        "idle_heartbeat_ms": 60.0,
        "empty_block_interval_ticks": 130,
        "fanout": 2,
        "n_clients": 1,
    },
    smoke={"transfers": 18, "partition_at_ms": 150.0, "heal_at_ms": 400.0, "settle_ms": 700.0},
)
def _coin_economy(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """Cryptocurrency transfers (Sections I and V-A) through a partition.

    The transfer graph arrives on its seeded timeline while a partition
    splits the quorum mid-traffic; clients keep submitting (the producer
    stays reachable) and the cut-off replicas converge through anti-entropy
    after the heal.  Once traffic ends, a recovery admin reclaims the
    outputs parked on lost wallets — transfers received by a lost wallet
    and never spent — modelling Section V-A's "coins out of the monetary
    cycle" discussion.
    """
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=_workload_chain_config(params),
        admins=("RECOVERY",),
    )
    kernel = simulator.kernel
    assert kernel is not None
    n_clients = int(params["n_clients"])

    def build_workload(client_index: int) -> CoinTransferWorkload:
        return CoinTransferWorkload(
            num_transfers=int(params["transfers"]),
            num_wallets=int(params["wallets"]),
            spend_probability=float(params["spend_probability"]),
            lost_wallet_fraction=float(params["lost_wallet_fraction"]),
            seed=derive_client_seed(seed + 53, client_index),
        )

    driver = _drive_traffic(
        simulator,
        params,
        build_workload,
        mean_gap_ms=float(params["mean_gap_ms"]),
        start_at_ms=20.0,
    )
    workloads = [driver.workload] if n_clients == 1 else driver.workloads
    # Per-client economies: wallet names and transfer ids repeat across
    # fleet clients, so lost-wallet bookkeeping is keyed by client.
    lost = [workload.lost_wallets() for workload in workloads]
    reclaimable: list[tuple[int, int]] = []
    for client_index, workload in enumerate(workloads):
        transfers = workload.transfers()
        spent_ids = {
            transfer.spends for transfer in transfers if transfer.spends is not None
        }
        reclaimable.extend(
            (client_index, transfer.transfer_id)
            for transfer in transfers
            if transfer.receiver in lost[client_index]
            and transfer.transfer_id not in spent_ids
        )
    transfer_refs: dict[tuple[int, int], Any] = {}

    def on_submitted(client_index: int, position: int, event: Any, receipt: Any) -> None:
        if receipt.ok and receipt.reference is not None:
            transfer_refs[(client_index, int(event.data["transfer_id"]))] = (
                receipt.reference
            )

    ids = simulator.anchor_ids
    near, far = ids[: len(ids) // 2], ids[len(ids) // 2 :]
    simulator.schedule_partition(near, far, float(params["partition_at_ms"]))
    simulator.schedule_heal(float(params["heal_at_ms"]))
    recovered: list[int] = []

    def reclaim_lost_outputs() -> None:
        for client_index, transfer_id in reclaimable:
            reference = transfer_refs.get((client_index, transfer_id))
            if reference is None:
                continue
            receipt = _traffic_deletion(
                driver,
                params,
                client_index,
                reference,
                "RECOVERY",
                reason="lost-key recovery (Section V-A)",
            )
            if receipt.approved:
                recovered.append(transfer_id)

    completion: dict[str, float] = {}

    def after_traffic() -> None:
        completion["at_ms"] = kernel.now
        settle = float(params["settle_ms"])
        kernel.schedule(
            float(params["recovery_lag_ms"]),
            reclaim_lost_outputs,
            label="lost-wallet-recovery",
        )
        _book_idle_heartbeat(simulator, params, until=kernel.now + settle)
        # Quiet convergence tail, as in vehicle-telemetry: the last
        # anti-entropy rounds run against a stationary head.
        quiet = 4 * float(params["anti_entropy_interval_ms"])
        simulator.enable_anti_entropy(
            interval_ms=float(params["anti_entropy_interval_ms"]),
            until=kernel.now + settle + quiet,
        )

    _set_submit_hook(driver, params, on_submitted)
    driver.on_finished = after_traffic
    driver.schedule()
    kernel.run()
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "lost_wallets": sorted(lost[0])
        if n_clients == 1
        else [sorted(per_client) for per_client in lost],
        "reclaimable_outputs": len(reclaimable),
        "recovered_outputs": len(recovered),
        "traffic_completed_at_ms": round(completion["at_ms"], 6),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "fleet-saturation",
    "an open-loop client fleet drives one deployment to saturation; honest latency percentiles",
    defaults={
        "anchors": 3,
        "n_clients": 20,
        "events_per_client": 6,
        "users_per_client": 3,
        "mean_gap_ms": 400.0,
        "in_flight_budget": 8,
        "overload_policy": "queue",
        "settle_ms": 400.0,
        "idle_heartbeat_ms": 60.0,
        "empty_block_interval_ticks": 150,
        "fanout": 2,
    },
    smoke={"n_clients": 8, "events_per_client": 4, "settle_ms": 300.0},
)
def _fleet_saturation(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """An open-loop login-audit fleet against a single deployment.

    N seeded clients issue requests at their scheduled arrival times
    regardless of completion — the offered load scales with
    ``n_clients / mean_gap_ms`` while the service rate stays fixed, so
    raising ``n_clients`` pushes the deployment through its knee.  Below
    the knee request latency is the transport round trip; past it, the
    shared in-flight budget either queues (``overload_policy=queue`` —
    latency grows with backlog) or sheds (``shed`` — loss grows instead),
    and the fleet percentiles under ``report["workloads"]`` record which.
    `benchmarks/bench_fleet_saturation.py` sweeps ``n_clients`` over this
    scenario's engine to locate the knee.
    """
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=_workload_chain_config(params),
    )
    kernel = simulator.kernel
    assert kernel is not None
    n_clients = int(params["n_clients"])
    if n_clients < 1:
        raise ValueError("n_clients must be at least 1")
    workloads = [
        LoginAuditWorkload(
            num_events=int(params["events_per_client"]),
            num_users=int(params["users_per_client"]),
            # No stream deletions: login-audit deletion targets are
            # position-estimated block numbers, which interleaving breaks —
            # deletion-latency percentiles under fleets are exercised by
            # `gdpr-erasure` with `n_clients > 1` (receipt references).
            deletion_rate=0.0,
            seed=derive_client_seed(seed + 61, client_index),
        )
        for client_index in range(n_clients)
    ]
    driver = simulator.drive_fleet(
        workloads,
        mean_gap_ms=float(params["mean_gap_ms"]),
        start_at_ms=20.0,
        in_flight_budget=int(params["in_flight_budget"]),
        policy=str(params["overload_policy"]),
    )

    completion: dict[str, float] = {}

    def after_traffic() -> None:
        completion["at_ms"] = kernel.now
        _book_idle_heartbeat(
            simulator, params, until=kernel.now + float(params["settle_ms"])
        )

    driver.on_finished = after_traffic
    driver.schedule()
    kernel.run()
    report = simulator.finalize()
    fleet = report.workloads[driver.workload.name]
    return {
        "report": report.as_dict(),
        "offered_load_per_s": round(
            n_clients / float(params["mean_gap_ms"]) * 1000.0, 6
        ),
        "throughput_per_s": fleet["throughput_per_s"],
        "request_p99_ms": fleet["request_latency_ms"]["p99"],
        "shed": fleet["shed"],
        "in_flight_peak": fleet["in_flight_peak"],
        "traffic_completed_at_ms": round(completion["at_ms"], 6),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


class _TenantLoginWorkload(LoginAuditWorkload):
    """Per-client tenant namespacing for author-sharded fleets.

    ``fleet-saturation``'s clients all draw from the same three paper users,
    which under author sharding would pin the whole fleet to at most three
    shards.  Prefixing each client's users with its tenant id makes the
    author population scale with the fleet, so SHA-256 placement spreads the
    load across every shard.  Only the name strings change — arrival times,
    event kinds and message counts are identical, so the fleet's latency and
    throughput numbers stay comparable with ``fleet-saturation``.
    """

    def __init__(self, *, tenant: int, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.tenant = tenant

    def user(self, index: int) -> str:
        return f"T{self.tenant:03d}:{super().user(index)}"


@scenario(
    "sharded-fleet",
    "the fleet against K author-sharded deployments on one clock; erasures fan out cross-shard",
    defaults={
        "shards": 2,
        "anchors": 3,
        "n_clients": 20,
        "events_per_client": 6,
        "users_per_client": 3,
        "mean_gap_ms": 400.0,
        "in_flight_budget": 8,
        "overload_policy": "queue",
        "settle_ms": 400.0,
        "idle_heartbeat_ms": 60.0,
        "empty_block_interval_ticks": 150,
        "fanout": 2,
        "erase_authors": 2,
    },
    smoke={"n_clients": 8, "events_per_client": 4, "settle_ms": 300.0},
)
def _sharded_fleet(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """The ``fleet-saturation`` fleet against K sharded deployments.

    K independent anchor deployments share one :class:`EventKernel` — each
    with its own transport, latency model and gossip overlay, joined only by
    virtual time — behind a single
    :class:`~repro.service.sharding.ShardRouter` that hashes authors onto
    shards.  The fleet's per-shard service lanes overlap round trips across
    shards, so the aggregate service rate (and the ~47 req/s single-producer
    knee) scales roughly with K while per-request latency stays the single
    deployment's round trip.  After traffic, ``erase_authors`` GDPR
    Article 17 requests exercise the cross-shard deletion routing: each fans
    out to exactly the shards holding that author's entries.

    Shard 0 is built with ``fleet-saturation``'s exact seed offsets, so at
    ``shards=1`` (and ``erase_authors=0``) this scenario reproduces the
    single-deployment numbers; ``benchmarks/bench_shard_scaling.py`` pins
    that parity and sweeps K for the knee shift.
    """
    shard_count = int(params["shards"])
    if shard_count < 1:
        raise ScenarioError("shards must be at least 1")
    n_clients = int(params["n_clients"])
    if n_clients < 1:
        raise ValueError("n_clients must be at least 1")
    anchors = int(params["anchors"])
    fanout = int(params["fanout"])
    # Shard 0 reuses _deployment verbatim — kernel seed, latency seed+1,
    # overlay seed+2, loss seed+3 — the K=1 parity anchor.  Further shards
    # join the same kernel under hash-mixed per-shard seeds.
    simulators = [
        _deployment(
            seed, anchors=anchors, fanout=fanout, config=_workload_chain_config(params)
        )
    ]
    kernel = simulators[0].kernel
    assert kernel is not None
    for shard in range(1, shard_count):
        shard_seed = derive_client_seed(seed, shard)
        simulators.append(
            NetworkSimulator(
                anchor_count=anchors,
                config=_workload_chain_config(params),
                latency=LatencyModel(seed=shard_seed + 1),
                kernel=kernel,
                gossip=_overlay("clique", anchors, fanout=fanout, seed=shard_seed + 2),
                loss_seed=shard_seed + 3,
            )
        )
    router = ShardRouter(
        [simulator.ledger_client() for simulator in simulators],
        clock=lambda: kernel.now,
    )
    workloads = [
        _TenantLoginWorkload(
            tenant=client_index,
            num_events=int(params["events_per_client"]),
            num_users=int(params["users_per_client"]),
            deletion_rate=0.0,
            seed=derive_client_seed(seed + 61, client_index),
        )
        for client_index in range(n_clients)
    ]
    # Every fleet client shares the one router; the lane callback keys the
    # driver's overlap machinery to the author's home shard, so requests
    # bound for different shards proceed concurrently in virtual time.
    driver = simulators[0].drive_fleet(
        workloads,
        mean_gap_ms=float(params["mean_gap_ms"]),
        start_at_ms=20.0,
        in_flight_budget=int(params["in_flight_budget"]),
        policy=str(params["overload_policy"]),
        clients=[router] * n_clients,
        lane_of=lambda arrival: router.shard_of(arrival.event.author),
        lane_count=shard_count,
    )

    completion: dict[str, float] = {}
    erasures: list[dict[str, Any]] = []

    def after_traffic() -> None:
        completion["at_ms"] = kernel.now
        # Cross-shard right-to-be-forgotten sweep: the first authors of the
        # sorted index, each routed to exactly the shards holding them.
        for author in router.index.authors()[: int(params["erase_authors"])]:
            receipt = router.request_erasure(author, reason="Art. 17 sweep")
            erasures.append(
                {
                    "author": author,
                    "shards": list(receipt.shards),
                    "entries_targeted": receipt.entries_targeted,
                    "approved": receipt.approved,
                    "effort_units": receipt.effort_units,
                }
            )
        until = kernel.now + float(params["settle_ms"])
        for simulator in simulators:
            _book_idle_heartbeat(simulator, params, until=until)

    driver.on_finished = after_traffic
    driver.schedule()
    kernel.run()
    reports = [simulator.finalize() for simulator in simulators]
    report_dict = reports[0].as_dict()
    fleet = report_dict["workloads"][driver.workload.name]
    # Post-finalize, so the merged statistics round trips stay out of the
    # kernel/transport counters (K=1 parity with fleet-saturation).
    merged = router.statistics()
    per_shard_latency = router.latency_report()
    slowest = None
    for name in sorted(per_shard_latency):
        if not has_samples(per_shard_latency[name]):
            continue  # idle shard: empty-window shape, not zero latency
        if slowest is None or per_shard_latency[name]["p50"] > per_shard_latency[slowest]["p50"]:
            slowest = name
    report_dict["shards"] = {
        "count": shard_count,
        "aggregate": {
            "service_latency_ms": router.aggregate_latency(),
            "living_blocks": merged["living_blocks"],
            "byte_size": merged["byte_size"],
            "total_blocks_created": merged["total_blocks_created"],
        },
        "slowest_shard": slowest,
        "routing": merged["routing"],
        "per_shard": {
            f"shard-{shard}": {
                "service_latency_ms": per_shard_latency[f"shard-{shard}"],
                "submitted": router.submitted_per_shard[shard],
                "deletions": router.deletions_per_shard[shard],
                "living_blocks": merged["per_shard"][f"shard-{shard}"]["living_blocks"],
                "total_blocks_created": merged["per_shard"][f"shard-{shard}"][
                    "total_blocks_created"
                ],
                "heads": simulators[shard].all_heads(),
                "replicas_identical": simulators[shard].replicas_identical(),
            }
            for shard in range(shard_count)
        },
    }
    return {
        "report": report_dict,
        "offered_load_per_s": round(
            n_clients / float(params["mean_gap_ms"]) * 1000.0, 6
        ),
        "throughput_per_s": fleet["throughput_per_s"],
        "request_p99_ms": fleet["request_latency_ms"]["p99"],
        "shed": fleet["shed"],
        "in_flight_peak": fleet["in_flight_peak"],
        "traffic_completed_at_ms": round(completion["at_ms"], 6),
        "erasures": erasures,
        "heads": {
            f"shard-{shard}": simulators[shard].all_heads()
            for shard in range(shard_count)
        },
        "replicas_identical": all(
            simulator.replicas_identical() for simulator in simulators
        ),
    }
