"""Named simulation scenarios on the deterministic event kernel.

The paper's evaluation ran hand-crafted fault experiments against a live
CORBA deployment (Section V).  This module packages the interesting runs as
a *catalogue of named scenarios*: each entry builds a kernel-backed
deployment, books traffic and faults on the virtual clock, drains the
simulation and returns a plain-dict result.

Determinism guarantee: a scenario is a pure function of ``(name, seed,
parameters)``.  Every random choice — latency samples, event tie-breaking,
gossip fan-out selection, workload contents — draws from seeded generators,
and virtual time only advances through the kernel, so two runs with the same
inputs produce byte-identical result dictionaries (pinned by
``tests/test_scenarios.py``).

Run from the command line::

    python -m repro simulate --list
    python -m repro simulate --scenario partition-and-heal --seed 11
    python -m repro simulate --scenario failover-storm --smoke

Catalogue
---------
* ``bursty-traffic``        — traffic bursts separated by idle periods; empty
  blocks emerge from simulated idle time (Section IV-D3).
* ``node-churn``            — replicas leave and rejoin; catch-up restores
  convergence (Section V-B4 isolation recovery).
* ``partition-and-heal``    — a scheduled partition delays gossip delivery;
  in-flight messages arrive after the heal.
* ``failover-storm``        — the producer dies; the quorum elects the most
  up-to-date replica over delayed ballots and traffic resumes.
* ``geo-latency-profiles``  — the same workload under increasing cross-region
  latency penalties.
* ``gossip-vs-broadcast``   — message cost of overlay gossip versus full
  broadcast for the same workload.
* ``replica-bootstrap``     — a node rejoins behind a genesis-marker shift on
  a lossy network; anti-entropy digests trigger a wire snapshot bootstrap
  and the deployment converges without any scenario-level fallback.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.config import ChainConfig
from repro.core.errors import SelectiveDeletionError
from repro.network.gossip import GossipOverlay, GossipTopology
from repro.network.kernel import EventKernel
from repro.network.message import MessageKind, reset_message_counter
from repro.network.simulator import NetworkSimulator
from repro.network.transport import GeoLatencyModel, LatencyModel

#: A scenario body: ``(seed, params) -> result-extras dict``.
ScenarioFn = Callable[[int, dict[str, Any]], dict[str, Any]]


class ScenarioError(SelectiveDeletionError):
    """Raised for unknown scenario names or invalid parameters."""


@dataclass(frozen=True)
class Scenario:
    """One catalogue entry."""

    name: str
    description: str
    defaults: dict[str, Any]
    smoke: dict[str, Any]
    fn: ScenarioFn


SCENARIOS: dict[str, Scenario] = {}


def scenario(
    name: str,
    description: str,
    *,
    defaults: dict[str, Any],
    smoke: Optional[dict[str, Any]] = None,
) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario under ``name`` with default / smoke parameters."""

    def register(fn: ScenarioFn) -> ScenarioFn:
        SCENARIOS[name] = Scenario(
            name=name,
            description=description,
            defaults=dict(defaults),
            smoke=dict(smoke or {}),
            fn=fn,
        )
        return fn

    return register


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def scenario_catalogue() -> list[Scenario]:
    """All registered scenarios, sorted by name."""
    return [SCENARIOS[name] for name in scenario_names()]


def run_scenario(
    name: str, *, seed: int = 7, smoke: bool = False, **overrides: Any
) -> dict[str, Any]:
    """Run a named scenario and return its plain-dict result.

    ``smoke`` applies the scenario's tiny-parameter overrides (CI smoke
    jobs); explicit ``overrides`` win over both defaults and smoke values.
    The result is byte-identical across runs for the same inputs.
    """
    entry = SCENARIOS.get(name)
    if entry is None:
        raise ScenarioError(f"unknown scenario {name!r}; available: {scenario_names()}")
    params = dict(entry.defaults)
    if smoke:
        params.update(entry.smoke)
    unknown = set(overrides) - set(params)
    if unknown:
        raise ScenarioError(f"unknown parameters for {name!r}: {sorted(unknown)}")
    params.update(overrides)
    # Message ids are process-global; rewind them so byte accounting is
    # identical no matter what ran earlier in the process.
    reset_message_counter()
    result = entry.fn(seed, params)
    return {
        "scenario": name,
        "seed": seed,
        "smoke": smoke,
        "parameters": {key: params[key] for key in sorted(params)},
        **result,
    }


# --------------------------------------------------------------------- #
# Deployment helpers
# --------------------------------------------------------------------- #


def _anchor_ids(count: int) -> list[str]:
    return [f"anchor-{index}" for index in range(count)]


def _overlay(kind: str, anchors: int, *, fanout: int, seed: int) -> Optional[GossipOverlay]:
    """Build the gossip overlay named by ``kind`` (``"none"`` disables it)."""
    ids = _anchor_ids(anchors)
    if kind == "none":
        return None
    if kind == "clique":
        topology = GossipTopology.fully_connected(ids)
    elif kind == "ring":
        topology = GossipTopology.ring(ids)
    elif kind == "random-regular":
        topology = GossipTopology.random_regular(ids, degree=max(fanout + 1, 3), seed=seed)
    else:
        raise ScenarioError(f"unknown overlay kind {kind!r}")
    return GossipOverlay(topology, fanout=fanout, seed=seed)


def _deployment(
    seed: int,
    *,
    anchors: int,
    overlay: str = "clique",
    fanout: int = 2,
    latency: Optional[LatencyModel] = None,
    config: Optional[ChainConfig] = None,
    loss_rate: float = 0.0,
) -> NetworkSimulator:
    """A kernel-backed deployment with independently seeded randomness.

    The default chain config keeps every block (no retention limit): most
    fault scenarios rely on isolated replicas *catching up* over the wire,
    which is only possible while the missed normal blocks are still living.
    ``replica-bootstrap`` runs the paper's evaluation config instead, so a
    marker shift opens a gap that only the snapshot bootstrap can close.
    """
    kernel = EventKernel(seed=seed)
    return NetworkSimulator(
        anchor_count=anchors,
        config=config or ChainConfig(sequence_length=3),
        latency=latency or LatencyModel(seed=seed + 1),
        kernel=kernel,
        gossip=_overlay(overlay, anchors, fanout=fanout, seed=seed + 2),
        loss_rate=loss_rate,
        loss_seed=seed + 3,
    )


def _login(user: str, index: int) -> dict[str, str]:
    return {"D": f"Login {user} #{index}", "K": user, "S": f"sig_{user}"}


# --------------------------------------------------------------------- #
# Catalogue
# --------------------------------------------------------------------- #


@scenario(
    "bursty-traffic",
    "traffic bursts separated by idle periods; empty blocks emerge from simulated time",
    defaults={
        "anchors": 3,
        "bursts": 4,
        "burst_size": 5,
        "burst_gap_ms": 500.0,
        "entry_gap_ms": 8.0,
        "idle_heartbeat_ms": 40.0,
        "empty_block_interval_ticks": 120,
        "fanout": 2,
    },
    smoke={"bursts": 2, "burst_size": 2},
)
def _bursty_traffic(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    config = dataclasses.replace(
        ChainConfig.paper_evaluation(),
        empty_block_interval=int(params["empty_block_interval_ticks"]),
    )
    simulator = _deployment(
        seed, anchors=int(params["anchors"]), fanout=int(params["fanout"]), config=config
    )
    kernel = simulator.kernel
    assert kernel is not None
    users = ["ALPHA", "BRAVO", "CHARLIE"]
    for user in users:
        simulator.add_client(user)
    horizon = float(params["bursts"]) * float(params["burst_gap_ms"])
    # The idle heartbeat stands in for the operator's empty-block cron job:
    # it merely *asks* "has the idle interval elapsed?" — whether an empty
    # block appears is decided by simulated time (Section IV-D3).
    kernel.every(
        float(params["idle_heartbeat_ms"]),
        lambda: simulator.producer.chain.idle_tick(),
        label="idle-heartbeat",
        until=horizon,
    )
    for burst in range(int(params["bursts"])):
        base = burst * float(params["burst_gap_ms"]) + 30.0
        for index in range(int(params["burst_size"])):
            user = users[(burst + index) % len(users)]
            kernel.schedule_at(
                base + index * float(params["entry_gap_ms"]),
                lambda user=user, index=index: simulator.submit_entry(
                    user, _login(user, index)
                ),
                label=f"burst-{burst}-entry-{index}",
            )
    kernel.run_until(horizon)
    simulator.sync_check()
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "node-churn",
    "replicas leave and rejoin; catch-up restores convergence after each return",
    defaults={
        "anchors": 4,
        "events": 12,
        "entry_gap_ms": 60.0,
        "churn": [
            ["anchor-2", 120.0, 420.0],
            ["anchor-3", 360.0, 660.0],
        ],
        "fanout": 2,
    },
    smoke={"events": 6, "churn": [["anchor-2", 80.0, 220.0]]},
)
def _node_churn(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    simulator = _deployment(seed, anchors=int(params["anchors"]), fanout=int(params["fanout"]))
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    for node_id, down_at, up_at in params["churn"]:
        simulator.schedule_offline(node_id, float(down_at))
        simulator.schedule_online(node_id, float(up_at))
        # The returning node asks a reachable anchor for what it missed —
        # the recovery procedure of Section V-B4.
        kernel.schedule_at(
            float(up_at) + 30.0,
            lambda node_id=node_id: simulator.anchors[node_id].catch_up(simulator.producer_id),
            label=f"catch-up:{node_id}",
        )
    for index in range(int(params["events"])):
        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]),
            lambda index=index: simulator.submit_entry("ALPHA", _login("ALPHA", index)),
            label=f"entry-{index}",
        )
    report = simulator.finalize()
    # A replica that was offline at the end of traffic may still trail.
    for node_id, _, _ in params["churn"]:
        simulator.anchors[node_id].catch_up(simulator.producer_id)
    return {
        "report": report.as_dict(),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "partition-and-heal",
    "a scheduled partition delays delivery; in-flight messages arrive after the heal",
    defaults={
        "anchors": 4,
        "events": 10,
        "entry_gap_ms": 60.0,
        "partition_at_ms": 150.0,
        "heal_at_ms": 450.0,
        "latency_min_ms": 40.0,
        "latency_max_ms": 140.0,
        "fanout": 2,
    },
    smoke={"events": 5, "partition_at_ms": 80.0, "heal_at_ms": 260.0},
)
def _partition_and_heal(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        latency=LatencyModel(
            minimum_ms=float(params["latency_min_ms"]),
            maximum_ms=float(params["latency_max_ms"]),
            seed=seed + 1,
        ),
    )
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    ids = simulator.anchor_ids
    near, far = ids[: len(ids) // 2], ids[len(ids) // 2 :]
    simulator.schedule_partition(near, far, float(params["partition_at_ms"]))
    simulator.schedule_heal(float(params["heal_at_ms"]))
    snapshots: dict[str, dict[str, int]] = {}
    kernel.schedule_at(
        float(params["heal_at_ms"]) - 1.0,
        lambda: snapshots.__setitem__("at_heal", simulator.all_heads()),
        label="snapshot-at-heal",
    )
    for index in range(int(params["events"])):
        kernel.schedule_at(
            30.0 + index * float(params["entry_gap_ms"]),
            lambda index=index: simulator.submit_entry(
                "ALPHA", _login("ALPHA", index), anchor_id=simulator.producer_id
            ),
            label=f"entry-{index}",
        )
    # Gossip hops dropped *during* the partition are gone — and even a
    # near-side replica may sit on buffered out-of-order blocks whose
    # predecessors were lost because the overlay routed them through the
    # far side.  No scripted recovery: the periodic anti-entropy digests
    # alone detect the gaps after the heal and pull the missing blocks
    # (repro.sync.antientropy replacing the old scenario-level catch-up).
    horizon = float(params["heal_at_ms"]) + 400.0
    simulator.enable_anti_entropy(interval_ms=90.0, until=horizon)
    kernel.run_until(horizon)
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "heads_at_heal": snapshots.get("at_heal", {}),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "failover-storm",
    "the producer dies mid-traffic; the quorum elects a new one over delayed ballots",
    defaults={
        "anchors": 4,
        "events": 12,
        "entry_gap_ms": 50.0,
        "fail_at_ms": 200.0,
        "elect_at_ms": 280.0,
        "recover_at_ms": 640.0,
        "fanout": 2,
    },
    smoke={"events": 6, "fail_at_ms": 120.0, "elect_at_ms": 170.0, "recover_at_ms": 340.0},
)
def _failover_storm(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    simulator = _deployment(seed, anchors=int(params["anchors"]), fanout=int(params["fanout"]))
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    first_producer = simulator.producer_id
    simulator.schedule_offline(first_producer, float(params["fail_at_ms"]))
    kernel.schedule_at(
        float(params["elect_at_ms"]),
        lambda: simulator.elect_new_producer(exclude=(first_producer,)),
        label="failover-election",
    )
    simulator.schedule_online(first_producer, float(params["recover_at_ms"]))
    kernel.schedule_at(
        float(params["recover_at_ms"]) + 30.0,
        lambda: simulator.anchors[first_producer].catch_up(simulator.producer_id),
        label=f"catch-up:{first_producer}",
    )
    accepted: list[int] = []
    for index in range(int(params["events"])):
        def submit(index: int = index) -> None:
            response = simulator.submit_entry("ALPHA", _login("ALPHA", index))
            if not response.is_error:
                accepted.append(index)

        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]), submit, label=f"entry-{index}"
        )
    report = simulator.finalize()
    simulator.anchors[first_producer].catch_up(simulator.producer_id)
    return {
        "report": report.as_dict(),
        "first_producer": first_producer,
        "final_producer": simulator.producer_id,
        "entries_accepted": len(accepted),
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }


@scenario(
    "geo-latency-profiles",
    "the same workload under increasing cross-region latency penalties",
    defaults={
        "anchors": 4,
        "events": 8,
        "entry_gap_ms": 80.0,
        "profiles": [["single-region", 0.0], ["two-regions", 60.0], ["three-continents", 150.0]],
        "fanout": 2,
    },
    smoke={"events": 4},
)
def _geo_latency_profiles(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    region_names = ["eu", "us", "ap"]
    anchors = int(params["anchors"])
    regions = {
        anchor_id: region_names[index % len(region_names)]
        for index, anchor_id in enumerate(_anchor_ids(anchors))
    }
    profiles: dict[str, dict[str, Any]] = {}
    for profile_name, cross_ms in params["profiles"]:
        reset_message_counter()  # comparable byte accounting per profile
        simulator = _deployment(
            seed,
            anchors=anchors,
            fanout=int(params["fanout"]),
            latency=GeoLatencyModel(
                seed=seed + 1, regions=dict(regions), cross_region_ms=float(cross_ms)
            ),
        )
        kernel = simulator.kernel
        assert kernel is not None
        simulator.add_client("ALPHA")
        for index in range(int(params["events"])):
            kernel.schedule_at(
                20.0 + index * float(params["entry_gap_ms"]),
                lambda index=index, simulator=simulator: simulator.submit_entry(
                    "ALPHA", _login("ALPHA", index)
                ),
                label=f"entry-{index}",
            )
        report = simulator.finalize()
        profiles[profile_name] = {
            "cross_region_ms": float(cross_ms),
            "delivery_latency_ms": report.transport["delivery_latency_ms"],
            "virtual_time_ms": report.kernel["virtual_time_ms"],
            "replicas_identical": simulator.replicas_identical(),
        }
    return {"regions": regions, "profiles": profiles}


@scenario(
    "gossip-vs-broadcast",
    "message cost of overlay gossip versus full broadcast for the same workload",
    defaults={"anchors": 8, "events": 6, "entry_gap_ms": 70.0, "fanout": 2},
    smoke={"anchors": 4, "events": 3},
)
def _gossip_vs_broadcast(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    modes: dict[str, dict[str, Any]] = {}
    for mode, overlay in (("gossip", "random-regular"), ("broadcast", "none")):
        # Fresh message ids per mode: ids are serialised into every message,
        # so byte accounting would otherwise be skewed against the mode that
        # runs second.
        reset_message_counter()
        simulator = _deployment(
            seed, anchors=int(params["anchors"]), overlay=overlay, fanout=int(params["fanout"])
        )
        kernel = simulator.kernel
        assert kernel is not None
        simulator.add_client("ALPHA")
        for index in range(int(params["events"])):
            kernel.schedule_at(
                20.0 + index * float(params["entry_gap_ms"]),
                lambda index=index, simulator=simulator: simulator.submit_entry(
                    "ALPHA", _login("ALPHA", index), anchor_id=simulator.producer_id
                ),
                label=f"entry-{index}",
            )
        report = simulator.finalize()
        # Gossip fan-out may leave a replica one hop short on sparse graphs;
        # a catch-up round makes the convergence comparison fair.
        for node_id in simulator.anchor_ids:
            if node_id != simulator.producer_id:
                simulator.anchors[node_id].catch_up(simulator.producer_id)
        producer_announcements = sum(
            1
            for message in simulator.transport.message_log
            if message.sender == simulator.producer_id
            and message.kind is MessageKind.BLOCK_ANNOUNCE
        )
        modes[mode] = {
            "delivered": report.transport["delivered"],
            "dropped": report.transport["dropped"],
            "bytes_transferred": report.transport["bytes_transferred"],
            # The axis gossip is about: the producer's own egress per block
            # is bounded by the fan-out instead of growing with the quorum.
            "producer_announcements": producer_announcements,
            "virtual_time_ms": report.kernel["virtual_time_ms"],
            "replicas_identical": simulator.replicas_identical(),
        }
    return {"modes": modes}


@scenario(
    "replica-bootstrap",
    "a node rejoins behind a marker shift under loss; anti-entropy triggers a wire snapshot bootstrap",
    defaults={
        "anchors": 4,
        "events": 24,
        "entry_gap_ms": 40.0,
        "offline_at_ms": 60.0,
        "rejoin_at_ms": 1100.0,
        "settle_ms": 700.0,
        "loss_rate": 0.05,
        "chunk_size": 2048,
        "anti_entropy_interval_ms": 120.0,
        "fanout": 2,
    },
    smoke={"events": 12, "rejoin_at_ms": 600.0, "settle_ms": 600.0},
)
def _replica_bootstrap(seed: int, params: dict[str, Any]) -> dict[str, Any]:
    """The full replica lifecycle: join late, bootstrap, stay converged.

    The straggler goes offline almost immediately and stays away while the
    producer seals enough blocks to complete summarisation cycles and shift
    the genesis marker — so on rejoin, incremental catch-up is structurally
    impossible (the blocks it needs were physically deleted).  No recovery
    is scripted: the periodic anti-entropy digests alone must detect the
    stale replica, and its pull must escalate to the chunked snapshot
    bootstrap — across a transport that randomly loses messages, forcing
    chunk retransmissions.
    """
    simulator = _deployment(
        seed,
        anchors=int(params["anchors"]),
        fanout=int(params["fanout"]),
        config=ChainConfig.paper_evaluation(),
        loss_rate=float(params["loss_rate"]),
    )
    kernel = simulator.kernel
    assert kernel is not None
    simulator.add_client("ALPHA")
    straggler = simulator.anchor_ids[-1]
    horizon = float(params["rejoin_at_ms"]) + float(params["settle_ms"])
    simulator.enable_anti_entropy(
        interval_ms=float(params["anti_entropy_interval_ms"]), until=horizon
    )
    simulator.schedule_offline(straggler, float(params["offline_at_ms"]))
    simulator.schedule_online(straggler, float(params["rejoin_at_ms"]))
    checkpoints: dict[str, Any] = {}

    def snapshot_rejoin_state() -> None:
        checkpoints["producer_marker"] = simulator.producer.chain.genesis_marker
        checkpoints["producer_head"] = simulator.producer.chain.head.block_number
        checkpoints["straggler_head"] = simulator.anchors[straggler].chain.head.block_number

    kernel.schedule_at(
        float(params["rejoin_at_ms"]) - 1.0, snapshot_rejoin_state, label="rejoin-state"
    )
    accepted: list[int] = []
    for index in range(int(params["events"])):
        def submit(index: int = index) -> None:
            response = simulator.submit_entry(
                "ALPHA", _login("ALPHA", index), anchor_id=simulator.producer_id
            )
            if not response.is_error:
                accepted.append(index)

        kernel.schedule_at(
            25.0 + index * float(params["entry_gap_ms"]), submit, label=f"entry-{index}"
        )
    kernel.run_until(horizon)
    report = simulator.finalize()
    return {
        "report": report.as_dict(),
        "straggler": straggler,
        "entries_accepted": len(accepted),
        "at_rejoin": checkpoints,
        "heads": simulator.all_heads(),
        "replicas_identical": simulator.replicas_identical(),
    }
