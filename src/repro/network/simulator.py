"""Multi-node network simulation.

This is the reproduction's substitute for the paper's CORBA client–server
testbed (Section V): a deterministic in-process deployment of several anchor
nodes with full chain replicas, plus light clients that submit login entries
and deletion requests.  The simulator exercises the paper's claims that

* every anchor node computes identical summary blocks without propagating
  them (Section IV-B) — checked after every block via summary-hash
  comparison,
* a diverging node is detected as a fork / synchronisation failure,
* node isolation can be mitigated because clients can fail over to other
  anchor nodes (Section V-B4).

The class itself is a thin deployment driver: it wires chains, nodes,
clients and (optionally) a :class:`~repro.network.kernel.EventKernel` plus a
:class:`~repro.network.gossip.GossipOverlay` together, offers fault
injection (immediate or scheduled on the virtual clock) and collects the
:class:`SimulationReport`.  The *scenario catalogue* — named, seeded,
reproducible runs such as partition-and-heal or failover-storm — lives in
:mod:`repro.network.scenarios` and drives this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - service imports network, not vice versa
    from repro.adversary.base import AdversaryActor
    from repro.service.client import LedgerClient
    from repro.service.remote import RemoteLedgerClient
    from repro.sync.antientropy import AntiEntropyService
    from repro.workloads.base import Workload
    from repro.workloads.driver import ScenarioWorkloadDriver, SubmitHook
    from repro.workloads.fleet import (
        FleetArrival,
        FleetDriver,
        FleetPolicy,
        FleetSubmitHook,
    )

from repro.consensus.base import ConsensusEngine, NullConsensus
from repro.consensus.election import HeadElection
from repro.consensus.quorum import Quorum
from repro.core.chain import Blockchain, CohesionChecker
from repro.core.clock import SimulationClock
from repro.core.config import ChainConfig
from repro.core.entry import Entry, EntryReference
from repro.core.errors import SynchronisationError
from repro.core.events import EventType
from repro.core.schema import EntrySchema
from repro.network.gossip import GossipOverlay
from repro.network.kernel import EventKernel
from repro.network.message import Message, MessageKind
from repro.network.node import AnchorNode, ClientNode, SyncReport
from repro.network.transport import InMemoryTransport, LatencyModel


@dataclass
class SimulationReport:
    """Aggregated results of a simulation run."""

    blocks_produced: int = 0
    entries_submitted: int = 0
    deletions_submitted: int = 0
    sync_checks: int = 0
    divergences_detected: int = 0
    failovers: int = 0
    empty_blocks: int = 0
    elections: int = 0
    transport: dict[str, Any] = field(default_factory=dict)
    kernel: dict[str, Any] = field(default_factory=dict)
    anti_entropy: dict[str, Any] = field(default_factory=dict)
    #: Per-workload counters (entries, deletions, virtual-ms deletion
    #: latency), keyed by workload name — filled by :meth:`finalize` for
    #: every driver attached via :meth:`NetworkSimulator.drive_workload`.
    workloads: dict[str, Any] = field(default_factory=dict)
    #: Adversarial bookkeeping — per-actor attack counters under
    #: ``"actors"``, the quorum's aggregated defence counters under
    #: ``"defense"``.  Empty for deployments without injected adversaries.
    adversary: dict[str, Any] = field(default_factory=dict)
    final_chain_statistics: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for reports and benchmarks."""
        return {
            "blocks_produced": self.blocks_produced,
            "entries_submitted": self.entries_submitted,
            "deletions_submitted": self.deletions_submitted,
            "sync_checks": self.sync_checks,
            "divergences_detected": self.divergences_detected,
            "failovers": self.failovers,
            "empty_blocks": self.empty_blocks,
            "elections": self.elections,
            "transport": dict(self.transport),
            "kernel": dict(self.kernel),
            "anti_entropy": dict(self.anti_entropy),
            "workloads": dict(self.workloads),
            "adversary": dict(self.adversary),
            "final_chain_statistics": dict(self.final_chain_statistics),
        }


class NetworkSimulator:
    """Builds and drives a deployment of anchor nodes and clients.

    With ``kernel`` the deployment runs on virtual time: chains read a
    :class:`~repro.core.clock.SimulationClock` (idle blocks and
    temporary-entry expiry follow simulated time), message delivery is
    scheduled, and faults can be booked ahead via
    :meth:`schedule_partition` / :meth:`schedule_heal` /
    :meth:`schedule_offline`.  With ``gossip`` sealed blocks disseminate
    hop-by-hop through the overlay instead of a direct broadcast.
    """

    def __init__(
        self,
        *,
        anchor_count: int = 3,
        client_ids: Optional[list[str]] = None,
        config: Optional[ChainConfig] = None,
        schema: Optional[EntrySchema] = None,
        engine_factory: Optional[type[ConsensusEngine]] = None,
        latency: Optional[LatencyModel] = None,
        admins: tuple[str, ...] = (),
        kernel: Optional[EventKernel] = None,
        gossip: Optional[GossipOverlay] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 23,
        cohesion_checker: Optional[CohesionChecker] = None,
    ) -> None:
        if anchor_count < 1:
            raise ValueError("at least one anchor node is required")
        self.config = config or ChainConfig.paper_evaluation()
        self.schema = schema
        self.kernel = kernel
        self.gossip = gossip
        self.transport = InMemoryTransport(
            latency=latency, kernel=kernel, loss_rate=loss_rate, loss_seed=loss_seed
        )
        self.anti_entropy: Optional["AntiEntropyService"] = None
        self._workload_drivers: list["ScenarioWorkloadDriver"] = []
        #: Injected byzantine actors (see :mod:`repro.adversary`); their
        #: attack counters are folded into ``report.adversary``.
        self.adversaries: list["AdversaryActor"] = []
        self._forks_repaired = 0
        self.report = SimulationReport()

        self.anchor_ids = [f"anchor-{index}" for index in range(anchor_count)]
        self.producer_id = self.anchor_ids[0]
        self.anchors: dict[str, AnchorNode] = {}
        for anchor_id in self.anchor_ids:
            chain = Blockchain(
                self.config,
                schema=self.schema,
                admins=list(admins),
                clock=SimulationClock(kernel) if kernel is not None else None,
                # One shared checker across all replicas, mirroring how each
                # replica re-evaluates replicated deletion requests against
                # the same semantic-cohesion model (Section IV-D2).
                cohesion_checker=cohesion_checker,
            )
            chain.bus.subscribe(self._count_empty_block, types=(EventType.EMPTY_BLOCK,))
            engine = engine_factory() if engine_factory is not None else NullConsensus()
            node = AnchorNode(
                anchor_id,
                chain,
                self.transport,
                engine=engine,
                is_producer=(anchor_id == self.producer_id),
                producer_id=self.producer_id,
                gossip=gossip,
            )
            self.anchors[anchor_id] = node
        for node in self.anchors.values():
            node.connect(self.anchor_ids)

        self.clients: dict[str, ClientNode] = {}
        for client_id in client_ids or []:
            self.add_client(client_id)

    def _count_empty_block(self, event: Any) -> None:
        self.report.empty_blocks += 1

    # ------------------------------------------------------------------ #
    # Topology management
    # ------------------------------------------------------------------ #

    @property
    def producer(self) -> AnchorNode:
        """The current block-producing anchor node."""
        return self.anchors[self.producer_id]

    def add_client(self, client_id: str) -> ClientNode:
        """Register a new light client."""
        client = ClientNode(client_id, self.transport, scheme_name=self.config.signature_scheme)
        self.clients[client_id] = client
        return client

    def ledger_client(self, anchor_id: Optional[str] = None) -> "RemoteLedgerClient":
        """A :class:`~repro.service.remote.RemoteLedgerClient` for this
        deployment, bound to ``anchor_id`` (default: the producer)."""
        from repro.service.remote import RemoteLedgerClient

        return RemoteLedgerClient(
            self.transport,
            anchor_id or self.producer_id,
            scheme_name=self.config.signature_scheme,
            fallback_anchor_ids=tuple(
                peer for peer in self.anchor_ids if peer != (anchor_id or self.producer_id)
            ),
        )

    def take_offline(self, anchor_id: str) -> None:
        """Disconnect an anchor node (crash / isolation fault)."""
        self.transport.set_offline(anchor_id, True)

    def bring_online(self, anchor_id: str) -> None:
        """Reconnect a previously offline anchor node.

        If the producer changed while the node was away, tell it — the same
        notification it would have received had it been reachable.
        """
        self.transport.set_offline(anchor_id, False)
        node = self.anchors[anchor_id]
        if node.producer_id != self.producer_id:
            node.set_producer(self.producer_id)

    def corrupt_replica(self, anchor_id: str, *, note: str = "corrupted state") -> None:
        """Tamper with one node's replica so its chain state diverges.

        The corrupted node seals a rogue block locally (as a faulty or
        malicious anchor would).  From then on its replica forks: announced
        blocks no longer link, and its summary blocks differ from the honest
        quorum.  The paper warns that such a divergence *"would result in a
        fork in the blockchain and thus split the network"*; this fault lets
        tests and benchmarks observe exactly that detection path.
        """
        chain = self.anchors[anchor_id].chain
        rogue = Entry(data={"D": note, "K": "corruptor", "S": "none"}, author="corruptor", signature="x")
        chain._pending.append(rogue)  # bypass signing on purpose: this is a fault injection
        chain.seal_block()

    # ------------------------------------------------------------------ #
    # Adversaries (repro.adversary)
    # ------------------------------------------------------------------ #

    def inject_adversary(self, actor: "AdversaryActor") -> "AdversaryActor":
        """Attach a byzantine actor to this deployment.

        The actor acts through the shared transport on its own schedule; the
        simulator only tracks it so :meth:`finalize` can pair its attack
        counters with the quorum's defence counters under
        ``report.adversary``.
        """
        self.adversaries.append(actor)
        return actor

    def repair_divergent_replicas(self) -> int:
        """Converge every online replica that forked off the producer.

        Divergence detection is the summary-hash comparison of
        Section IV-B; *repair* is the status-quo adoption of Section V-B4: a
        forked replica cannot replay its way back (the honest blocks no
        longer link to its head), so after an incremental catch-up attempt
        the replica adopts the producer's snapshot wholesale.  Returns the
        number of replicas repaired; the count is also surfaced as
        ``report.adversary["defense"]["forks_repaired"]``.
        """
        repaired = 0
        for anchor_id in self.anchor_ids:
            if anchor_id == self.producer_id or self.transport.is_offline(anchor_id):
                continue
            node = self.anchors[anchor_id]
            if node.chain.head.block_hash == self.producer.chain.head.block_hash:
                continue
            # A merely *lagging* replica converges incrementally.
            node.catch_up(self.producer_id)
            if node.chain.head.block_hash != self.producer.chain.head.block_hash:
                # A genuine fork: wholesale snapshot adoption.
                node.bootstrap_from(self.producer_id)
            if node.chain.head.block_hash == self.producer.chain.head.block_hash:
                repaired += 1
        self._forks_repaired += repaired
        return repaired

    # ------------------------------------------------------------------ #
    # Virtual-time control (kernel deployments)
    # ------------------------------------------------------------------ #

    def _require_kernel(self) -> EventKernel:
        if self.kernel is None:
            raise ValueError("this operation requires a kernel-backed deployment")
        return self.kernel

    def run_until(self, time_ms: float) -> int:
        """Advance virtual time to ``time_ms``, executing everything due."""
        return self._require_kernel().run_until(time_ms)

    def settle(self) -> int:
        """Drain every in-flight event (gossip hops, scheduled faults)."""
        return self._require_kernel().run()

    def schedule_offline(self, anchor_id: str, at: float) -> None:
        """Book an outage on the virtual clock."""
        self.transport.schedule_offline(anchor_id, at)

    def schedule_online(self, anchor_id: str, at: float) -> None:
        """Book a recovery on the virtual clock (incl. producer refresh)."""
        self._require_kernel().schedule_at(
            at, lambda: self.bring_online(anchor_id), label=f"online:{anchor_id}"
        )

    def schedule_partition(self, group_a: list[str], group_b: list[str], at: float) -> None:
        """Book a partition on the virtual clock."""
        self.transport.schedule_partition(group_a, group_b, at)

    def schedule_heal(self, at: float) -> None:
        """Book the partition heal on the virtual clock."""
        self.transport.schedule_heal(at)

    # ------------------------------------------------------------------ #
    # Anti-entropy (repro.sync)
    # ------------------------------------------------------------------ #

    def enable_anti_entropy(
        self, *, interval_ms: float = 150.0, until: Optional[float] = None
    ) -> "AntiEntropyService":
        """Book periodic ``SYNC_DIGEST`` rounds on the gossip overlay.

        Requires a kernel-backed deployment with a gossip overlay.  The
        service's convergence counters are folded into the final report
        (``report.anti_entropy``); see
        :class:`repro.sync.antientropy.AntiEntropyService`.
        """
        from repro.sync.antientropy import AntiEntropyService

        kernel = self._require_kernel()
        if self.gossip is None:
            raise ValueError("anti-entropy requires a gossip overlay")
        if self.anti_entropy is not None:
            raise ValueError("anti-entropy is already enabled")
        self.anti_entropy = AntiEntropyService(
            transport=self.transport,
            overlay=self.gossip,
            kernel=kernel,
            nodes=self.anchors,
            interval_ms=interval_ms,
        )
        self.anti_entropy.start(until=until)
        return self.anti_entropy

    # ------------------------------------------------------------------ #
    # Workload timelines (repro.workloads.driver)
    # ------------------------------------------------------------------ #

    def drive_workload(
        self,
        workload: "Workload",
        *,
        mean_gap_ms: float,
        jitter: float = 0.5,
        ms_per_tick: float = 1.0,
        start_at_ms: float = 0.0,
        expiry_ms_per_tick: Optional[float] = None,
        on_submitted: Optional["SubmitHook"] = None,
        anchor_id: Optional[str] = None,
    ) -> "ScenarioWorkloadDriver":
        """Bind a workload timeline to this deployment (kernel required).

        Builds a :class:`~repro.workloads.driver.ScenarioWorkloadDriver`
        around a :class:`~repro.service.remote.RemoteLedgerClient` for
        ``anchor_id`` (default: the producer), wired to this deployment's
        kernel and the producer chain's event bus so deletion latency is
        measured in virtual milliseconds.  The caller still calls
        :meth:`~repro.workloads.driver.ScenarioWorkloadDriver.schedule` —
        after installing any application-level hooks — and advances the
        kernel; :meth:`finalize` folds the driver's counters into
        ``report.workloads``.
        """
        from repro.workloads.driver import ScenarioWorkloadDriver

        kernel = self._require_kernel()
        driver = ScenarioWorkloadDriver(
            workload,
            self.ledger_client(anchor_id),
            mean_gap_ms=mean_gap_ms,
            jitter=jitter,
            ms_per_tick=ms_per_tick,
            kernel=kernel,
            bus=self.producer.chain.bus,
            start_at_ms=start_at_ms,
            expiry_ms_per_tick=expiry_ms_per_tick,
            on_submitted=on_submitted,
        )
        self._workload_drivers.append(driver)
        return driver

    def drive_fleet(
        self,
        workloads: "Sequence[Workload]",
        *,
        mean_gap_ms: float,
        jitter: float = 0.5,
        ms_per_tick: float = 1.0,
        start_at_ms: float = 0.0,
        expiry_ms_per_tick: Optional[float] = None,
        in_flight_budget: int = 8,
        policy: "FleetPolicy | str" = "queue",
        on_submitted: Optional["FleetSubmitHook"] = None,
        anchor_id: Optional[str] = None,
        clients: Optional["Sequence[LedgerClient]"] = None,
        lane_of: Optional["Callable[[FleetArrival], int]"] = None,
        lane_count: Optional[int] = None,
    ) -> "FleetDriver":
        """Bind a multi-client fleet to this deployment (kernel required).

        Builds a :class:`~repro.workloads.fleet.FleetDriver` over one
        :class:`~repro.service.remote.RemoteLedgerClient` per fleet client
        (all bound to ``anchor_id``, default the producer), wired to this
        deployment's kernel and the producer chain's event bus.  The caller
        supplies one pre-seeded workload per client — typically built with
        :func:`~repro.workloads.fleet.derive_client_seed` — installs any
        hooks, calls
        :meth:`~repro.workloads.fleet.FleetDriver.schedule`, and advances
        the kernel; :meth:`finalize` folds the fleet statistics (per-client
        and aggregate latency percentiles) into ``report.workloads``.

        ``clients`` overrides the per-client ledger clients (a sharded
        deployment passes one shared :class:`~repro.service.sharding.ShardRouter`
        per fleet client), and ``lane_of`` / ``lane_count`` forward the
        fleet engine's service-lane selector and its lane tally so
        per-shard round trips overlap through the event-driven pump.
        """
        from repro.workloads.fleet import FleetDriver

        kernel = self._require_kernel()
        driver = FleetDriver(
            workloads,
            (
                list(clients)
                if clients is not None
                else [self.ledger_client(anchor_id) for _ in workloads]
            ),
            mean_gap_ms=mean_gap_ms,
            jitter=jitter,
            ms_per_tick=ms_per_tick,
            kernel=kernel,
            bus=self.producer.chain.bus,
            start_at_ms=start_at_ms,
            expiry_ms_per_tick=expiry_ms_per_tick,
            in_flight_budget=in_flight_budget,
            policy=policy,
            on_submitted=on_submitted,
            lane_of=lane_of,
            lane_count=lane_count,
        )
        self._workload_drivers.append(driver)
        return driver

    # ------------------------------------------------------------------ #
    # Producer failover (Section V-B4)
    # ------------------------------------------------------------------ #

    def elect_new_producer(self, *, exclude: tuple[str, ...] = ()) -> Optional[str]:
        """Promote the most up-to-date reachable replica to block producer.

        The candidate is chosen by :class:`~repro.consensus.election.HeadElection`
        over the online replicas, then confirmed by a quorum vote carried as
        ``VOTE_REQUEST`` messages over the transport — under a kernel the
        ballots travel with real delay, so the round's outcome depends on
        how far each replica has caught up when the ballot reaches it.
        Returns the new producer id, or ``None`` when no quorum formed.
        """
        online = [
            anchor_id
            for anchor_id in self.anchor_ids
            if not self.transport.is_offline(anchor_id) and anchor_id not in exclude
        ]
        if not online:
            return None
        election = HeadElection(
            chains={anchor_id: self.anchors[anchor_id].chain for anchor_id in online}
        )
        candidate = election.elect(1).anchors[0]
        quorum = Quorum(online)
        proposal_id = f"failover-{self.report.elections}-{candidate}"
        quorum.propose(proposal_id, "producer-failover", {"candidate": candidate})
        votes = {candidate: True}  # the candidate backs itself
        ballot = Message(
            kind=MessageKind.VOTE_REQUEST,
            sender=candidate,
            payload={
                "proposal_id": proposal_id,
                "candidate": candidate,
                "candidate_head": self.anchors[candidate].chain.head.block_number,
            },
        )
        responses = self.transport.broadcast(candidate, online, ballot)
        for peer, response in responses.items():
            if response is None or response.is_error:
                continue
            votes[peer] = bool(response.payload.get("approve", False))
        outcome = quorum.record_votes(proposal_id, votes)
        self.report.elections += 1
        if outcome.state.value != "accepted":
            return None
        self.producer_id = candidate
        self.anchors[candidate].set_producer(candidate)
        notice = Message(
            kind=MessageKind.PRODUCER_CHANGE,
            sender=candidate,
            payload={"producer": candidate},
        )
        self.transport.broadcast(
            candidate, [peer for peer in online if peer != candidate], notice
        )
        return candidate

    # ------------------------------------------------------------------ #
    # Workload operations
    # ------------------------------------------------------------------ #

    def submit_entry(
        self,
        client_id: str,
        data: dict[str, Any],
        *,
        anchor_id: Optional[str] = None,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
    ) -> Message:
        """Submit one entry through a client, failing over when needed."""
        client = self.clients[client_id]
        targets = [anchor_id] if anchor_id else list(self.anchor_ids)
        response: Optional[Message] = None
        for target in targets:
            response = client.submit_entry(
                target,
                data,
                expires_at_time=expires_at_time,
                expires_at_block=expires_at_block,
            )
            if response is not None and not response.is_error:
                break
            self.report.failovers += 1
        assert response is not None
        self.report.entries_submitted += 1
        if not response.is_error:
            self.report.blocks_produced += 1
        return response

    def submit_deletion(
        self,
        client_id: str,
        target: EntryReference,
        *,
        anchor_id: Optional[str] = None,
        reason: str = "",
    ) -> Message:
        """Submit a deletion request through a client."""
        client = self.clients[client_id]
        targets = [anchor_id] if anchor_id else list(self.anchor_ids)
        response: Optional[Message] = None
        for anchor in targets:
            response = client.request_deletion(anchor, target, reason=reason)
            if response is not None and not response.is_error:
                break
            self.report.failovers += 1
        assert response is not None
        self.report.deletions_submitted += 1
        if not response.is_error:
            self.report.blocks_produced += 1
        return response

    # ------------------------------------------------------------------ #
    # Synchronisation
    # ------------------------------------------------------------------ #

    def sync_check(self, *, raise_on_divergence: bool = False) -> SyncReport:
        """Run one summary-hash comparison round from the producer."""
        self.report.sync_checks += 1
        report = self.producer.sync_check(raise_on_divergence=False)
        if not report.in_sync:
            self.report.divergences_detected += 1
            if raise_on_divergence:
                raise SynchronisationError(
                    f"summary divergence on peers {report.diverged_peers}"
                )
        return report

    def all_heads(self) -> dict[str, int]:
        """Head block number of every anchor replica."""
        return {anchor_id: node.chain.head.block_number for anchor_id, node in self.anchors.items()}

    def replicas_identical(self) -> bool:
        """True when every online replica has the same head hash."""
        hashes = {
            node.chain.head.block_hash
            for anchor_id, node in self.anchors.items()
            if not self.transport.is_offline(anchor_id)
        }
        return len(hashes) == 1

    # ------------------------------------------------------------------ #
    # Scenario driver
    # ------------------------------------------------------------------ #

    def run_login_scenario(self, logins: list[tuple[str, str]], *, sync_every: int = 1) -> SimulationReport:
        """Replay a list of ``(client_id, record)`` login events.

        Registers unknown clients on the fly, checks synchronisation every
        ``sync_every`` submissions and returns the final report.
        """
        for index, (client_id, record) in enumerate(logins, start=1):
            if client_id not in self.clients:
                self.add_client(client_id)
            self.submit_entry(
                client_id,
                {"D": record, "K": client_id, "S": f"sig_{client_id}"},
            )
            if sync_every and index % sync_every == 0:
                self.sync_check()
        return self.finalize()

    def finalize(self) -> SimulationReport:
        """Collect final statistics into the report.

        On a kernel deployment every in-flight event is drained first, so
        gossip hops and scheduled faults still pending are accounted for.
        """
        if self.kernel is not None:
            if self.anti_entropy is not None:
                # The recurring digest rounds would keep the queue non-empty
                # forever; stop them so the drain below terminates.
                self.anti_entropy.stop()
            self.kernel.run()
            self.report.kernel = self.kernel.statistics()
        if self.anti_entropy is not None:
            self.report.anti_entropy = self.anti_entropy.statistics()
        for driver in self._workload_drivers:
            driver.close()
            # Two drivers of the same workload type must not overwrite each
            # other: disambiguate repeat names deterministically.
            key = driver.workload.name
            suffix = 2
            while key in self.report.workloads:
                key = f"{driver.workload.name}#{suffix}"
                suffix += 1
            self.report.workloads[key] = driver.stats.as_dict()
        if self.adversaries:
            defense: dict[str, int] = {
                "digests_diverged": 0,
                "rejected_blocks": 0,
                "rejected_blocks_evicted": 0,
                "announcements_evicted": 0,
            }
            for node in self.anchors.values():
                defense["digests_diverged"] += node.sync_stats["digests_diverged"]
                defense["rejected_blocks"] += len(node.rejected_blocks)
                defense["rejected_blocks_evicted"] += node.sync_stats[
                    "rejected_blocks_evicted"
                ]
                defense["announcements_evicted"] += node.sync_stats[
                    "announcements_evicted"
                ]
            defense["deletions_rejected"] = self.producer.chain.registry.rejected_count
            defense["forks_repaired"] = self._forks_repaired
            self.report.adversary = {
                "actors": {
                    actor.actor_id: actor.statistics() for actor in self.adversaries
                },
                "defense": defense,
            }
        self.report.transport = self.transport.statistics.as_dict()
        self.report.final_chain_statistics = self.producer.chain.statistics()
        return self.report
