"""Push gossip for block dissemination.

Large anchor-node sets do not broadcast every block to every peer directly;
they gossip.  This module provides two layers:

* :class:`GossipProtocol` — the abstract round-based model: how many rounds
  does one item need to cover a topology at a given fan-out?  Used to study
  dissemination speed analytically (ring vs. random-regular vs. clique) and
  how node isolation (Section V-B4, Eclipse/Sybil discussion) slows or
  prevents coverage.
* :class:`GossipOverlay` — the *live* overlay anchor nodes use when block
  announcements are disseminated over the kernel-backed transport: each hop
  picks a deterministic per-``(node, item)`` fan-out subset of its
  neighbours and forwards via one-way posts, so dissemination consumes
  virtual time and interleaves with faults and other traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class GossipTopology:
    """An undirected peer graph."""

    adjacency: dict[str, set[str]] = field(default_factory=dict)

    def add_node(self, node_id: str) -> None:
        """Ensure a node exists in the topology."""
        self.adjacency.setdefault(node_id, set())

    def add_edge(self, first: str, second: str) -> None:
        """Connect two nodes."""
        if first == second:
            return
        self.add_node(first)
        self.add_node(second)
        self.adjacency[first].add(second)
        self.adjacency[second].add(first)

    def remove_node(self, node_id: str) -> None:
        """Remove a node and all its links (models a crashed/isolated node)."""
        for peer in self.adjacency.pop(node_id, set()):
            self.adjacency[peer].discard(node_id)

    def neighbours(self, node_id: str) -> set[str]:
        """Peers directly connected to ``node_id``."""
        return set(self.adjacency.get(node_id, set()))

    @property
    def nodes(self) -> list[str]:
        """All node ids."""
        return sorted(self.adjacency)

    @classmethod
    def fully_connected(cls, node_ids: Iterable[str]) -> "GossipTopology":
        """Clique topology: every anchor node knows every other."""
        topology = cls()
        ids = list(node_ids)
        for i, first in enumerate(ids):
            topology.add_node(first)
            for second in ids[i + 1 :]:
                topology.add_edge(first, second)
        return topology

    @classmethod
    def ring(cls, node_ids: Iterable[str]) -> "GossipTopology":
        """Ring topology — the worst reasonable case for dissemination."""
        topology = cls()
        ids = list(node_ids)
        for index, node_id in enumerate(ids):
            topology.add_edge(node_id, ids[(index + 1) % len(ids)])
        return topology

    @classmethod
    def random_regular(cls, node_ids: Iterable[str], degree: int, *, seed: int = 13) -> "GossipTopology":
        """Random topology where every node gets roughly ``degree`` links."""
        topology = cls()
        ids = list(node_ids)
        rng = random.Random(seed)
        for node_id in ids:
            topology.add_node(node_id)
            others = [candidate for candidate in ids if candidate != node_id]
            rng.shuffle(others)
            for peer in others[:degree]:
                topology.add_edge(node_id, peer)
        return topology


@dataclass
class GossipResult:
    """Outcome of disseminating one item through the topology."""

    origin: str
    rounds: int
    informed: set[str]
    messages_sent: int

    @property
    def coverage(self) -> float:
        """Fraction of nodes that received the item."""
        return len(self.informed)

    def coverage_ratio(self, total_nodes: int) -> float:
        """Coverage as a fraction of ``total_nodes``."""
        if total_nodes <= 0:
            return 0.0
        return len(self.informed) / total_nodes


class GossipOverlay:
    """Fan-out target selection for transport-level gossip dissemination.

    The overlay is shared by every anchor node of a deployment.  Target
    selection is a pure function of ``(seed, node, item)`` — no shared RNG
    state — so two runs of the same scenario pick identical forwarding sets
    regardless of delivery interleaving, which is what keeps kernel-backed
    simulations byte-for-byte reproducible.
    """

    def __init__(self, topology: GossipTopology, *, fanout: int = 2, seed: int = 29) -> None:
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.topology = topology
        self.fanout = fanout
        self.seed = seed

    def targets(self, node_id: str, item_key: str) -> list[str]:
        """Peers ``node_id`` forwards ``item_key`` to (≤ fan-out neighbours)."""
        neighbours = sorted(self.topology.neighbours(node_id))
        if len(neighbours) <= self.fanout:
            return neighbours
        # String seeds hash stably (sha512) across processes, unlike tuples.
        rng = random.Random(f"{self.seed}:{node_id}:{item_key}")
        return sorted(rng.sample(neighbours, self.fanout))


class GossipProtocol:
    """Round-based push gossip with configurable fan-out."""

    def __init__(self, topology: GossipTopology, *, fanout: int = 2, seed: int = 29) -> None:
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.topology = topology
        self.fanout = fanout
        self._random = random.Random(seed)

    def disseminate(self, origin: str, *, max_rounds: Optional[int] = None) -> GossipResult:
        """Push an item from ``origin`` until no new node learns about it."""
        if origin not in self.topology.adjacency:
            raise KeyError(f"origin {origin!r} is not part of the topology")
        informed: set[str] = {origin}
        frontier: set[str] = {origin}
        rounds = 0
        messages = 0
        limit = max_rounds if max_rounds is not None else len(self.topology.nodes) * 2
        while frontier and rounds < limit:
            rounds += 1
            next_frontier: set[str] = set()
            for node in sorted(frontier):
                neighbours = sorted(self.topology.neighbours(node))
                self._random.shuffle(neighbours)
                for peer in neighbours[: self.fanout]:
                    messages += 1
                    if peer not in informed:
                        informed.add(peer)
                        next_frontier.add(peer)
            frontier = next_frontier
        return GossipResult(origin=origin, rounds=rounds, informed=informed, messages_sent=messages)

    def rounds_to_full_coverage(self, origin: str) -> Optional[int]:
        """Rounds needed to inform every node, or ``None`` if unreachable."""
        result = self.disseminate(origin)
        if len(result.informed) == len(self.topology.nodes):
            return result.rounds
        return None
