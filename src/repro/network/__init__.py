"""Network substrate: anchor nodes, clients, transport, RPC, gossip, simulator.

Replaces the paper's CORBA client–server prototype with an in-process
simulation (see DESIGN.md for the substitution rationale).  The stack runs
on a deterministic discrete-event kernel (:mod:`repro.network.kernel`):
latency decides *when* messages arrive, faults are scheduled events, and the
named-scenario catalogue (:mod:`repro.network.scenarios`) packages
reproducible fault experiments.
"""

from repro.network.gossip import GossipOverlay, GossipProtocol, GossipResult, GossipTopology
from repro.network.kernel import EventHandle, EventKernel, KernelError
from repro.network.message import Message, MessageKind
from repro.network.node import AnchorNode, ClientNode, SyncReport
from repro.network.rpc import RpcClient, RpcError, RpcServer, RpcTimeout, expose_chain_api
from repro.network.scenarios import (
    Scenario,
    ScenarioError,
    run_scenario,
    scenario_catalogue,
    scenario_names,
)
from repro.network.simulator import NetworkSimulator, SimulationReport
from repro.network.transport import (
    GeoLatencyModel,
    InMemoryTransport,
    LatencyModel,
    TransportError,
    TransportStatistics,
)

__all__ = [
    "GossipOverlay",
    "GossipProtocol",
    "GossipResult",
    "GossipTopology",
    "EventHandle",
    "EventKernel",
    "KernelError",
    "Message",
    "MessageKind",
    "AnchorNode",
    "ClientNode",
    "SyncReport",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "RpcTimeout",
    "expose_chain_api",
    "Scenario",
    "ScenarioError",
    "run_scenario",
    "scenario_catalogue",
    "scenario_names",
    "NetworkSimulator",
    "SimulationReport",
    "GeoLatencyModel",
    "InMemoryTransport",
    "LatencyModel",
    "TransportError",
    "TransportStatistics",
]
