"""Network substrate: anchor nodes, clients, transport, RPC, gossip, simulator.

Replaces the paper's CORBA client–server prototype with an in-process,
deterministic simulation (see DESIGN.md for the substitution rationale).
"""

from repro.network.gossip import GossipProtocol, GossipResult, GossipTopology
from repro.network.message import Message, MessageKind
from repro.network.node import AnchorNode, ClientNode, SyncReport
from repro.network.rpc import RpcClient, RpcError, RpcServer, expose_chain_api
from repro.network.simulator import NetworkSimulator, SimulationReport
from repro.network.transport import (
    InMemoryTransport,
    LatencyModel,
    TransportError,
    TransportStatistics,
)

__all__ = [
    "GossipProtocol",
    "GossipResult",
    "GossipTopology",
    "Message",
    "MessageKind",
    "AnchorNode",
    "ClientNode",
    "SyncReport",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "expose_chain_api",
    "NetworkSimulator",
    "SimulationReport",
    "InMemoryTransport",
    "LatencyModel",
    "TransportError",
    "TransportStatistics",
]
