"""Network substrate: anchor nodes, clients, transport, RPC, gossip, simulator.

Replaces the paper's CORBA client–server prototype with an in-process
simulation (see DESIGN.md for the substitution rationale).  The stack runs
on a deterministic discrete-event kernel (:mod:`repro.network.kernel`):
latency decides *when* messages arrive, faults (partitions, outages, seeded
loss) are scheduled events, and the named-scenario catalogue
(:mod:`repro.network.scenarios`) packages reproducible fault experiments.
``docs/ARCHITECTURE.md`` walks through the whole layer.

Protocol surface
----------------
All traffic is :class:`~repro.network.message.Message` objects; the
authoritative message-kind taxonomy (sender, receiver, payload schema and
reply kind for every :class:`~repro.network.message.MessageKind`) lives in
the :mod:`repro.network.message` module docstring.  The kinds group into
five families:

* **client requests** — ``SUBMIT_ENTRY``, ``SUBMIT_DELETION``,
  ``SEAL_REQUEST``, ``IDLE_TICK``, ``FIND_ENTRY``, ``QUERY_STATISTICS``;
* **replication** — ``BLOCK_ANNOUNCE`` (direct or gossip-hopped),
  ``SUMMARY_HASH`` (Section IV-B synchronisation check);
* **replica synchronisation** (:mod:`repro.sync`) — ``SYNC_REQUEST``
  incremental catch-up, ``SYNC_DIGEST`` anti-entropy beacons,
  ``SNAPSHOT_REQUEST``/``SNAPSHOT_CHUNK`` wire snapshot bootstrap;
* **failover** — ``VOTE_REQUEST``/``VOTE_RESPONSE``, ``PRODUCER_CHANGE``;
* **framing** — ``RPC_CALL``/``RPC_RESULT``, ``ACK``, ``ERROR``,
  ``SYNC_RESPONSE``.
"""

from repro.network.gossip import GossipOverlay, GossipProtocol, GossipResult, GossipTopology
from repro.network.kernel import EventHandle, EventKernel, KernelError
from repro.network.message import Message, MessageKind
from repro.network.node import (
    AnchorNode,
    CatchUpResult,
    CatchUpStatus,
    ClientNode,
    SyncReport,
)
from repro.network.rpc import RpcClient, RpcError, RpcServer, RpcTimeout, expose_chain_api
from repro.network.scenarios import (
    Scenario,
    ScenarioError,
    run_scenario,
    scenario_catalogue,
    scenario_names,
)
from repro.network.simulator import NetworkSimulator, SimulationReport
from repro.network.transport import (
    GeoLatencyModel,
    InMemoryTransport,
    LatencyModel,
    TransportError,
    TransportStatistics,
)

__all__ = [
    "GossipOverlay",
    "GossipProtocol",
    "GossipResult",
    "GossipTopology",
    "EventHandle",
    "EventKernel",
    "KernelError",
    "Message",
    "MessageKind",
    "AnchorNode",
    "CatchUpResult",
    "CatchUpStatus",
    "ClientNode",
    "SyncReport",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "RpcTimeout",
    "expose_chain_api",
    "Scenario",
    "ScenarioError",
    "run_scenario",
    "scenario_catalogue",
    "scenario_names",
    "NetworkSimulator",
    "SimulationReport",
    "GeoLatencyModel",
    "InMemoryTransport",
    "LatencyModel",
    "TransportError",
    "TransportStatistics",
]
