"""Anchor nodes and clients.

Section IV-A: anchor nodes *"manage the full copy of the blockchain and build
the quorum"*; clients *"obtain the current status quo of the blockchain"*
from them (Section V-B4).  In this reproduction each :class:`AnchorNode`
holds its own :class:`~repro.core.chain.Blockchain` replica.  One node acts
as the block producer (the concrete leader-election mechanism is outside the
paper's scope); every other node replays the announced blocks and computes
the summary blocks locally, then the quorum compares summary hashes as the
synchronisation check of Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.consensus.base import ConsensusEngine, NullConsensus
from repro.core.block import Block
from repro.core.chain import Blockchain
from repro.core.entry import Entry, EntryKind, EntryReference
from repro.core.errors import SelectiveDeletionError, SynchronisationError
from repro.core.events import ChainEvent, EventType
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import new_scheme, sign_entry
from repro.network.gossip import GossipOverlay
from repro.network.message import Message, MessageKind
from repro.network.transport import InMemoryTransport


@dataclass
class SyncReport:
    """Result of one summary-hash synchronisation round."""

    block_number: int
    own_hash: str
    peer_results: dict[str, bool] = field(default_factory=dict)

    @property
    def diverged_peers(self) -> list[str]:
        """Peers whose locally computed summary block differs from ours."""
        return sorted(peer for peer, matches in self.peer_results.items() if not matches)

    @property
    def in_sync(self) -> bool:
        """True when every reachable peer agrees."""
        return not self.diverged_peers


class AnchorNode:
    """A server node holding a full replica of the blockchain."""

    def __init__(
        self,
        node_id: str,
        chain: Blockchain,
        transport: InMemoryTransport,
        *,
        engine: Optional[ConsensusEngine] = None,
        is_producer: bool = False,
        producer_id: Optional[str] = None,
        gossip: Optional[GossipOverlay] = None,
    ) -> None:
        self.node_id = node_id
        self.chain = chain
        self.transport = transport
        self.engine = engine or NullConsensus()
        self.is_producer = is_producer
        self.producer_id = producer_id or node_id
        #: When set, seal announcements disseminate hop-by-hop through this
        #: overlay via one-way posts instead of a direct full broadcast.
        self.gossip = gossip
        self.peers: list[str] = []
        self.rejected_blocks: list[tuple[Block, str]] = []
        #: Announced blocks that arrived ahead of their predecessors.  Under
        #: scheduled delivery gossip hops genuinely overtake each other, so
        #: replicas buffer out-of-order announcements and apply them as the
        #: gaps fill (live replication stays byte-identical, Section IV-B).
        self._block_buffer: dict[int, Block] = {}
        #: Hashes of every gossiped block this node has already ingested —
        #: including rejected ones, so an invalid block is never re-forwarded
        #: (two neighbours re-gossiping a rejected block at each other would
        #: otherwise ping-pong forever).
        self._seen_announcements: set[str] = set()
        if self.engine is not None and chain.block_finalizer is None:
            chain.block_finalizer = self.engine.prepare_block
        # The producer announces every block its chain seals — no matter
        # whether the seal was triggered by a submission, an explicit seal
        # request or an idle tick.  Announcing is a *subscription* to the
        # chain's event bus, not a call the block-production paths must each
        # remember to make.
        if self.is_producer:
            self._announce_subscription = chain.bus.subscribe(
                self._on_block_sealed, types=(EventType.BLOCK_SEALED,)
            )
        else:
            self._announce_subscription = None
        transport.register(node_id, self.handle_message)

    # ------------------------------------------------------------------ #
    # Peer management
    # ------------------------------------------------------------------ #

    def connect(self, peer_ids: list[str]) -> None:
        """Record the ids of the other anchor nodes."""
        self.peers = [peer for peer in peer_ids if peer != self.node_id]

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #

    def handle_message(self, message: Message) -> Optional[Message]:
        """Dispatch an incoming protocol message."""
        handlers = {
            MessageKind.SUBMIT_ENTRY: self._handle_submit,
            MessageKind.SUBMIT_DELETION: self._handle_submit,
            MessageKind.SEAL_REQUEST: self._handle_seal_request,
            MessageKind.IDLE_TICK: self._handle_idle_tick,
            MessageKind.FIND_ENTRY: self._handle_find_entry,
            MessageKind.QUERY_STATISTICS: self._handle_statistics,
            MessageKind.BLOCK_ANNOUNCE: self._handle_block_announce,
            MessageKind.SUMMARY_HASH: self._handle_summary_hash,
            MessageKind.SYNC_REQUEST: self._handle_sync_request,
            MessageKind.VOTE_REQUEST: self._handle_vote_request,
            MessageKind.PRODUCER_CHANGE: self._handle_producer_change,
        }
        handler = handlers.get(message.kind)
        if handler is None:
            return message.error(self.node_id, f"unsupported message kind {message.kind.value}")
        try:
            return handler(message)
        except SelectiveDeletionError as exc:
            return message.error(self.node_id, str(exc))

    def _forward_to_producer(self, message: Message) -> Message:
        """Forward a producer-only message; reply with whatever it said."""
        response = self.transport.send(self.producer_id, message)
        if response is None:
            return message.error(self.node_id, "producer did not respond")
        return response

    def _handle_submit(self, message: Message) -> Message:
        if not self.is_producer:
            return self._forward_to_producer(message)
        entry = Entry.from_dict(message.payload["entry"])
        decision = self.chain.submit_signed_entry(entry)
        payload: dict[str, Any] = {}
        if decision is not None:
            payload["deletion_status"] = decision.status.value
            payload["deletion_reason"] = decision.reason
        if message.payload.get("defer_seal"):
            # Queue only; the client batches entries and seals explicitly.
            payload["queued"] = True
            payload["pending_entries"] = len(self.chain.pending_entries)
            return message.reply(MessageKind.ACK, self.node_id, payload)
        block = self.chain.seal_block()
        payload["block_number"] = block.block_number
        payload["entry_number"] = len(block.entries)
        return message.reply(MessageKind.ACK, self.node_id, payload)

    def _handle_seal_request(self, message: Message) -> Message:
        if not self.is_producer:
            return self._forward_to_producer(message)
        block = self.chain.seal_block()
        return message.reply(
            MessageKind.ACK,
            self.node_id,
            {"block_number": block.block_number, "entry_count": len(block.entries)},
        )

    def _handle_idle_tick(self, message: Message) -> Message:
        if not self.is_producer:
            return self._forward_to_producer(message)
        ticks = int(message.payload.get("ticks", 1))
        self.chain.clock.advance(ticks)
        block = self.chain.idle_tick()
        payload: dict[str, Any] = {"appended": block is not None}
        if block is not None:
            payload["block_number"] = block.block_number
        return message.reply(MessageKind.ACK, self.node_id, payload)

    def _handle_find_entry(self, message: Message) -> Message:
        # Lookups are served from the local replica — any anchor can answer.
        reference = EntryReference.from_dict(message.payload["reference"])
        located = self.chain.find_entry(reference)
        if located is None:
            return message.reply(MessageKind.SYNC_RESPONSE, self.node_id, {"found": False})
        block, entry = located
        return message.reply(
            MessageKind.SYNC_RESPONSE,
            self.node_id,
            {"found": True, "block_number": block.block_number, "entry": entry.to_dict()},
        )

    def _handle_statistics(self, message: Message) -> Message:
        return message.reply(
            MessageKind.SYNC_RESPONSE,
            self.node_id,
            {"statistics": self.chain.statistics()},
        )

    def _handle_block_announce(self, message: Message) -> Optional[Message]:
        block = Block.from_dict(message.payload["block"])
        gossip_meta = message.payload.get("gossip")
        if gossip_meta is not None:
            # One-way gossip hop: ingest (buffering out-of-order arrivals)
            # and re-forward while the item is fresh.  No response travels
            # back — the transport discards return values of posts anyway.
            fresh = self._ingest_announced_block(block)
            if fresh and self.gossip is not None:
                self._gossip_forward(
                    str(gossip_meta.get("item", block.block_hash)),
                    message.payload["block"],
                    hops=int(gossip_meta.get("hops", 0)) + 1,
                )
            return None
        verdict = self.engine.validate_block(block, self.chain.head)
        if not verdict.accepted:
            self.rejected_blocks.append((block, verdict.reason))
            return message.error(self.node_id, verdict.reason)
        self.chain.receive_block(block)
        return message.reply(
            MessageKind.ACK,
            self.node_id,
            {"head": self.chain.head.block_number, "head_hash": self.chain.head.block_hash},
        )

    def _ingest_announced_block(self, block: Block) -> bool:
        """Buffer an announced block and apply every consecutive one.

        Returns ``True`` when the block was new to this replica (worth
        re-forwarding), ``False`` for duplicates and already-covered numbers.
        """
        if block.block_hash in self._seen_announcements:
            return False
        if block.block_number <= self.chain.head.block_number:
            return False
        if block.block_number in self._block_buffer:
            return False
        self._seen_announcements.add(block.block_hash)
        self._block_buffer[block.block_number] = block
        self._drain_block_buffer()
        return True

    def _drain_block_buffer(self) -> None:
        while True:
            block = self._block_buffer.pop(self.chain.next_block_number, None)
            if block is None:
                return
            verdict = self.engine.validate_block(block, self.chain.head)
            if not verdict.accepted:
                self.rejected_blocks.append((block, verdict.reason))
                return
            self.chain.receive_block(block)

    def _handle_vote_request(self, message: Message) -> Message:
        """Vote on a producer-failover proposal (Section IV-A quorum duty).

        The ballot names a candidate and the head block number it claims;
        this replica approves when the candidate is at least as up to date
        as itself — under real message delay replicas progress unevenly, so
        the vote outcome (and its timing) depends on who has seen what.
        """
        candidate = str(message.payload.get("candidate", ""))
        claimed_head = int(message.payload.get("candidate_head", -1))
        approve = bool(candidate) and claimed_head >= self.chain.head.block_number
        return message.reply(
            MessageKind.VOTE_RESPONSE,
            self.node_id,
            {
                "proposal_id": message.payload.get("proposal_id"),
                "approve": approve,
                "head": self.chain.head.block_number,
            },
        )

    def _handle_producer_change(self, message: Message) -> Message:
        """Adopt a quorum-decided producer change."""
        self.set_producer(str(message.payload["producer"]))
        return message.reply(
            MessageKind.ACK, self.node_id, {"producer": self.producer_id}
        )

    def set_producer(self, producer_id: str) -> None:
        """Point this node at a (possibly new) block producer.

        Becoming the producer attaches the seal-announcement subscription;
        losing the role detaches it, so exactly one node announces.
        """
        self.producer_id = producer_id
        becoming = producer_id == self.node_id
        if becoming and not self.is_producer:
            self.is_producer = True
            self._announce_subscription = self.chain.bus.subscribe(
                self._on_block_sealed, types=(EventType.BLOCK_SEALED,)
            )
        elif not becoming and self.is_producer:
            self.is_producer = False
            if self._announce_subscription is not None:
                self.chain.bus.unsubscribe(self._announce_subscription)
                self._announce_subscription = None

    def _handle_summary_hash(self, message: Message) -> Message:
        block_number = int(message.payload["block_number"])
        expected_hash = str(message.payload["block_hash"])
        try:
            own = self.chain.block_by_number(block_number)
        except KeyError:
            return message.reply(
                MessageKind.SYNC_RESPONSE, self.node_id, {"match": False, "reason": "block unknown"}
            )
        matches = own.is_summary and own.block_hash == expected_hash
        return message.reply(MessageKind.SYNC_RESPONSE, self.node_id, {"match": matches})

    def _handle_sync_request(self, message: Message) -> Message:
        from_number = int(message.payload.get("from_block", self.chain.genesis_marker))
        blocks = [
            block.to_dict()
            for block in self.chain.blocks
            if block.block_number >= from_number
        ]
        return message.reply(
            MessageKind.SYNC_RESPONSE,
            self.node_id,
            {"blocks": blocks, "genesis_marker": self.chain.genesis_marker},
        )

    # ------------------------------------------------------------------ #
    # Producer-side operations
    # ------------------------------------------------------------------ #

    def _on_block_sealed(self, event: ChainEvent) -> None:
        """Event-bus subscriber: announce every block the chain seals."""
        block = event.payload.get("block")
        if isinstance(block, Block):
            self._announce(block)

    def _announce(self, block: Block) -> None:
        if self.gossip is not None:
            # Gossip-backed dissemination: seed the overlay with the sealed
            # block; peers re-forward hop by hop (over the kernel's virtual
            # clock when the transport is scheduled).
            self._gossip_forward(block.block_hash, block.to_dict(), hops=0)
            return
        message = Message(
            kind=MessageKind.BLOCK_ANNOUNCE,
            sender=self.node_id,
            payload={"block": block.to_dict()},
        )
        self.transport.broadcast(self.node_id, self.peers, message)

    def _gossip_forward(self, item_key: str, block_payload: dict, *, hops: int) -> None:
        assert self.gossip is not None
        message = Message(
            kind=MessageKind.BLOCK_ANNOUNCE,
            sender=self.node_id,
            payload={
                "block": block_payload,
                "gossip": {"item": item_key, "hops": hops},
            },
        )
        self.transport.publish(
            self.node_id, self.gossip.targets(self.node_id, item_key), message
        )

    def produce_block(self) -> Block:
        """Seal the pending entries locally; the sealed-block subscription
        announces the result to all peers."""
        if not self.is_producer:
            raise SelectiveDeletionError(f"node {self.node_id} is not the block producer")
        return self.chain.seal_block()

    # ------------------------------------------------------------------ #
    # Synchronisation check (Section IV-B)
    # ------------------------------------------------------------------ #

    def latest_summary_block(self) -> Optional[Block]:
        """Most recent summary block of the local replica."""
        for block in reversed(self.chain.blocks):
            if block.is_summary:
                return block
        return None

    def catch_up(self, peer_id: str) -> int:
        """Fetch missed blocks from a peer and replay them locally.

        A node that was offline (Section V-B4's isolation discussion) asks a
        reachable anchor node for everything after its own head, applies the
        missed *normal* blocks in order and recomputes the summary blocks
        itself — the same path as live replication, so the caught-up replica
        ends byte-identical to the peer.  Returns the number of blocks
        adopted; ``0`` means the node was already up to date or is so far
        behind that it needs a snapshot bootstrap instead.
        """
        request = Message(
            kind=MessageKind.SYNC_REQUEST,
            sender=self.node_id,
            payload={"from_block": self.chain.head.block_number + 1},
        )
        response = self.transport.send(peer_id, request)
        if response is None or response.is_error:
            return 0
        adopted = 0
        for payload in response.payload.get("blocks", []):
            block = Block.from_dict(payload)
            if block.is_summary:
                continue  # summary blocks are recomputed locally (Section IV-B)
            if block.block_number != self.chain.next_block_number:
                break  # gap too large: a snapshot bootstrap is required
            verdict = self.engine.validate_block(block, self.chain.head)
            if not verdict.accepted:
                self.rejected_blocks.append((block, verdict.reason))
                break
            self.chain.receive_block(block)
            adopted += 1
        # Gossiped announcements that overtook the gap can now be applied.
        self._drain_block_buffer()
        return adopted

    def sync_check(self, *, raise_on_divergence: bool = False) -> SyncReport:
        """Compare the latest locally computed summary block with all peers."""
        summary = self.latest_summary_block()
        if summary is None:
            return SyncReport(block_number=-1, own_hash="")
        message = Message(
            kind=MessageKind.SUMMARY_HASH,
            sender=self.node_id,
            payload={"block_number": summary.block_number, "block_hash": summary.block_hash},
        )
        responses = self.transport.broadcast(self.node_id, self.peers, message)
        report = SyncReport(block_number=summary.block_number, own_hash=summary.block_hash)
        for peer, response in responses.items():
            if response is None or response.is_error:
                report.peer_results[peer] = False
            else:
                report.peer_results[peer] = bool(response.payload.get("match", False))
        if raise_on_divergence and not report.in_sync:
            raise SynchronisationError(
                f"summary block {summary.block_number} diverges on peers {report.diverged_peers}"
            )
        return report


class ClientNode:
    """A light client submitting entries and deletion requests to anchors."""

    def __init__(
        self,
        client_id: str,
        transport: InMemoryTransport,
        *,
        scheme_name: str = "simplified",
        key_pair: Optional[KeyPair] = None,
    ) -> None:
        self.client_id = client_id
        self.transport = transport
        self.scheme = new_scheme(scheme_name)
        self.key_pair = key_pair

    def _sign_entry(self, entry: Entry) -> Entry:
        return sign_entry(self.scheme, entry, self.client_id, self.key_pair)

    def _send(self, anchor_id: str, message: Message) -> Message:
        response = self.transport.send(anchor_id, message)
        if response is None:
            return message.error(self.client_id, "no response from anchor node")
        return response

    def submit_entry(
        self,
        anchor_id: str,
        data: dict[str, Any],
        *,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        defer_seal: bool = False,
    ) -> Message:
        """Sign a data entry locally and submit it to an anchor node.

        With ``defer_seal`` the entry is only queued in the producer's
        pending pool; call :meth:`request_seal` to seal a batch explicitly.
        """
        entry = self._sign_entry(
            Entry(
                data=data,
                author=self.client_id,
                signature="",
                expires_at_time=expires_at_time,
                expires_at_block=expires_at_block,
            )
        )
        payload: dict[str, Any] = {"entry": entry.to_dict()}
        if defer_seal:
            payload["defer_seal"] = True
        message = Message(
            kind=MessageKind.SUBMIT_ENTRY,
            sender=self.client_id,
            payload=payload,
        )
        return self._send(anchor_id, message)

    def request_deletion(
        self,
        anchor_id: str,
        target: EntryReference,
        *,
        reason: str = "",
    ) -> Message:
        """Sign and submit a deletion request for ``target``."""
        data: dict[str, Any] = {"target": target.to_dict()}
        if reason:
            data["reason"] = reason
        entry = self._sign_entry(
            Entry(data=data, author=self.client_id, signature="", kind=EntryKind.DELETION_REQUEST)
        )
        message = Message(
            kind=MessageKind.SUBMIT_DELETION,
            sender=self.client_id,
            payload={"entry": entry.to_dict()},
        )
        return self._send(anchor_id, message)

    def request_seal(self, anchor_id: str) -> Message:
        """Ask the producer to seal the queued entries into the next block."""
        message = Message(kind=MessageKind.SEAL_REQUEST, sender=self.client_id)
        return self._send(anchor_id, message)

    def idle_tick(self, anchor_id: str, *, ticks: int = 1) -> Message:
        """Advance the producer's clock and trigger its idle-block rule."""
        message = Message(
            kind=MessageKind.IDLE_TICK,
            sender=self.client_id,
            payload={"ticks": ticks},
        )
        return self._send(anchor_id, message)

    def find_entry(self, anchor_id: str, reference: EntryReference) -> Message:
        """Look an entry up on an anchor's replica by its original reference."""
        message = Message(
            kind=MessageKind.FIND_ENTRY,
            sender=self.client_id,
            payload={"reference": reference.to_dict()},
        )
        return self._send(anchor_id, message)

    def query_statistics(self, anchor_id: str) -> Message:
        """Fetch the operational counters of an anchor's replica."""
        message = Message(kind=MessageKind.QUERY_STATISTICS, sender=self.client_id)
        return self._send(anchor_id, message)

    def fetch_chain(self, anchor_id: str, *, from_block: int = 0) -> list[Block]:
        """Download the living chain from an anchor node (status-quo sync)."""
        message = Message(
            kind=MessageKind.SYNC_REQUEST,
            sender=self.client_id,
            payload={"from_block": from_block},
        )
        response = self.transport.send(anchor_id, message)
        if response is None or response.is_error:
            return []
        return [Block.from_dict(item) for item in response.payload.get("blocks", [])]
