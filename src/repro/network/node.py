"""Anchor nodes and clients.

Section IV-A: anchor nodes *"manage the full copy of the blockchain and build
the quorum"*; clients *"obtain the current status quo of the blockchain"*
from them (Section V-B4).  In this reproduction each :class:`AnchorNode`
holds its own :class:`~repro.core.chain.Blockchain` replica.  One node acts
as the block producer (the concrete leader-election mechanism is outside the
paper's scope); every other node replays the announced blocks and computes
the summary blocks locally, then the quorum compares summary hashes as the
synchronisation check of Section IV-B.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from repro.consensus.base import ConsensusEngine, NullConsensus
from repro.core.block import Block
from repro.core.chain import Blockchain
from repro.core.errors import (
    ChainIntegrityError,
    SelectiveDeletionError,
    SynchronisationError,
)
from repro.core.entry import Entry, EntryKind, EntryReference
from repro.core.events import ChainEvent, EventType
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import new_scheme, sign_entry
from repro.network.gossip import GossipOverlay
from repro.network.message import Message, MessageKind
from repro.network.transport import InMemoryTransport
from repro.sync.bootstrap import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_MAX_RETRIES,
    BootstrapError,
    BootstrapReport,
    SnapshotChunkCache,
    fetch_snapshot,
    fetch_snapshot_striped,
)
from repro.storage.snapshot import chain_from_payload


#: Caps on the per-replica byzantine bookkeeping, mirroring the EventBus
#: audit log: a flood of invalid blocks must cost the *sender* bandwidth,
#: not the receiver memory.  Both windows keep the newest items; evictions
#: are counted in ``sync_stats`` so reports surface sustained floods.
DEFAULT_REJECTED_BLOCKS_LIMIT = 256
DEFAULT_SEEN_ANNOUNCEMENTS_LIMIT = 4096


@dataclass
class SyncReport:
    """Result of one summary-hash synchronisation round."""

    block_number: int
    own_hash: str
    peer_results: dict[str, bool] = field(default_factory=dict)

    @property
    def diverged_peers(self) -> list[str]:
        """Peers whose locally computed summary block differs from ours."""
        return sorted(peer for peer, matches in self.peer_results.items() if not matches)

    @property
    def in_sync(self) -> bool:
        """True when every reachable peer agrees."""
        return not self.diverged_peers


class CatchUpStatus(str, Enum):
    """Why a synchronisation attempt ended the way it did."""

    #: Missed blocks were replayed; the replica now matches the peer's head.
    ADOPTED = "adopted"
    #: The peer had nothing newer; the replica was already up to date.
    ALREADY_CURRENT = "already-current"
    #: The peer never answered (offline, partitioned, or every retry lost).
    PEER_UNREACHABLE = "peer-unreachable"
    #: The gap spans a genesis-marker shift: the peer no longer serves the
    #: blocks this replica would need next — only a snapshot bootstrap
    #: (:meth:`AnchorNode.bootstrap_from`) can converge it.
    SNAPSHOT_REQUIRED = "snapshot-required"
    #: The consensus engine rejected a replayed block; replay stopped there.
    BLOCK_REJECTED = "block-rejected"
    #: :meth:`AnchorNode.synchronize` adopted a peer snapshot over the wire.
    BOOTSTRAPPED = "bootstrapped"


@dataclass(frozen=True)
class CatchUpResult:
    """Outcome of :meth:`AnchorNode.catch_up` / :meth:`AnchorNode.synchronize`.

    ``adopted`` counts the normal blocks replayed incrementally; ``detail``
    explains declines (which blocks are no longer served, which peer did not
    answer, why a block was rejected).
    """

    status: CatchUpStatus
    adopted: int = 0
    detail: str = ""

    @property
    def declined(self) -> bool:
        """True when the replica could not (fully) converge on the peer."""
        return self.status in (
            CatchUpStatus.PEER_UNREACHABLE,
            CatchUpStatus.SNAPSHOT_REQUIRED,
            CatchUpStatus.BLOCK_REJECTED,
        )


class AnchorNode:
    """A server node holding a full replica of the blockchain."""

    def __init__(
        self,
        node_id: str,
        chain: Blockchain,
        transport: InMemoryTransport,
        *,
        engine: Optional[ConsensusEngine] = None,
        is_producer: bool = False,
        producer_id: Optional[str] = None,
        gossip: Optional[GossipOverlay] = None,
        rejected_blocks_limit: int = DEFAULT_REJECTED_BLOCKS_LIMIT,
        seen_announcements_limit: int = DEFAULT_SEEN_ANNOUNCEMENTS_LIMIT,
    ) -> None:
        if rejected_blocks_limit < 1:
            raise ValueError("rejected_blocks_limit must be positive")
        if seen_announcements_limit < 1:
            raise ValueError("seen_announcements_limit must be positive")
        self.node_id = node_id
        self.chain = chain
        self.transport = transport
        self.engine = engine or NullConsensus()
        self.is_producer = is_producer
        self.producer_id = producer_id or node_id
        #: When set, seal announcements disseminate hop-by-hop through this
        #: overlay via one-way posts instead of a direct full broadcast.
        self.gossip = gossip
        self.peers: list[str] = []
        #: Bounded window over the most recently rejected blocks: a
        #: byzantine peer re-announcing invalid blocks forever must not be
        #: able to exhaust replica memory.  Evictions are counted in
        #: ``sync_stats["rejected_blocks_evicted"]``.
        self.rejected_blocks: deque[tuple[Block, str]] = deque(
            maxlen=rejected_blocks_limit
        )
        #: Announced blocks that arrived ahead of their predecessors.  Under
        #: scheduled delivery gossip hops genuinely overtake each other, so
        #: replicas buffer out-of-order announcements and apply them as the
        #: gaps fill (live replication stays byte-identical, Section IV-B).
        self._block_buffer: dict[int, Block] = {}
        #: Hashes of every gossiped block this node has already ingested —
        #: including rejected ones, so an invalid block is never re-forwarded
        #: (two neighbours re-gossiping a rejected block at each other would
        #: otherwise ping-pong forever).  An insertion-ordered dict used as a
        #: FIFO ring (like the EventBus audit log): when the cap is reached
        #: the oldest hash is evicted and counted.  Safety does not depend on
        #: the window — re-ingesting an evicted hash is caught by the
        #: head-number check in :meth:`_ingest_announced_block`.
        self._seen_announcements: dict[str, None] = {}
        self._seen_announcements_limit = seen_announcements_limit
        #: Serving side of the snapshot-bootstrap protocol: the serialised
        #: chain is cached per head, so streaming N chunks (plus their
        #: retransmissions) serialises once.
        self._snapshot_cache = SnapshotChunkCache(chain)
        #: Re-entrancy guard: while a digest-triggered pull is running, the
        #: nested virtual-time advances may deliver further digests to this
        #: very node — they must not start a second, overlapping pull.
        self._sync_in_progress = False
        #: Most advanced ``(peer, head)`` digest absorbed by the guard; the
        #: pull loop chases it once the running pull completes, so a pull
        #: from a lagging peer cannot strand the replica behind a peer whose
        #: digest happened to arrive mid-pull.
        self._deferred_digest: Optional[tuple[str, int]] = None
        #: Replica-synchronisation counters, aggregated into simulation
        #: reports by :class:`repro.sync.antientropy.AntiEntropyService`.
        self.sync_stats: dict[str, int] = {
            "digests_received": 0,
            "digests_behind": 0,
            "digests_diverged": 0,
            "catch_ups": 0,
            "blocks_replayed": 0,
            "digests_pushed_back": 0,
            "bootstraps": 0,
            "bootstrap_bytes": 0,
            "bootstrap_retransmits": 0,
            "chunks_served": 0,
            "snapshot_probes_served": 0,
            "rejected_blocks_evicted": 0,
            "announcements_evicted": 0,
        }
        if self.engine is not None and chain.block_finalizer is None:
            chain.block_finalizer = self.engine.prepare_block
        # The producer announces every block its chain seals — no matter
        # whether the seal was triggered by a submission, an explicit seal
        # request or an idle tick.  Announcing is a *subscription* to the
        # chain's event bus, not a call the block-production paths must each
        # remember to make.
        if self.is_producer:
            self._announce_subscription = chain.bus.subscribe(
                self._on_block_sealed, types=(EventType.BLOCK_SEALED,)
            )
        else:
            self._announce_subscription = None
        transport.register(node_id, self.handle_message)

    # ------------------------------------------------------------------ #
    # Peer management
    # ------------------------------------------------------------------ #

    def connect(self, peer_ids: list[str]) -> None:
        """Record the ids of the other anchor nodes."""
        self.peers = [peer for peer in peer_ids if peer != self.node_id]

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #

    def handle_message(self, message: Message) -> Optional[Message]:
        """Dispatch an incoming protocol message."""
        handlers = {
            MessageKind.SUBMIT_ENTRY: self._handle_submit,
            MessageKind.SUBMIT_DELETION: self._handle_submit,
            MessageKind.SEAL_REQUEST: self._handle_seal_request,
            MessageKind.IDLE_TICK: self._handle_idle_tick,
            MessageKind.FIND_ENTRY: self._handle_find_entry,
            MessageKind.QUERY_STATISTICS: self._handle_statistics,
            MessageKind.BLOCK_ANNOUNCE: self._handle_block_announce,
            MessageKind.SUMMARY_HASH: self._handle_summary_hash,
            MessageKind.SYNC_REQUEST: self._handle_sync_request,
            MessageKind.SYNC_DIGEST: self._handle_sync_digest,
            MessageKind.SNAPSHOT_REQUEST: self._handle_snapshot_request,
            MessageKind.VOTE_REQUEST: self._handle_vote_request,
            MessageKind.PRODUCER_CHANGE: self._handle_producer_change,
        }
        handler = handlers.get(message.kind)
        if handler is None:
            return message.error(self.node_id, f"unsupported message kind {message.kind.value}")
        try:
            return handler(message)
        except SelectiveDeletionError as exc:
            return message.error(self.node_id, str(exc))

    def _forward_to_producer(self, message: Message) -> Message:
        """Forward a producer-only message; reply with whatever it said."""
        response = self.transport.send(self.producer_id, message)
        if response is None:
            return message.error(self.node_id, "producer did not respond")
        return response

    def _handle_submit(self, message: Message) -> Message:
        if not self.is_producer:
            return self._forward_to_producer(message)
        entry = Entry.from_dict(message.payload["entry"])
        decision = self.chain.submit_signed_entry(entry)
        payload: dict[str, Any] = {}
        if decision is not None:
            payload["deletion_status"] = decision.status.value
            payload["deletion_reason"] = decision.reason
        if message.payload.get("defer_seal"):
            # Queue only; the client batches entries and seals explicitly.
            payload["queued"] = True
            payload["pending_entries"] = len(self.chain.pending_entries)
            return message.reply(MessageKind.ACK, self.node_id, payload)
        block = self.chain.seal_block()
        payload["block_number"] = block.block_number
        payload["entry_number"] = len(block.entries)
        return message.reply(MessageKind.ACK, self.node_id, payload)

    def _handle_seal_request(self, message: Message) -> Message:
        if not self.is_producer:
            return self._forward_to_producer(message)
        block = self.chain.seal_block()
        return message.reply(
            MessageKind.ACK,
            self.node_id,
            {"block_number": block.block_number, "entry_count": len(block.entries)},
        )

    def _handle_idle_tick(self, message: Message) -> Message:
        if not self.is_producer:
            return self._forward_to_producer(message)
        ticks = int(message.payload.get("ticks", 1))
        self.chain.clock.advance(ticks)
        block = self.chain.idle_tick()
        payload: dict[str, Any] = {"appended": block is not None}
        if block is not None:
            payload["block_number"] = block.block_number
        return message.reply(MessageKind.ACK, self.node_id, payload)

    def _handle_find_entry(self, message: Message) -> Message:
        # Lookups are served from the local replica — any anchor can answer.
        reference = EntryReference.from_dict(message.payload["reference"])
        located = self.chain.find_entry(reference)
        if located is None:
            return message.reply(MessageKind.SYNC_RESPONSE, self.node_id, {"found": False})
        block, entry = located
        return message.reply(
            MessageKind.SYNC_RESPONSE,
            self.node_id,
            {"found": True, "block_number": block.block_number, "entry": entry.to_dict()},
        )

    def _handle_statistics(self, message: Message) -> Message:
        return message.reply(
            MessageKind.SYNC_RESPONSE,
            self.node_id,
            {"statistics": self.chain.statistics()},
        )

    def _handle_block_announce(self, message: Message) -> Optional[Message]:
        block = Block.from_dict(message.payload["block"])
        gossip_meta = message.payload.get("gossip")
        if gossip_meta is not None:
            # One-way gossip hop: ingest (buffering out-of-order arrivals)
            # and re-forward while the item is fresh.  No response travels
            # back — the transport discards return values of posts anyway.
            fresh = self._ingest_announced_block(block)
            if fresh and self.gossip is not None:
                self._gossip_forward(
                    str(gossip_meta.get("item", block.block_hash)),
                    message.payload["block"],
                    hops=int(gossip_meta.get("hops", 0)) + 1,
                )
            return None
        verdict = self.engine.validate_block(block, self.chain.head)
        if not verdict.accepted:
            self._record_rejected_block(block, verdict.reason)
            return message.error(self.node_id, verdict.reason)
        self.chain.receive_block(block)
        return message.reply(
            MessageKind.ACK,
            self.node_id,
            {"head": self.chain.head.block_number, "head_hash": self.chain.head.block_hash},
        )

    def _record_rejected_block(self, block: Block, reason: str) -> None:
        """Remember a rejected block in the bounded window (oldest evicted)."""
        if len(self.rejected_blocks) == self.rejected_blocks.maxlen:
            self.sync_stats["rejected_blocks_evicted"] += 1
        self.rejected_blocks.append((block, reason))

    def _remember_announcement(self, block_hash: str) -> None:
        """Add a gossiped block hash to the bounded seen-window."""
        if block_hash in self._seen_announcements:
            return
        if len(self._seen_announcements) >= self._seen_announcements_limit:
            oldest = next(iter(self._seen_announcements))
            del self._seen_announcements[oldest]
            self.sync_stats["announcements_evicted"] += 1
        self._seen_announcements[block_hash] = None

    def _ingest_announced_block(self, block: Block) -> bool:
        """Buffer an announced block and apply every consecutive one.

        Returns ``True`` when the block was new to this replica (worth
        re-forwarding), ``False`` for duplicates and already-covered numbers.
        """
        if block.block_hash in self._seen_announcements:
            return False
        if block.block_number <= self.chain.head.block_number:
            return False
        if block.block_number in self._block_buffer:
            return False
        self._remember_announcement(block.block_hash)
        self._block_buffer[block.block_number] = block
        self._drain_block_buffer()
        return True

    def _drain_block_buffer(self) -> None:
        while True:
            block = self._block_buffer.pop(self.chain.next_block_number, None)
            if block is None:
                return
            verdict = self.engine.validate_block(block, self.chain.head)
            if not verdict.accepted:
                self._record_rejected_block(block, verdict.reason)
                return
            self.chain.receive_block(block)

    def _handle_vote_request(self, message: Message) -> Message:
        """Vote on a producer-failover proposal (Section IV-A quorum duty).

        The ballot names a candidate and the head block number it claims;
        this replica approves when the candidate is at least as up to date
        as itself — under real message delay replicas progress unevenly, so
        the vote outcome (and its timing) depends on who has seen what.
        """
        candidate = str(message.payload.get("candidate", ""))
        claimed_head = int(message.payload.get("candidate_head", -1))
        approve = bool(candidate) and claimed_head >= self.chain.head.block_number
        return message.reply(
            MessageKind.VOTE_RESPONSE,
            self.node_id,
            {
                "proposal_id": message.payload.get("proposal_id"),
                "approve": approve,
                "head": self.chain.head.block_number,
            },
        )

    def _handle_producer_change(self, message: Message) -> Message:
        """Adopt a quorum-decided producer change."""
        self.set_producer(str(message.payload["producer"]))
        return message.reply(
            MessageKind.ACK, self.node_id, {"producer": self.producer_id}
        )

    def set_producer(self, producer_id: str) -> None:
        """Point this node at a (possibly new) block producer.

        Becoming the producer attaches the seal-announcement subscription;
        losing the role detaches it, so exactly one node announces.
        """
        self.producer_id = producer_id
        becoming = producer_id == self.node_id
        if becoming and not self.is_producer:
            self.is_producer = True
            self._announce_subscription = self.chain.bus.subscribe(
                self._on_block_sealed, types=(EventType.BLOCK_SEALED,)
            )
        elif not becoming and self.is_producer:
            self.is_producer = False
            if self._announce_subscription is not None:
                self.chain.bus.unsubscribe(self._announce_subscription)
                self._announce_subscription = None

    def _handle_summary_hash(self, message: Message) -> Message:
        block_number = int(message.payload["block_number"])
        expected_hash = str(message.payload["block_hash"])
        try:
            own = self.chain.block_by_number(block_number)
        except KeyError:
            return message.reply(
                MessageKind.SYNC_RESPONSE, self.node_id, {"match": False, "reason": "block unknown"}
            )
        matches = own.is_summary and own.block_hash == expected_hash
        return message.reply(MessageKind.SYNC_RESPONSE, self.node_id, {"match": matches})

    def _handle_sync_request(self, message: Message) -> Message:
        from_number = int(message.payload.get("from_block", self.chain.genesis_marker))
        if message.payload.get("contiguous") and from_number < self.chain.genesis_marker:
            # A catch-up needs the blocks *right after* the requester's head,
            # and those were physically deleted by a marker shift.  Decline
            # without shipping the living chain — the requester would have
            # to discard it and bootstrap anyway, so serialising it here
            # would just double the bytes of every wire bootstrap.
            return message.reply(
                MessageKind.SYNC_RESPONSE,
                self.node_id,
                {
                    "blocks": [],
                    "genesis_marker": self.chain.genesis_marker,
                    "snapshot_required": True,
                },
            )
        blocks = [
            block.to_dict()
            for block in self.chain.blocks
            if block.block_number >= from_number
        ]
        return message.reply(
            MessageKind.SYNC_RESPONSE,
            self.node_id,
            {"blocks": blocks, "genesis_marker": self.chain.genesis_marker},
        )

    def _handle_snapshot_request(self, message: Message) -> Message:
        """Serve one bounded chunk of the serialised local replica.

        Every chunk carries the snapshot manifest, so the puller can detect
        a head that moved mid-transfer (the manifest's head hash changes)
        and restart instead of assembling chunks of different snapshots.
        """
        chunk_size = int(message.payload.get("chunk_size", DEFAULT_CHUNK_SIZE))
        index = int(message.payload.get("chunk", 0))
        if message.payload.get("probe"):
            # Probe mode: advertise the snapshot's manifest and this node's
            # serving load without shipping data, so a stale replica can
            # rank candidate peers (nearest and least loaded first) before
            # committing to a multi-chunk transfer.
            try:
                manifest = self._snapshot_cache.manifest(chunk_size)
            except BootstrapError as exc:
                return message.error(self.node_id, str(exc))
            self.sync_stats["snapshot_probes_served"] += 1
            return message.reply(
                MessageKind.SNAPSHOT_CHUNK,
                self.node_id,
                {
                    "manifest": manifest.to_dict(),
                    "load": self.sync_stats["chunks_served"],
                },
            )
        try:
            manifest = self._snapshot_cache.manifest(chunk_size)
            data = self._snapshot_cache.chunk(index, chunk_size)
        except BootstrapError as exc:
            return message.error(self.node_id, str(exc))
        self.sync_stats["chunks_served"] += 1
        return message.reply(
            MessageKind.SNAPSHOT_CHUNK,
            self.node_id,
            {"manifest": manifest.to_dict(), "chunk": index, "data": data},
        )

    def _handle_sync_digest(self, message: Message) -> None:
        """Anti-entropy beacon: pull from the sender when behind, push the
        local digest back when ahead.

        The pull itself (catch-up, possibly a full snapshot bootstrap) runs
        inside this delivery event, consuming virtual time on a scheduled
        transport; digests arriving while it runs are absorbed by the
        re-entrancy guard.  The push-back turns the one-way digest gossip
        into *push-pull*: a stale replica whose own digest happens to reach
        an up-to-date peer learns of the newer head in the same round
        instead of waiting for that peer's fan-out to select it — halving
        convergence rounds on sparse overlays.  Push-backs fire only when
        strictly ahead, so two converged replicas never ping-pong.
        """
        self.sync_stats["digests_received"] += 1
        peer_head = int(message.payload.get("head", -1))
        if peer_head < self.chain.head.block_number:
            self.sync_stats["digests_pushed_back"] += 1
            self.transport.post(
                message.sender,
                Message(
                    kind=MessageKind.SYNC_DIGEST,
                    sender=self.node_id,
                    payload={
                        "head": self.chain.head.block_number,
                        "head_hash": self.chain.head.block_hash,
                        "genesis_marker": self.chain.genesis_marker,
                        "pushback": True,
                    },
                ),
            )
            return None
        if peer_head == self.chain.head.block_number:
            peer_hash = str(message.payload.get("head_hash", ""))
            if peer_hash and peer_hash != self.chain.head.block_hash:
                # Same height, different block: a fork.  Replaying cannot
                # reconcile it (the peer's blocks do not link to our head) —
                # the paper treats divergence as a detected failure
                # (Section IV-B), so surface it in the counters instead of
                # attempting a pull that must fail.
                self.sync_stats["digests_diverged"] += 1
            return None
        if self._sync_in_progress:
            best = self._deferred_digest
            if best is None or peer_head > best[1]:
                self._deferred_digest = (message.sender, peer_head)
            return None
        self.sync_stats["digests_behind"] += 1
        self.synchronize(message.sender)
        return None

    # ------------------------------------------------------------------ #
    # Producer-side operations
    # ------------------------------------------------------------------ #

    def _on_block_sealed(self, event: ChainEvent) -> None:
        """Event-bus subscriber: announce every block the chain seals."""
        block = event.payload.get("block")
        if isinstance(block, Block):
            self._announce(block)

    def _announce(self, block: Block) -> None:
        if self.gossip is not None:
            # Gossip-backed dissemination: seed the overlay with the sealed
            # block; peers re-forward hop by hop (over the kernel's virtual
            # clock when the transport is scheduled).
            self._gossip_forward(block.block_hash, block.to_dict(), hops=0)
            return
        message = Message(
            kind=MessageKind.BLOCK_ANNOUNCE,
            sender=self.node_id,
            payload={"block": block.to_dict()},
        )
        self.transport.broadcast(self.node_id, self.peers, message)

    def _gossip_forward(self, item_key: str, block_payload: dict, *, hops: int) -> None:
        assert self.gossip is not None
        message = Message(
            kind=MessageKind.BLOCK_ANNOUNCE,
            sender=self.node_id,
            payload={
                "block": block_payload,
                "gossip": {"item": item_key, "hops": hops},
            },
        )
        self.transport.publish(
            self.node_id, self.gossip.targets(self.node_id, item_key), message
        )

    def produce_block(self) -> Block:
        """Seal the pending entries locally; the sealed-block subscription
        announces the result to all peers."""
        if not self.is_producer:
            raise SelectiveDeletionError(f"node {self.node_id} is not the block producer")
        return self.chain.seal_block()

    # ------------------------------------------------------------------ #
    # Synchronisation check (Section IV-B)
    # ------------------------------------------------------------------ #

    def latest_summary_block(self) -> Optional[Block]:
        """Most recent summary block of the local replica."""
        for block in reversed(self.chain.blocks):
            if block.is_summary:
                return block
        return None

    def catch_up(self, peer_id: str) -> CatchUpResult:
        """Fetch missed blocks from a peer and replay them locally.

        A node that was offline (Section V-B4's isolation discussion) asks a
        reachable anchor node for everything after its own head, applies the
        missed *normal* blocks in order and recomputes the summary blocks
        itself — the same path as live replication, so the caught-up replica
        ends byte-identical to the peer.

        Return contract: a :class:`CatchUpResult` whose ``status`` states
        the outcome —

        * ``ADOPTED`` — ``adopted`` blocks were replayed; the replica now
          matches the peer's head,
        * ``ALREADY_CURRENT`` — the peer had nothing newer,
        * ``PEER_UNREACHABLE`` — the peer never answered (``detail`` carries
          the transport's reason); retry against another anchor,
        * ``SNAPSHOT_REQUIRED`` — the gap spans a genesis-marker shift: the
          peer physically deleted the blocks this replica needs next
          (``detail`` names the missing range); call
          :meth:`bootstrap_from` (or :meth:`synchronize`, which does both),
        * ``BLOCK_REJECTED`` — the consensus engine refused a replayed block
          (``detail`` carries its reason); the block is recorded in
          :attr:`rejected_blocks`.
        """
        self.sync_stats["catch_ups"] += 1
        request = Message(
            kind=MessageKind.SYNC_REQUEST,
            sender=self.node_id,
            payload={"from_block": self.chain.head.block_number + 1, "contiguous": True},
        )
        response = self.transport.send(peer_id, request)
        if response is None or response.is_error:
            reason = "" if response is None else str(response.payload.get("reason", ""))
            return CatchUpResult(
                status=CatchUpStatus.PEER_UNREACHABLE,
                detail=reason or f"no response from {peer_id!r}",
            )
        peer_marker = int(response.payload.get("genesis_marker", 0))
        if response.payload.get("snapshot_required"):
            # The peer declined without shipping any blocks: our next-needed
            # block lies before its marker and was physically deleted.
            return CatchUpResult(
                status=CatchUpStatus.SNAPSHOT_REQUIRED,
                detail=(
                    f"blocks {self.chain.next_block_number}..{peer_marker - 1} "
                    f"are no longer served (peer's genesis marker shifted to "
                    f"{peer_marker}); adopt a snapshot via bootstrap_from"
                ),
            )
        adopted = 0
        status = CatchUpStatus.ALREADY_CURRENT
        detail = ""
        for payload in response.payload.get("blocks", []):
            block = Block.from_dict(payload)
            if block.is_summary:
                continue  # summary blocks are recomputed locally (Section IV-B)
            if block.block_number > self.chain.next_block_number:
                # Defence in depth for peers that did ship blocks despite a
                # marker past our head: the needed predecessors are gone.
                status = CatchUpStatus.SNAPSHOT_REQUIRED
                detail = (
                    f"blocks {self.chain.next_block_number}..{block.block_number - 1} "
                    f"are no longer served (peer's genesis marker shifted to "
                    f"{peer_marker}); adopt a snapshot via bootstrap_from"
                )
                break
            if block.block_number < self.chain.next_block_number:
                continue  # already part of the local replica
            verdict = self.engine.validate_block(block, self.chain.head)
            if not verdict.accepted:
                self._record_rejected_block(block, verdict.reason)
                status = CatchUpStatus.BLOCK_REJECTED
                detail = verdict.reason
                break
            try:
                self.chain.receive_block(block)
            except ChainIntegrityError as exc:
                # A same-height fork: the peer's block does not link to our
                # head.  Forks are *detected* (sync_check), never silently
                # replayed over — stop and report instead of crashing the
                # caller (which may be a kernel event handler).
                self._record_rejected_block(block, str(exc))
                status = CatchUpStatus.BLOCK_REJECTED
                detail = str(exc)
                break
            adopted += 1
        if adopted and status is CatchUpStatus.ALREADY_CURRENT:
            status = CatchUpStatus.ADOPTED
        self.sync_stats["blocks_replayed"] += adopted
        # Gossiped announcements that overtook the gap can now be applied.
        self._drain_block_buffer()
        return CatchUpResult(status=status, adopted=adopted, detail=detail)

    def bootstrap_from(
        self,
        peer_id: str,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> BootstrapReport:
        """Adopt a peer's snapshot over the wire (Section V-B4 status quo).

        Pulls the peer's serialised chain in bounded, retransmitted chunks
        (:func:`repro.sync.bootstrap.fetch_snapshot`), rebuilds the chain,
        verifies the hash chain, the rebuilt index *and* that the rebuilt
        head hash matches the manifest the peer advertised, then replaces
        the local replica wholesale via :meth:`adopt_chain`.  On failure the
        local replica is untouched and the report carries the reason.
        """
        report = fetch_snapshot(
            self.transport,
            self.node_id,
            peer_id,
            chunk_size=chunk_size,
            max_retries=max_retries,
        )
        return self._adopt_snapshot_report(report)

    def bootstrap_from_best(
        self,
        peer_ids: Optional[list[str]] = None,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> BootstrapReport:
        """Adopt a snapshot from the best-ranked reachable peers.

        Candidates (default: every connected peer) are probed for proximity
        and serving load, and the chunks are striped concurrently across all
        donors serving the winning head
        (:func:`repro.sync.bootstrap.fetch_snapshot_striped`) — the
        load-aware flavour of :meth:`bootstrap_from` that the digest-
        triggered pull path uses, so a recovering replica neither hammers
        one donor nor pays a far peer's latency when a near one serves the
        same head.
        """
        candidates = list(peer_ids) if peer_ids is not None else list(self.peers)
        report = fetch_snapshot_striped(
            self.transport,
            self.node_id,
            candidates,
            chunk_size=chunk_size,
            max_retries=max_retries,
        )
        return self._adopt_snapshot_report(report)

    def _adopt_snapshot_report(self, report: BootstrapReport) -> BootstrapReport:
        """Verify a fetched snapshot and adopt it; shared by both fetchers."""
        if not report.succeeded:
            return report
        assert report.payload is not None and report.manifest is not None
        try:
            chain = chain_from_payload(
                report.payload,
                clock=self.chain.clock,
                schema=self.chain.schema,
                authorizer=self.chain.authorizer,
                cohesion_checker=self.chain.cohesion_checker,
                event_bus=self.chain.bus,
            )
        except SelectiveDeletionError as exc:
            report.succeeded = False
            report.reason = f"snapshot rejected: {exc}"
            return report
        if chain.head.block_hash != report.manifest.head_hash:
            report.succeeded = False
            report.reason = "rebuilt head hash does not match the peer's manifest"
            return report
        self.adopt_chain(chain)
        self.sync_stats["bootstraps"] += 1
        self.sync_stats["bootstrap_bytes"] += report.payload_bytes
        self.sync_stats["bootstrap_retransmits"] += report.retransmits
        return report

    def synchronize(
        self,
        peer_id: str,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> CatchUpResult:
        """Converge on ``peer_id`` whatever the gap: catch up, else bootstrap.

        Incremental catch-up first; if that declines because the gap spans a
        marker shift, pull the peer's snapshot and finish with a top-off
        catch-up for blocks the peer sealed while the chunks streamed.  This
        is the pull path anti-entropy digests trigger.  Digests absorbed
        while the pull runs are not wasted: the most advanced one is chased
        afterwards, so the call converges on the best peer it *heard of*,
        not merely the one that happened to trigger it.
        """
        result = self._synchronize_once(
            peer_id, chunk_size=chunk_size, max_retries=max_retries
        )
        # Chase digests deferred by the re-entrancy guard.  Each iteration
        # consumes one deferred digest and only re-pulls while its sender
        # claims a strictly newer head, so the loop ends once the backlog
        # of mid-pull arrivals is worked off.
        while True:
            deferred = self._deferred_digest
            self._deferred_digest = None
            if deferred is None or deferred[1] <= self.chain.head.block_number:
                return result
            result = self._synchronize_once(
                deferred[0], chunk_size=chunk_size, max_retries=max_retries
            )

    def _synchronize_once(
        self,
        peer_id: str,
        *,
        chunk_size: int,
        max_retries: int,
    ) -> CatchUpResult:
        """One guarded catch-up-or-bootstrap pull against a single peer."""
        self._sync_in_progress = True
        try:
            result = self.catch_up(peer_id)
            if result.status is not CatchUpStatus.SNAPSHOT_REQUIRED:
                return result
            # Load-aware recovery: the digest sender proved it serves the
            # needed head, but every connected peer is a candidate donor —
            # rank them and stripe the chunks across the nearest ones.
            candidates = [peer_id] + [peer for peer in self.peers if peer != peer_id]
            report = self.bootstrap_from_best(
                candidates, chunk_size=chunk_size, max_retries=max_retries
            )
            if not report.succeeded:
                return CatchUpResult(
                    status=CatchUpStatus.SNAPSHOT_REQUIRED,
                    detail=f"bootstrap failed: {report.reason}",
                )
            top_off = self.catch_up(report.peer_id or peer_id)
            assert report.manifest is not None
            return CatchUpResult(
                status=CatchUpStatus.BOOTSTRAPPED,
                adopted=top_off.adopted,
                detail=(
                    f"adopted snapshot at head {report.manifest.head_number} "
                    f"({report.chunks_fetched} chunks, {report.retransmits} retransmits)"
                ),
            )
        finally:
            self._sync_in_progress = False

    def adopt_chain(self, chain: Blockchain) -> None:
        """Replace the local replica wholesale (snapshot bootstrap).

        Re-wires everything the constructor wired against the old chain: the
        consensus finalizer hook, the seal-announcement subscription
        (producers only) and the snapshot chunk cache.  Buffered out-of-order
        announcements the new head already covers are discarded; newer ones
        are drained against the adopted chain.
        """
        if self._announce_subscription is not None:
            self.chain.bus.unsubscribe(self._announce_subscription)
            self._announce_subscription = None
        self.chain = chain
        if self.engine is not None and chain.block_finalizer is None:
            chain.block_finalizer = self.engine.prepare_block
        if self.is_producer:
            self._announce_subscription = chain.bus.subscribe(
                self._on_block_sealed, types=(EventType.BLOCK_SEALED,)
            )
        self._snapshot_cache = SnapshotChunkCache(chain)
        self._block_buffer = {
            number: block
            for number, block in self._block_buffer.items()
            if number >= chain.next_block_number
        }
        self._drain_block_buffer()

    def sync_check(self, *, raise_on_divergence: bool = False) -> SyncReport:
        """Compare the latest locally computed summary block with all peers."""
        summary = self.latest_summary_block()
        if summary is None:
            return SyncReport(block_number=-1, own_hash="")
        message = Message(
            kind=MessageKind.SUMMARY_HASH,
            sender=self.node_id,
            payload={"block_number": summary.block_number, "block_hash": summary.block_hash},
        )
        responses = self.transport.broadcast(self.node_id, self.peers, message)
        report = SyncReport(block_number=summary.block_number, own_hash=summary.block_hash)
        for peer, response in responses.items():
            if response is None or response.is_error:
                report.peer_results[peer] = False
            else:
                report.peer_results[peer] = bool(response.payload.get("match", False))
        if raise_on_divergence and not report.in_sync:
            raise SynchronisationError(
                f"summary block {summary.block_number} diverges on peers {report.diverged_peers}"
            )
        return report


class ClientNode:
    """A light client submitting entries and deletion requests to anchors."""

    def __init__(
        self,
        client_id: str,
        transport: InMemoryTransport,
        *,
        scheme_name: str = "simplified",
        key_pair: Optional[KeyPair] = None,
    ) -> None:
        self.client_id = client_id
        self.transport = transport
        self.scheme = new_scheme(scheme_name)
        self.key_pair = key_pair

    def _sign_entry(self, entry: Entry) -> Entry:
        return sign_entry(self.scheme, entry, self.client_id, self.key_pair)

    def _send(self, anchor_id: str, message: Message) -> Message:
        response = self.transport.send(anchor_id, message)
        if response is None:
            return message.error(self.client_id, "no response from anchor node")
        return response

    def submit_entry(
        self,
        anchor_id: str,
        data: dict[str, Any],
        *,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        defer_seal: bool = False,
    ) -> Message:
        """Sign a data entry locally and submit it to an anchor node.

        With ``defer_seal`` the entry is only queued in the producer's
        pending pool; call :meth:`request_seal` to seal a batch explicitly.
        """
        entry = self._sign_entry(
            Entry(
                data=data,
                author=self.client_id,
                signature="",
                expires_at_time=expires_at_time,
                expires_at_block=expires_at_block,
            )
        )
        payload: dict[str, Any] = {"entry": entry.to_dict()}
        if defer_seal:
            payload["defer_seal"] = True
        message = Message(
            kind=MessageKind.SUBMIT_ENTRY,
            sender=self.client_id,
            payload=payload,
        )
        return self._send(anchor_id, message)

    def submit_entry_async(
        self,
        anchor_id: str,
        data: dict[str, Any],
        *,
        on_response: Callable[[Message], None],
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        defer_seal: bool = False,
    ) -> None:
        """:meth:`submit_entry` without the virtual-time wait.

        The signed entry goes out immediately and ``on_response`` fires when
        the anchor's response arrives (or with an error message on a silent
        transport), so many submissions — this client's or others' — overlap
        on the kernel.  Requires a kernel-backed transport.
        """
        entry = self._sign_entry(
            Entry(
                data=data,
                author=self.client_id,
                signature="",
                expires_at_time=expires_at_time,
                expires_at_block=expires_at_block,
            )
        )
        payload: dict[str, Any] = {"entry": entry.to_dict()}
        if defer_seal:
            payload["defer_seal"] = True
        message = Message(
            kind=MessageKind.SUBMIT_ENTRY,
            sender=self.client_id,
            payload=payload,
        )
        self.transport.send_async(
            anchor_id,
            message,
            on_response=lambda response: on_response(
                response
                if response is not None
                else message.error(self.client_id, "no response from anchor node")
            ),
        )

    def request_deletion(
        self,
        anchor_id: str,
        target: EntryReference,
        *,
        reason: str = "",
    ) -> Message:
        """Sign and submit a deletion request for ``target``."""
        data: dict[str, Any] = {"target": target.to_dict()}
        if reason:
            data["reason"] = reason
        entry = self._sign_entry(
            Entry(data=data, author=self.client_id, signature="", kind=EntryKind.DELETION_REQUEST)
        )
        message = Message(
            kind=MessageKind.SUBMIT_DELETION,
            sender=self.client_id,
            payload={"entry": entry.to_dict()},
        )
        return self._send(anchor_id, message)

    def request_seal(self, anchor_id: str) -> Message:
        """Ask the producer to seal the queued entries into the next block."""
        message = Message(kind=MessageKind.SEAL_REQUEST, sender=self.client_id)
        return self._send(anchor_id, message)

    def idle_tick(self, anchor_id: str, *, ticks: int = 1) -> Message:
        """Advance the producer's clock and trigger its idle-block rule."""
        message = Message(
            kind=MessageKind.IDLE_TICK,
            sender=self.client_id,
            payload={"ticks": ticks},
        )
        return self._send(anchor_id, message)

    def find_entry(self, anchor_id: str, reference: EntryReference) -> Message:
        """Look an entry up on an anchor's replica by its original reference."""
        message = Message(
            kind=MessageKind.FIND_ENTRY,
            sender=self.client_id,
            payload={"reference": reference.to_dict()},
        )
        return self._send(anchor_id, message)

    def query_statistics(self, anchor_id: str) -> Message:
        """Fetch the operational counters of an anchor's replica."""
        message = Message(kind=MessageKind.QUERY_STATISTICS, sender=self.client_id)
        return self._send(anchor_id, message)

    def fetch_chain(self, anchor_id: str, *, from_block: int = 0) -> list[Block]:
        """Download the living chain from an anchor node (status-quo sync)."""
        message = Message(
            kind=MessageKind.SYNC_REQUEST,
            sender=self.client_id,
            payload={"from_block": from_block},
        )
        response = self.transport.send(anchor_id, message)
        if response is None or response.is_error:
            return []
        return [Block.from_dict(item) for item in response.payload.get("blocks", [])]
