"""Chameleon hash with trapdoor, for the redactable-chain baseline.

Section III of the paper discusses related work on redactable blockchains
built from chameleon hashes (Ateniese et al.; Camenisch et al.'s
chameleon-hashes with ephemeral trapdoors) and argues they *"leave the
responsibility with the key owners and produce a lot [of] effort"*.  To make
that comparison concrete, the baseline package implements a working
chameleon-hash redactable chain; this module supplies the primitive.

The construction is the classic discrete-log chameleon hash over a
Schnorr-style prime-order subgroup:

* public parameters: a safe prime ``p = 2q + 1``, a generator ``g`` of the
  order-``q`` subgroup, and a public key ``h = g^x mod p``,
* trapdoor: the exponent ``x``,
* hash:   ``CH(m, r) = g^H(m) * h^r mod p``,
* collision (requires the trapdoor): given ``(m, r)`` and a new message
  ``m'``, output ``r' = r + (H(m) - H(m')) / x  (mod q)`` so that
  ``CH(m', r') == CH(m, r)``.

Whoever holds the trapdoor can rewrite a block's content without changing its
hash — which is exactly the centralisation-of-trust drawback the paper's
concept avoids.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import canonical_json

#: A 1024-bit safe prime (p = 2q + 1 with q prime), fixed so parameter
#: generation is instantaneous and deterministic for tests and benchmarks.
#: This is the well-known RFC 2409 Oakley Group 2 prime, which is a safe prime.
DEFAULT_SAFE_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381"
    "FFFFFFFFFFFFFFFF",
    16,
)

#: Generator of the order-q subgroup: 4 = 2^2 is always a quadratic residue,
#: hence generates the subgroup of order q for a safe prime p = 2q + 1.
DEFAULT_GENERATOR = 4


def _message_digest(message: Any, q: int) -> int:
    """Map an arbitrary JSON-serialisable message into Z_q."""
    digest = hashlib.sha256(canonical_json(message).encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % q


@dataclass(frozen=True)
class ChameleonParameters:
    """Public parameters plus (optionally secret) trapdoor of a chameleon hash."""

    p: int
    q: int
    g: int
    public_key: int
    trapdoor: int

    def public_only(self) -> "ChameleonParameters":
        """Return a copy with the trapdoor removed (set to 0)."""
        return ChameleonParameters(p=self.p, q=self.q, g=self.g, public_key=self.public_key, trapdoor=0)

    @property
    def has_trapdoor(self) -> bool:
        """True when the trapdoor exponent is present."""
        return self.trapdoor != 0


@dataclass(frozen=True)
class Collision:
    """Result of a redaction: the new randomness keeping the digest unchanged."""

    new_message_digest: int
    new_randomness: int
    digest: int


class ChameleonHash:
    """Discrete-log chameleon hash with trapdoor-based collision finding."""

    def __init__(self, parameters: ChameleonParameters) -> None:
        self.parameters = parameters

    @classmethod
    def generate(
        cls,
        *,
        p: int = DEFAULT_SAFE_PRIME,
        g: int = DEFAULT_GENERATOR,
        trapdoor: int | None = None,
    ) -> "ChameleonHash":
        """Create an instance with a fresh (or supplied) trapdoor."""
        q = (p - 1) // 2
        if trapdoor is None:
            trapdoor = secrets.randbelow(q - 2) + 2
        if not 2 <= trapdoor < q:
            raise ValueError("trapdoor out of range")
        public_key = pow(g, trapdoor, p)
        return cls(ChameleonParameters(p=p, q=q, g=g, public_key=public_key, trapdoor=trapdoor))

    @classmethod
    def from_seed(cls, seed: str, *, p: int = DEFAULT_SAFE_PRIME, g: int = DEFAULT_GENERATOR) -> "ChameleonHash":
        """Derive the trapdoor deterministically from a seed (for tests)."""
        q = (p - 1) // 2
        digest = hashlib.sha256(f"chameleon:{seed}".encode("utf-8")).digest()
        trapdoor = (int.from_bytes(digest, "big") % (q - 2)) + 2
        return cls.generate(p=p, g=g, trapdoor=trapdoor)

    def random_nonce(self) -> int:
        """Sample fresh hashing randomness r from Z_q."""
        return secrets.randbelow(self.parameters.q - 1) + 1

    def digest(self, message: Any, randomness: int) -> int:
        """Compute ``CH(message, randomness) = g^H(m) * h^r mod p``."""
        params = self.parameters
        exponent = _message_digest(message, params.q)
        return (pow(params.g, exponent, params.p) * pow(params.public_key, randomness % params.q, params.p)) % params.p

    def verify(self, message: Any, randomness: int, digest: int) -> bool:
        """Check that ``(message, randomness)`` hashes to ``digest``."""
        return self.digest(message, randomness) == digest

    def find_collision(self, old_message: Any, old_randomness: int, new_message: Any) -> Collision:
        """Compute randomness for ``new_message`` preserving the old digest.

        Requires the trapdoor; without it the operation is computationally
        infeasible (that is the whole point of a chameleon hash).
        """
        params = self.parameters
        if not params.has_trapdoor:
            raise PermissionError("collision finding requires the chameleon trapdoor")
        old_exp = _message_digest(old_message, params.q)
        new_exp = _message_digest(new_message, params.q)
        inverse_trapdoor = pow(params.trapdoor, -1, params.q)
        new_randomness = (old_randomness + (old_exp - new_exp) * inverse_trapdoor) % params.q
        digest = self.digest(old_message, old_randomness)
        if self.digest(new_message, new_randomness) != digest:
            raise ArithmeticError("collision computation failed; parameters are inconsistent")
        return Collision(new_message_digest=new_exp, new_randomness=new_randomness, digest=digest)

    def public_instance(self) -> "ChameleonHash":
        """Return a verification-only instance without the trapdoor."""
        return ChameleonHash(self.parameters.public_only())
