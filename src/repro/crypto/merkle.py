"""Merkle trees for summary-block redundancy.

Section V-B1 of the paper hampers the 51 % attack by storing, inside each new
summary block, either the full data of a middle sequence or *"at least the
Merkle root as reference for validity to reduce the amount of data"*
(Fig. 9).  This module provides the Merkle tree, root computation and
membership proofs needed for that redundancy mode and for the off-chain
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.crypto.hashing import hash_hex, hash_pair

#: Root value of an empty tree.  Hashing an explicit marker keeps the empty
#: case distinguishable from a tree over a single empty string.
EMPTY_TREE_ROOT = hash_hex({"merkle": "empty"})


@dataclass(frozen=True)
class MerkleProof:
    """Membership proof for a single leaf.

    Attributes
    ----------
    leaf_index:
        Position of the proven leaf in the original leaf sequence.
    leaf_hash:
        Hash of the proven leaf.
    path:
        Sibling hashes from the leaf up to the root, each tagged with the
        side (``"left"`` or ``"right"``) the sibling sits on.
    root:
        Expected root hash the proof verifies against.
    """

    leaf_index: int
    leaf_hash: str
    path: tuple[tuple[str, str], ...]
    root: str

    def verify(self) -> bool:
        """Recompute the root from the path and compare with ``self.root``."""
        current = self.leaf_hash
        for side, sibling in self.path:
            if side == "left":
                current = hash_pair(sibling, current)
            elif side == "right":
                current = hash_pair(current, sibling)
            else:
                return False
        return current == self.root

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation of the proof."""
        return {
            "leaf_index": self.leaf_index,
            "leaf_hash": self.leaf_hash,
            "path": [list(step) for step in self.path],
            "root": self.root,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MerkleProof":
        """Rebuild a proof from :meth:`to_dict` output."""
        return cls(
            leaf_index=int(payload["leaf_index"]),
            leaf_hash=str(payload["leaf_hash"]),
            path=tuple((str(side), str(sibling)) for side, sibling in payload["path"]),
            root=str(payload["root"]),
        )


@dataclass
class MerkleTree:
    """Binary Merkle tree over arbitrary JSON-serialisable leaves.

    Odd levels duplicate their last node (the Bitcoin convention), so the
    tree is defined for any positive number of leaves.  An empty tree has the
    sentinel root :data:`EMPTY_TREE_ROOT`.
    """

    leaves: list[Any] = field(default_factory=list)
    _levels: list[list[str]] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        self._rebuild()

    def _rebuild(self) -> None:
        # Every rebuild rehashes every leaf: ``leaves`` is a public list, so
        # callers may replace elements in place between rebuilds and a cache
        # keyed on position would silently commit to stale content.  Leaf
        # hashing is nevertheless cheap for domain objects (entries, blocks):
        # hash_hex composes their memoised canonical serialisation instead of
        # re-serialising them (see repro.crypto.hashing.canonical_json).
        leaf_hashes = [hash_hex(leaf) for leaf in self.leaves]
        levels: list[list[str]] = [leaf_hashes]
        current = leaf_hashes
        while len(current) > 1:
            if len(current) % 2 == 1:
                current = current + [current[-1]]
            current = [hash_pair(current[i], current[i + 1]) for i in range(0, len(current), 2)]
            levels.append(current)
        self._levels = levels

    @property
    def root(self) -> str:
        """Root hash of the tree (sentinel value for an empty tree)."""
        if not self.leaves:
            return EMPTY_TREE_ROOT
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self.leaves)

    def append(self, leaf: Any) -> None:
        """Add a leaf and rebuild the tree."""
        self.leaves.append(leaf)
        self._rebuild()

    def extend(self, leaves: Iterable[Any]) -> None:
        """Add several leaves and rebuild the tree once."""
        self.leaves.extend(leaves)
        self._rebuild()

    def proof(self, index: int) -> MerkleProof:
        """Build a membership proof for the leaf at ``index``."""
        if not self.leaves:
            raise IndexError("cannot build a proof over an empty tree")
        if index < 0 or index >= len(self.leaves):
            raise IndexError(f"leaf index {index} out of range [0, {len(self.leaves)})")

        path: list[tuple[str, str]] = []
        position = index
        for level in self._levels[:-1]:
            padded = level if len(level) % 2 == 0 else level + [level[-1]]
            if position % 2 == 0:
                path.append(("right", padded[position + 1]))
            else:
                path.append(("left", padded[position - 1]))
            position //= 2
        return MerkleProof(
            leaf_index=index,
            leaf_hash=self._levels[0][index],
            path=tuple(path),
            root=self.root,
        )

    def contains(self, leaf: Any) -> bool:
        """Return True if an equal leaf is present (by hash comparison)."""
        target = hash_hex(leaf)
        return target in self._levels[0] if self._levels else False


def merkle_root(leaves: Sequence[Any]) -> str:
    """Convenience helper returning just the root of a leaf sequence."""
    return MerkleTree(list(leaves)).root
