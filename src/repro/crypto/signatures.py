"""Signature schemes used on entries and deletion requests.

The paper's console figures (Figs. 6-8) print a *simplified* signature next
to each entry, e.g. ``S: sig_BRAVO``, while Section IV-D1 describes proper
client signatures whose keys the quorum compares when authorizing a deletion.
To support both faithful figure reproduction and a realistic authorization
path, signing is abstracted behind :class:`SignatureScheme` with two
implementations:

* :class:`SimplifiedScheme` — the paper's presentation form: the signature is
  a deterministic tag bound to the participant identity.  It is *not*
  cryptographically binding and exists to regenerate the console output
  verbatim and to keep micro-benchmarks focused on the chain mechanics.
* :class:`EcdsaScheme` — real secp256k1 signatures over the canonical entry
  payload, providing actual unforgeability for the authorization tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.crypto.ecdsa import decode_point, decode_signature, ecdsa_verify
from repro.crypto.hashing import canonical_json, sha256_hex
from repro.crypto.keys import KeyPair, verify_with_public_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports crypto)
    from repro.core.entry import Entry


@dataclass(frozen=True)
class SignedPayload:
    """A payload together with the identity and signature that covers it.

    Attributes
    ----------
    payload:
        The JSON-serialisable data that was signed.
    signer:
        Printable identity of the signer (user name or address).
    signature:
        Scheme-specific signature string.
    public_key:
        Compressed public key for asymmetric schemes, ``None`` for the
        simplified scheme.
    """

    payload: Any
    signer: str
    signature: str
    public_key: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {
            "payload": self.payload,
            "signer": self.signer,
            "signature": self.signature,
            "public_key": self.public_key,
        }


class SignatureScheme(ABC):
    """Strategy interface for producing and checking entry signatures."""

    #: Short name stored in blocks so validators know how to verify.
    name: str = "abstract"

    @abstractmethod
    def sign(self, payload: Any, identity: str, key_pair: Optional[KeyPair] = None) -> SignedPayload:
        """Sign ``payload`` on behalf of ``identity``."""

    @abstractmethod
    def verify(self, signed: SignedPayload) -> bool:
        """Check a signed payload."""

    def verify_batch(self, batch: list[SignedPayload]) -> list[bool]:
        """Check many signed payloads in one pass.

        The default is a per-payload loop; schemes with per-signer setup
        costs (key decoding, point decompression) override this to reuse the
        decoded material across payloads by the same author — the anchor
        calls it with all entries of a sealed block at once.
        """
        return [self.verify(signed) for signed in batch]

    def same_signer(self, first: SignedPayload, second: SignedPayload) -> bool:
        """Decide whether two payloads were signed by the same participant.

        This is the check of Section IV-D1: a user *"is only allowed to
        submit delete requests for his own transactions"*, identified *"by
        comparing the signature of the user and the stored signature of a
        data entry"*.
        """
        if first.public_key and second.public_key:
            return first.public_key == second.public_key
        return first.signer == second.signer


class SimplifiedScheme(SignatureScheme):
    """Paper-style simplified signatures (``sig_<IDENTITY>`` plus payload tag)."""

    name = "simplified"

    def sign(self, payload: Any, identity: str, key_pair: Optional[KeyPair] = None) -> SignedPayload:
        """Produce a deterministic tag signature bound to the identity."""
        tag = sha256_hex(f"{identity}:{canonical_json(payload)}".encode("utf-8"))[:16]
        signature = f"sig_{identity}:{tag}"
        return SignedPayload(payload=payload, signer=identity, signature=signature)

    def verify(self, signed: SignedPayload) -> bool:
        """Recompute the tag and compare."""
        expected = self.sign(signed.payload, signed.signer)
        return expected.signature == signed.signature

    @staticmethod
    def display(signed: SignedPayload) -> str:
        """Console form used in the paper's figures (``sig_BRAVO``)."""
        return signed.signature.split(":", 1)[0]


class EcdsaScheme(SignatureScheme):
    """Real secp256k1 signatures over the canonical payload serialisation."""

    name = "ecdsa"

    def sign(self, payload: Any, identity: str, key_pair: Optional[KeyPair] = None) -> SignedPayload:
        """Sign the canonical JSON form of ``payload`` with ``key_pair``."""
        if key_pair is None:
            raise ValueError("EcdsaScheme.sign requires a key pair")
        message = canonical_json({"identity": identity, "payload": payload}).encode("utf-8")
        signature = key_pair.sign_text(message.decode("utf-8"))
        return SignedPayload(
            payload=payload,
            signer=identity,
            signature=signature,
            public_key=key_pair.public_key_hex,
        )

    def verify(self, signed: SignedPayload) -> bool:
        """Verify the ECDSA signature against the embedded public key."""
        if not signed.public_key:
            return False
        message = canonical_json({"identity": signed.signer, "payload": signed.payload}).encode("utf-8")
        return verify_with_public_key(signed.public_key, message, signed.signature)

    def verify_batch(self, batch: list[SignedPayload]) -> list[bool]:
        """Verify a sealed block's worth of payloads in one pass.

        Entries by the same author share a public key; the point is
        decompressed once per distinct key (on top of the bounded LRU the
        decoders already keep) and reused for every signature it covers.
        """
        decoded_keys: dict[str, Any] = {}
        verdicts: list[bool] = []
        for signed in batch:
            if not signed.public_key:
                verdicts.append(False)
                continue
            point = decoded_keys.get(signed.public_key)
            if point is None:
                try:
                    point = decode_point(signed.public_key)
                except ValueError:
                    verdicts.append(False)
                    continue
                decoded_keys[signed.public_key] = point
            try:
                signature = decode_signature(signed.signature)
            except ValueError:
                verdicts.append(False)
                continue
            message = canonical_json(
                {"identity": signed.signer, "payload": signed.payload}
            ).encode("utf-8")
            verdicts.append(ecdsa_verify(point, message, signature))
        return verdicts


_SCHEMES: dict[str, type[SignatureScheme]] = {
    SimplifiedScheme.name: SimplifiedScheme,
    EcdsaScheme.name: EcdsaScheme,
}


#: Shared stateless instances for the validation hot path; invalidated when
#: :func:`register_scheme` replaces a class.
_INSTANCES: dict[str, SignatureScheme] = {}


def new_scheme(name: str) -> SignatureScheme:
    """Instantiate a signature scheme by name (``simplified`` or ``ecdsa``)."""
    try:
        return _SCHEMES[name]()
    except KeyError:
        known = ", ".join(sorted(_SCHEMES))
        raise ValueError(f"unknown signature scheme {name!r}; known schemes: {known}") from None


def scheme_instance(name: str) -> SignatureScheme:
    """A shared instance of the named scheme (schemes are stateless).

    Per-entry validation used to instantiate a fresh scheme object for every
    signature it checked; the shared instance removes that allocation from
    the message hot path.
    """
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = new_scheme(name)
    return instance


def sign_entry(
    scheme: SignatureScheme,
    entry: "Entry",
    identity: str,
    key_pair: Optional[KeyPair] = None,
) -> "Entry":
    """Sign ``entry`` on behalf of ``identity`` and return the signed copy.

    This is the one signing path shared by the chain façade (entries
    submitted in-process) and the light clients (entries signed before they
    travel to an anchor node) — both cover :meth:`Entry.signing_payload`, so
    an entry signed locally verifies identically after network transfer.
    The returned entry keeps the payload, kind and expiry bounds but carries
    the fresh signature, signer identity and (for asymmetric schemes) the
    public key.
    """
    from repro.core.entry import Entry

    signed = scheme.sign(entry.signing_payload(), identity, key_pair)
    return Entry(
        data=entry.data,
        author=identity,
        signature=signed.signature,
        public_key=signed.public_key,
        kind=entry.kind,
        expires_at_time=entry.expires_at_time,
        expires_at_block=entry.expires_at_block,
    )


def register_scheme(scheme_class: type[SignatureScheme]) -> None:
    """Register a custom signature scheme (extension hook)."""
    if not scheme_class.name or scheme_class.name == "abstract":
        raise ValueError("signature scheme must define a concrete name")
    _SCHEMES[scheme_class.name] = scheme_class
    _INSTANCES.pop(scheme_class.name, None)
