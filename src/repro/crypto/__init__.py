"""Cryptographic substrate for the selective-deletion blockchain.

The paper relies on three cryptographic building blocks:

* a collision-resistant hash function used to chain blocks and to build the
  Merkle-root redundancy of Fig. 9 (``hashing``, ``merkle``),
* client signatures on entries and deletion requests used for authorization
  in Section IV-D1 (``ecdsa``, ``keys``, ``signatures``),
* and, for the related-work baseline of Section III, a chameleon hash with a
  trapdoor that allows block redaction without breaking the chain
  (``chameleon``).

Everything is implemented from scratch on top of :mod:`hashlib` so the
library has no third-party runtime dependencies.
"""

from repro.crypto.hashing import (
    GENESIS_PREVIOUS_HASH,
    HashPointer,
    canonical_json,
    hash_hex,
    hash_pair,
    sha256_hex,
)
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root
from repro.crypto.ecdsa import (
    SECP256K1,
    CurvePoint,
    EcdsaSignature,
    decode_point,
    decode_signature,
    ecdsa_sign,
    ecdsa_verify,
    fast_math_enabled,
    set_fast_math,
)
from repro.crypto.keys import Address, KeyPair, derive_address
from repro.crypto.signatures import (
    EcdsaScheme,
    SignatureScheme,
    SignedPayload,
    SimplifiedScheme,
    new_scheme,
    scheme_instance,
)
from repro.crypto.chameleon import ChameleonHash, ChameleonParameters, Collision

__all__ = [
    "GENESIS_PREVIOUS_HASH",
    "HashPointer",
    "canonical_json",
    "hash_hex",
    "hash_pair",
    "sha256_hex",
    "MerkleProof",
    "MerkleTree",
    "merkle_root",
    "SECP256K1",
    "CurvePoint",
    "EcdsaSignature",
    "decode_point",
    "decode_signature",
    "ecdsa_sign",
    "ecdsa_verify",
    "fast_math_enabled",
    "set_fast_math",
    "Address",
    "KeyPair",
    "derive_address",
    "EcdsaScheme",
    "SignatureScheme",
    "SignedPayload",
    "SimplifiedScheme",
    "new_scheme",
    "scheme_instance",
    "ChameleonHash",
    "ChameleonParameters",
    "Collision",
]
