"""Pure-Python ECDSA over secp256k1.

Section IV-D1 of the paper requires that *"a deletion request must be signed
with the client signature just like a normal entry"* and that the system can
check *"if the signatures share the same key"*.  The published prototype used
a "simplified" signature; this module provides a real asymmetric scheme so
the authorization path is exercised with actual key material, while
:mod:`repro.crypto.signatures` still offers the paper's simplified mode for
reproducing the console figures verbatim.

The implementation is deliberately compact but complete:

* affine point arithmetic over the secp256k1 curve,
* deterministic nonces per RFC 6979 (HMAC-SHA256), so signing is
  reproducible and testable without an entropy source,
* low-s normalisation of signatures.

It is *not* hardened against side channels; it exists to make the
reproduction self-contained, not to protect real funds.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CurveParameters:
    """Domain parameters of a short Weierstrass curve ``y^2 = x^3 + a x + b``."""

    name: str
    p: int
    a: int
    b: int
    g_x: int
    g_y: int
    n: int
    h: int


#: The secp256k1 domain parameters (the Bitcoin curve).
SECP256K1 = CurveParameters(
    name="secp256k1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F,
    a=0,
    b=7,
    g_x=0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
    g_y=0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
    h=1,
)


class CurvePoint:
    """An affine point on a short Weierstrass curve (or the point at infinity)."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: CurveParameters, x: Optional[int], y: Optional[int]) -> None:
        self.curve = curve
        self.x = x
        self.y = y
        if not self.is_infinity and not self._on_curve():
            raise ValueError("point is not on the curve")

    @classmethod
    def infinity(cls, curve: CurveParameters = SECP256K1) -> "CurvePoint":
        """Return the neutral element of the group."""
        return cls(curve, None, None)

    @classmethod
    def generator(cls, curve: CurveParameters = SECP256K1) -> "CurvePoint":
        """Return the curve's base point G."""
        return cls(curve, curve.g_x, curve.g_y)

    @property
    def is_infinity(self) -> bool:
        """True for the point at infinity."""
        return self.x is None or self.y is None

    def _on_curve(self) -> bool:
        assert self.x is not None and self.y is not None
        p = self.curve.p
        return (self.y * self.y - (self.x**3 + self.curve.a * self.x + self.curve.b)) % p == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CurvePoint):
            return NotImplemented
        return self.curve.name == other.curve.name and self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return f"CurvePoint({self.curve.name}, infinity)"
        return f"CurvePoint({self.curve.name}, x={self.x:#x}, y={self.y:#x})"

    def __neg__(self) -> "CurvePoint":
        if self.is_infinity:
            return self
        assert self.x is not None and self.y is not None
        return CurvePoint(self.curve, self.x, (-self.y) % self.curve.p)

    def __add__(self, other: "CurvePoint") -> "CurvePoint":
        if self.curve.name != other.curve.name:
            raise ValueError("cannot add points on different curves")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        assert self.x is not None and self.y is not None
        assert other.x is not None and other.y is not None
        p = self.curve.p
        if self.x == other.x and (self.y + other.y) % p == 0:
            return CurvePoint.infinity(self.curve)
        if self == other:
            slope = (3 * self.x * self.x + self.curve.a) * modular_inverse(2 * self.y, p) % p
        else:
            slope = (other.y - self.y) * modular_inverse(other.x - self.x, p) % p
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return CurvePoint(self.curve, x3, y3)

    def __rmul__(self, scalar: int) -> "CurvePoint":
        return self.__mul__(scalar)

    def __mul__(self, scalar: int) -> "CurvePoint":
        """Double-and-add scalar multiplication."""
        if scalar % self.curve.n == 0 or self.is_infinity:
            return CurvePoint.infinity(self.curve)
        if scalar < 0:
            return (-self) * (-scalar)
        result = CurvePoint.infinity(self.curve)
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend + addend
            scalar >>= 1
        return result

    def encode(self) -> str:
        """Compressed SEC1 encoding as a hex string (``02``/``03`` prefix)."""
        if self.is_infinity:
            return "00"
        assert self.x is not None and self.y is not None
        prefix = "02" if self.y % 2 == 0 else "03"
        return prefix + format(self.x, "064x")

    @classmethod
    def decode(cls, encoded: str, curve: CurveParameters = SECP256K1) -> "CurvePoint":
        """Decode a compressed SEC1 hex string."""
        if encoded == "00":
            return cls.infinity(curve)
        prefix, x_hex = encoded[:2], encoded[2:]
        if prefix not in ("02", "03") or len(x_hex) != 64:
            raise ValueError(f"invalid compressed point encoding: {encoded!r}")
        x = int(x_hex, 16)
        y_squared = (pow(x, 3, curve.p) + curve.a * x + curve.b) % curve.p
        y = pow(y_squared, (curve.p + 1) // 4, curve.p)
        if (y * y) % curve.p != y_squared:
            raise ValueError("point x-coordinate has no square root on the curve")
        if (y % 2 == 0) != (prefix == "02"):
            y = curve.p - y
        return cls(curve, x, y)


def modular_inverse(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``."""
    value %= modulus
    if value == 0:
        raise ZeroDivisionError("inverse of zero does not exist")
    return pow(value, -1, modulus)


@dataclass(frozen=True)
class EcdsaSignature:
    """An ECDSA signature pair (r, s) with low-s normalisation applied."""

    r: int
    s: int

    def encode(self) -> str:
        """Fixed-width hex encoding: 64 chars of r followed by 64 chars of s."""
        return format(self.r, "064x") + format(self.s, "064x")

    @classmethod
    def decode(cls, encoded: str) -> "EcdsaSignature":
        """Decode a signature produced by :meth:`encode`."""
        if len(encoded) != 128:
            raise ValueError("encoded ECDSA signature must be 128 hex characters")
        return cls(r=int(encoded[:64], 16), s=int(encoded[64:], 16))


def _hash_to_int(message: bytes, curve: CurveParameters) -> int:
    digest = hashlib.sha256(message).digest()
    value = int.from_bytes(digest, "big")
    excess = value.bit_length() - curve.n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonce(private_key: int, message_hash: int, curve: CurveParameters) -> int:
    """Deterministic nonce generation per RFC 6979 with HMAC-SHA256."""
    order_bytes = (curve.n.bit_length() + 7) // 8
    key_bytes = private_key.to_bytes(order_bytes, "big")
    hash_bytes = (message_hash % curve.n).to_bytes(order_bytes, "big")

    k = b"\x00" * 32
    v = b"\x01" * 32
    k = hmac.new(k, v + b"\x00" + key_bytes + hash_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + key_bytes + hash_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()

    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < curve.n:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def ecdsa_sign(private_key: int, message: bytes, curve: CurveParameters = SECP256K1) -> EcdsaSignature:
    """Sign ``message`` with ``private_key`` using deterministic ECDSA."""
    if not 1 <= private_key < curve.n:
        raise ValueError("private key out of range")
    z = _hash_to_int(message, curve)
    generator = CurvePoint.generator(curve)
    while True:
        k = _rfc6979_nonce(private_key, z, curve)
        point = k * generator
        assert point.x is not None
        r = point.x % curve.n
        if r == 0:
            z = (z + 1) % curve.n
            continue
        s = modular_inverse(k, curve.n) * (z + r * private_key) % curve.n
        if s == 0:
            z = (z + 1) % curve.n
            continue
        if s > curve.n // 2:
            s = curve.n - s
        return EcdsaSignature(r=r, s=s)


def ecdsa_verify(
    public_key: CurvePoint,
    message: bytes,
    signature: EcdsaSignature,
    curve: CurveParameters = SECP256K1,
) -> bool:
    """Verify an ECDSA ``signature`` over ``message`` against ``public_key``."""
    if public_key.is_infinity:
        return False
    if not (1 <= signature.r < curve.n and 1 <= signature.s < curve.n):
        return False
    z = _hash_to_int(message, curve)
    w = modular_inverse(signature.s, curve.n)
    u1 = z * w % curve.n
    u2 = signature.r * w % curve.n
    point = u1 * CurvePoint.generator(curve) + u2 * public_key
    if point.is_infinity:
        return False
    assert point.x is not None
    return point.x % curve.n == signature.r


def derive_public_key(private_key: int, curve: CurveParameters = SECP256K1) -> CurvePoint:
    """Compute the public point corresponding to ``private_key``."""
    if not 1 <= private_key < curve.n:
        raise ValueError("private key out of range")
    return private_key * CurvePoint.generator(curve)
