"""Pure-Python ECDSA over secp256k1.

Section IV-D1 of the paper requires that *"a deletion request must be signed
with the client signature just like a normal entry"* and that the system can
check *"if the signatures share the same key"*.  The published prototype used
a "simplified" signature; this module provides a real asymmetric scheme so
the authorization path is exercised with actual key material, while
:mod:`repro.crypto.signatures` still offers the paper's simplified mode for
reproducing the console figures verbatim.

The implementation is deliberately compact but complete:

* affine point arithmetic over the secp256k1 curve (the retained reference
  implementation — the executable spec the fast path is property-tested
  against),
* Jacobian-coordinate scalar multiplication for the hot paths: no modular
  inverse per point addition, a single affine conversion at the end,
* a precomputed fixed-base window table for the generator, so ``k*G``
  (signing, key derivation) costs ~64 mixed additions and zero doublings,
* a windowed Shamir combination for the verify equation ``u1*G + u2*Q``:
  one shared doubling ladder for both scalars, the ``G`` component folded in
  from the fixed-base table,
* bounded LRU caches for compressed-point and signature decoding
  (:func:`decode_point` / :func:`decode_signature`) — blocks carry the same
  author keys over and over,
* deterministic nonces per RFC 6979 (HMAC-SHA256), so signing is
  reproducible and testable without an entropy source,
* low-s normalisation of signatures.

``set_fast_math(False)`` routes every scalar multiplication back through the
retained affine double-and-add and bypasses the decode caches; the hot-path
benchmark uses it to measure an honest before/after ratio, and the
equivalence tests use it to pin fast ≡ affine on random inputs.

It is *not* hardened against side channels; it exists to make the
reproduction self-contained, not to protect real funds.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional


@dataclass(frozen=True)
class CurveParameters:
    """Domain parameters of a short Weierstrass curve ``y^2 = x^3 + a x + b``."""

    name: str
    p: int
    a: int
    b: int
    g_x: int
    g_y: int
    n: int
    h: int


#: The secp256k1 domain parameters (the Bitcoin curve).
SECP256K1 = CurveParameters(
    name="secp256k1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F,
    a=0,
    b=7,
    g_x=0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
    g_y=0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
    h=1,
)

#: Window width (bits) of the fixed-base table and the variable-point ladder.
_WINDOW_BITS = 4
_WINDOW_MASK = (1 << _WINDOW_BITS) - 1

#: Routing flag: ``True`` takes the Jacobian/table fast paths, ``False`` the
#: retained affine reference implementation (and uncached decoding).
_FAST_MATH = True


def set_fast_math(enabled: bool) -> None:
    """Route scalar multiplication through the fast path (default) or the
    retained affine reference implementation.

    The affine path is kept as the executable spec: the Hypothesis tests in
    ``tests/test_crypto_fastpath.py`` pin ``fast == affine`` on random
    scalars and points, and ``benchmarks/bench_hotpath.py`` measures the
    before/after ratio by flipping this switch.  Disabling fast math also
    bypasses the decode caches, so the legacy measurements pay the original
    per-call Tonelli-Shanks square root.
    """
    global _FAST_MATH
    _FAST_MATH = bool(enabled)


def fast_math_enabled() -> bool:
    """True while the Jacobian/table fast paths are active."""
    return _FAST_MATH


class CurvePoint:
    """An affine point on a short Weierstrass curve (or the point at infinity)."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: CurveParameters, x: Optional[int], y: Optional[int]) -> None:
        self.curve = curve
        self.x = x
        self.y = y
        if not self.is_infinity and not self._on_curve():
            raise ValueError("point is not on the curve")

    @classmethod
    def _trusted(cls, curve: CurveParameters, x: Optional[int], y: Optional[int]) -> "CurvePoint":
        """Build a point that is known to be on the curve (internal results).

        The public constructor re-checks the curve equation on every call;
        points produced by our own arithmetic satisfy it by construction, so
        the hot paths skip the redundant check.
        """
        point = object.__new__(cls)
        point.curve = curve
        point.x = x
        point.y = y
        return point

    @classmethod
    def infinity(cls, curve: CurveParameters = SECP256K1) -> "CurvePoint":
        """Return the neutral element of the group."""
        return cls._trusted(curve, None, None)

    @classmethod
    def generator(cls, curve: CurveParameters = SECP256K1) -> "CurvePoint":
        """Return the curve's base point G."""
        return cls._trusted(curve, curve.g_x, curve.g_y)

    @property
    def is_infinity(self) -> bool:
        """True for the point at infinity."""
        return self.x is None or self.y is None

    def _on_curve(self) -> bool:
        assert self.x is not None and self.y is not None
        p = self.curve.p
        return (self.y * self.y - (self.x**3 + self.curve.a * self.x + self.curve.b)) % p == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CurvePoint):
            return NotImplemented
        return self.curve.name == other.curve.name and self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return f"CurvePoint({self.curve.name}, infinity)"
        return f"CurvePoint({self.curve.name}, x={self.x:#x}, y={self.y:#x})"

    def __neg__(self) -> "CurvePoint":
        if self.is_infinity:
            return self
        assert self.x is not None and self.y is not None
        return CurvePoint._trusted(self.curve, self.x, (-self.y) % self.curve.p)

    def __add__(self, other: "CurvePoint") -> "CurvePoint":
        if self.curve.name != other.curve.name:
            raise ValueError("cannot add points on different curves")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        assert self.x is not None and self.y is not None
        assert other.x is not None and other.y is not None
        p = self.curve.p
        if self.x == other.x and (self.y + other.y) % p == 0:
            return CurvePoint.infinity(self.curve)
        if self == other:
            slope = (3 * self.x * self.x + self.curve.a) * modular_inverse(2 * self.y, p) % p
        else:
            slope = (other.y - self.y) * modular_inverse(other.x - self.x, p) % p
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return CurvePoint._trusted(self.curve, x3, y3)

    def __rmul__(self, scalar: int) -> "CurvePoint":
        return self.__mul__(scalar)

    def __mul__(self, scalar: int) -> "CurvePoint":
        """Scalar multiplication (Jacobian ladder, or affine in legacy mode)."""
        if scalar % self.curve.n == 0 or self.is_infinity:
            return CurvePoint.infinity(self.curve)
        if scalar < 0:
            return (-self) * (-scalar)
        if not _FAST_MATH:
            return self.affine_multiply(scalar)
        k = scalar % self.curve.n
        if self.x == self.curve.g_x and self.y == self.curve.g_y:
            return _from_jacobian(_fixed_base_mult(k, self.curve), self.curve)
        return _from_jacobian(_window_mult(k, self.x, self.y, self.curve), self.curve)

    def affine_multiply(self, scalar: int) -> "CurvePoint":
        """Affine double-and-add — the retained reference implementation.

        One modular inverse per point addition; kept verbatim as the
        executable spec the Jacobian fast path is property-tested against.
        """
        if scalar % self.curve.n == 0 or self.is_infinity:
            return CurvePoint.infinity(self.curve)
        if scalar < 0:
            return (-self).affine_multiply(-scalar)
        result = CurvePoint.infinity(self.curve)
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend + addend
            scalar >>= 1
        return result

    def encode(self) -> str:
        """Compressed SEC1 encoding as a hex string (``02``/``03`` prefix)."""
        if self.is_infinity:
            return "00"
        assert self.x is not None and self.y is not None
        prefix = "02" if self.y % 2 == 0 else "03"
        return prefix + format(self.x, "064x")

    @classmethod
    def decode(cls, encoded: str, curve: CurveParameters = SECP256K1) -> "CurvePoint":
        """Decode a compressed SEC1 hex string.

        Hot paths should call :func:`decode_point` instead, which fronts this
        with a bounded LRU cache — the same author keys arrive in block after
        block, and the square root here is the expensive part.
        """
        if encoded == "00":
            return cls.infinity(curve)
        prefix, x_hex = encoded[:2], encoded[2:]
        if prefix not in ("02", "03") or len(x_hex) != 64:
            raise ValueError(f"invalid compressed point encoding: {encoded!r}")
        x = int(x_hex, 16)
        y_squared = (pow(x, 3, curve.p) + curve.a * x + curve.b) % curve.p
        y = pow(y_squared, (curve.p + 1) // 4, curve.p)
        if (y * y) % curve.p != y_squared:
            raise ValueError("point x-coordinate has no square root on the curve")
        if (y % 2 == 0) != (prefix == "02"):
            y = curve.p - y
        return cls(curve, x, y)


def modular_inverse(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``."""
    value %= modulus
    if value == 0:
        raise ZeroDivisionError("inverse of zero does not exist")
    return pow(value, -1, modulus)


# --------------------------------------------------------------------------- #
# Jacobian-coordinate core
#
# Points are (X, Y, Z) triples with x = X/Z^2, y = Y/Z^3; Z == 0 encodes the
# point at infinity.  No modular inverse is needed until the single final
# conversion back to affine coordinates.
# --------------------------------------------------------------------------- #

#: The Jacobian point at infinity.
_JAC_INFINITY = (0, 1, 0)


def _jac_double(point: tuple[int, int, int], p: int, a: int) -> tuple[int, int, int]:
    """Double a Jacobian point (general ``a``; no inversion)."""
    x1, y1, z1 = point
    if not z1 or not y1:
        return _JAC_INFINITY
    yy = y1 * y1 % p
    s = 4 * x1 * yy % p
    m = 3 * x1 * x1 % p
    if a:
        zz = z1 * z1 % p
        m = (m + a * zz % p * zz) % p
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - 8 * yy * yy) % p
    z3 = 2 * y1 * z1 % p
    return (x3, y3, z3)


def _jac_add(
    first: tuple[int, int, int], second: tuple[int, int, int], p: int, a: int
) -> tuple[int, int, int]:
    """Add two Jacobian points (handles equal/opposite operands)."""
    x1, y1, z1 = first
    if not z1:
        return second
    x2, y2, z2 = second
    if not z2:
        return first
    z1z1 = z1 * z1 % p
    z2z2 = z2 * z2 % p
    u1 = x1 * z2z2 % p
    u2 = x2 * z1z1 % p
    s1 = y1 * z2 % p * z2z2 % p
    s2 = y2 * z1 % p * z1z1 % p
    if u1 == u2:
        if s1 != s2:
            return _JAC_INFINITY
        return _jac_double(first, p, a)
    h = (u2 - u1) % p
    hh = h * h % p
    hhh = h * hh % p
    v = u1 * hh % p
    r = (s2 - s1) % p
    x3 = (r * r - hhh - 2 * v) % p
    y3 = (r * (v - x3) - s1 * hhh) % p
    z3 = z1 * z2 % p * h % p
    return (x3, y3, z3)


def _jac_add_affine(
    point: tuple[int, int, int], qx: int, qy: int, p: int, a: int
) -> tuple[int, int, int]:
    """Mixed addition: Jacobian ``point`` plus affine ``(qx, qy)``."""
    x1, y1, z1 = point
    if not z1:
        return (qx, qy, 1)
    z1z1 = z1 * z1 % p
    u2 = qx * z1z1 % p
    s2 = qy * z1 % p * z1z1 % p
    if u2 == x1:
        if s2 != y1 % p:
            return _JAC_INFINITY
        return _jac_double(point, p, a)
    h = (u2 - x1) % p
    hh = h * h % p
    hhh = h * hh % p
    v = x1 * hh % p
    r = (s2 - y1) % p
    x3 = (r * r - hhh - 2 * v) % p
    y3 = (r * (v - x3) - y1 * hhh) % p
    z3 = z1 * h % p
    return (x3, y3, z3)


def _from_jacobian(point: tuple[int, int, int], curve: CurveParameters) -> CurvePoint:
    """Convert back to an affine :class:`CurvePoint` (the single inversion)."""
    x, y, z = point
    if not z:
        return CurvePoint.infinity(curve)
    p = curve.p
    z_inv = pow(z, -1, p)
    z_inv2 = z_inv * z_inv % p
    return CurvePoint._trusted(curve, x * z_inv2 % p, y * z_inv2 % p * z_inv % p)


def _batch_to_affine(
    points: list[tuple[int, int, int]], p: int
) -> list[tuple[int, int]]:
    """Normalise many Jacobian points with one inversion (Montgomery's trick)."""
    prefix: list[int] = []
    acc = 1
    for _, _, z in points:
        acc = acc * z % p
        prefix.append(acc)
    inv = pow(acc, -1, p)
    affine: list[Optional[tuple[int, int]]] = [None] * len(points)
    for index in range(len(points) - 1, -1, -1):
        x, y, z = points[index]
        z_inv = inv * (prefix[index - 1] if index else 1) % p
        inv = inv * z % p
        z_inv2 = z_inv * z_inv % p
        affine[index] = (x * z_inv2 % p, y * z_inv2 % p * z_inv % p)
    return affine  # type: ignore[return-value]


#: Per-curve fixed-base tables: ``table[w][d-1] == (d << (4*w)) * G`` in
#: affine coordinates, for window ``w`` and digit ``d`` in 1..15.  With it,
#: ``k*G`` is at most 64 mixed additions and zero doublings.
_FIXED_BASE_TABLES: dict[str, list[list[tuple[int, int]]]] = {}


def _fixed_base_table(curve: CurveParameters) -> list[list[tuple[int, int]]]:
    table = _FIXED_BASE_TABLES.get(curve.name)
    if table is None:
        p, a = curve.p, curve.a
        windows = (curve.n.bit_length() + _WINDOW_BITS - 1) // _WINDOW_BITS
        flat: list[tuple[int, int, int]] = []
        base = (curve.g_x, curve.g_y, 1)
        for _ in range(windows):
            row = base
            flat.append(row)
            for _ in range(_WINDOW_MASK - 1):
                row = _jac_add(row, base, p, a)
                flat.append(row)
            for _ in range(_WINDOW_BITS):
                base = _jac_double(base, p, a)
        normalised = _batch_to_affine(flat, p)
        table = [
            normalised[w * _WINDOW_MASK : (w + 1) * _WINDOW_MASK] for w in range(windows)
        ]
        _FIXED_BASE_TABLES[curve.name] = table
    return table


def _fixed_base_mult(k: int, curve: CurveParameters) -> tuple[int, int, int]:
    """``k * G`` from the fixed-base table (``0 < k < n``), in Jacobian form."""
    table = _fixed_base_table(curve)
    p, a = curve.p, curve.a
    acc = _JAC_INFINITY
    window = 0
    while k:
        digit = k & _WINDOW_MASK
        if digit:
            qx, qy = table[window][digit - 1]
            acc = _jac_add_affine(acc, qx, qy, p, a)
        k >>= _WINDOW_BITS
        window += 1
    return acc


def _window_mult(k: int, qx: int, qy: int, curve: CurveParameters) -> tuple[int, int, int]:
    """``k * Q`` for an arbitrary affine point via a 4-bit window ladder."""
    p, a = curve.p, curve.a
    # Multiples 1..15 of Q, batch-normalised to affine with one inversion so
    # every ladder addition is the cheaper mixed form.
    jac_multiples: list[tuple[int, int, int]] = [(qx, qy, 1)]
    for _ in range(_WINDOW_MASK - 1):
        jac_multiples.append(_jac_add_affine(jac_multiples[-1], qx, qy, p, a))
    multiples = _batch_to_affine(jac_multiples, p)
    acc = _JAC_INFINITY
    top = (k.bit_length() + _WINDOW_BITS - 1) // _WINDOW_BITS * _WINDOW_BITS - _WINDOW_BITS
    for shift in range(top, -1, -_WINDOW_BITS):
        if acc[2]:
            acc = _jac_double(_jac_double(_jac_double(_jac_double(acc, p, a), p, a), p, a), p, a)
        digit = (k >> shift) & _WINDOW_MASK
        if digit:
            mx, my = multiples[digit - 1]
            acc = _jac_add_affine(acc, mx, my, p, a)
    return acc


def _shamir_combine(
    u1: int, u2: int, qx: int, qy: int, curve: CurveParameters
) -> tuple[int, int, int]:
    """``u1*G + u2*Q`` with one shared ladder (windowed Shamir's trick).

    The ``u2*Q`` component pays the doubling ladder; the ``u1*G`` component
    rides for free out of the fixed-base table (its windows are
    position-encoded, so folding it in needs only mixed additions).
    """
    p, a = curve.p, curve.a
    acc = _window_mult(u2, qx, qy, curve) if u2 else _JAC_INFINITY
    if u1:
        table = _fixed_base_table(curve)
        window = 0
        while u1:
            digit = u1 & _WINDOW_MASK
            if digit:
                gx, gy = table[window][digit - 1]
                acc = _jac_add_affine(acc, gx, gy, p, a)
            u1 >>= _WINDOW_BITS
            window += 1
    return acc


# --------------------------------------------------------------------------- #
# Cached decoding
# --------------------------------------------------------------------------- #


@lru_cache(maxsize=4096)
def _decode_point_cached(encoded: str, curve: CurveParameters) -> CurvePoint:
    return CurvePoint.decode(encoded, curve)


def decode_point(encoded: str, curve: CurveParameters = SECP256K1) -> CurvePoint:
    """Decode a compressed public key through a bounded LRU cache.

    Every caller outside ``crypto/`` must use this wrapper instead of
    :meth:`CurvePoint.decode` (enforced by lint rule ``REPRO-PERF501``): a
    simulation delivers the same handful of author keys thousands of times,
    and the modular square root dominates the raw decode.
    """
    if not _FAST_MATH:
        return CurvePoint.decode(encoded, curve)
    return _decode_point_cached(encoded, curve)


@lru_cache(maxsize=8192)
def _decode_signature_cached(encoded: str) -> "EcdsaSignature":
    return EcdsaSignature.decode(encoded)


def decode_signature(encoded: str) -> "EcdsaSignature":
    """Decode a hex signature through a bounded LRU cache.

    The cached-wrapper contract of :func:`decode_point` applies here too
    (lint rule ``REPRO-PERF501``): seals and entry signatures are re-checked
    on every validation pass, and the pair of 64-char int parses adds up.
    """
    if not _FAST_MATH:
        return EcdsaSignature.decode(encoded)
    return _decode_signature_cached(encoded)


def clear_decode_caches() -> None:
    """Drop both decode caches (benchmark hygiene between modes)."""
    _decode_point_cached.cache_clear()
    _decode_signature_cached.cache_clear()


@dataclass(frozen=True)
class EcdsaSignature:
    """An ECDSA signature pair (r, s) with low-s normalisation applied."""

    r: int
    s: int

    def encode(self) -> str:
        """Fixed-width hex encoding: 64 chars of r followed by 64 chars of s."""
        return format(self.r, "064x") + format(self.s, "064x")

    @classmethod
    def decode(cls, encoded: str) -> "EcdsaSignature":
        """Decode a signature produced by :meth:`encode`.

        Hot paths should call :func:`decode_signature` (the bounded-LRU
        wrapper) instead.
        """
        if len(encoded) != 128:
            raise ValueError("encoded ECDSA signature must be 128 hex characters")
        return cls(r=int(encoded[:64], 16), s=int(encoded[64:], 16))


def _hash_to_int(message: bytes, curve: CurveParameters) -> int:
    digest = hashlib.sha256(message).digest()
    value = int.from_bytes(digest, "big")
    excess = value.bit_length() - curve.n.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonce(private_key: int, message_hash: int, curve: CurveParameters) -> int:
    """Deterministic nonce generation per RFC 6979 with HMAC-SHA256."""
    order_bytes = (curve.n.bit_length() + 7) // 8
    key_bytes = private_key.to_bytes(order_bytes, "big")
    hash_bytes = (message_hash % curve.n).to_bytes(order_bytes, "big")

    k = b"\x00" * 32
    v = b"\x01" * 32
    k = hmac.new(k, v + b"\x00" + key_bytes + hash_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + key_bytes + hash_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()

    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < curve.n:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def ecdsa_sign(private_key: int, message: bytes, curve: CurveParameters = SECP256K1) -> EcdsaSignature:
    """Sign ``message`` with ``private_key`` using deterministic ECDSA."""
    if not 1 <= private_key < curve.n:
        raise ValueError("private key out of range")
    z = _hash_to_int(message, curve)
    generator = CurvePoint.generator(curve)
    while True:
        k = _rfc6979_nonce(private_key, z, curve)
        if _FAST_MATH:
            point = _from_jacobian(_fixed_base_mult(k, curve), curve)
        else:
            point = k * generator
        assert point.x is not None
        r = point.x % curve.n
        if r == 0:
            z = (z + 1) % curve.n
            continue
        s = modular_inverse(k, curve.n) * (z + r * private_key) % curve.n
        if s == 0:
            z = (z + 1) % curve.n
            continue
        if s > curve.n // 2:
            s = curve.n - s
        return EcdsaSignature(r=r, s=s)


def ecdsa_verify(
    public_key: CurvePoint,
    message: bytes,
    signature: EcdsaSignature,
    curve: CurveParameters = SECP256K1,
) -> bool:
    """Verify an ECDSA ``signature`` over ``message`` against ``public_key``."""
    if public_key.is_infinity:
        return False
    if not (1 <= signature.r < curve.n and 1 <= signature.s < curve.n):
        return False
    z = _hash_to_int(message, curve)
    w = modular_inverse(signature.s, curve.n)
    u1 = z * w % curve.n
    u2 = signature.r * w % curve.n
    if _FAST_MATH:
        assert public_key.x is not None and public_key.y is not None
        combined = _shamir_combine(u1, u2, public_key.x, public_key.y, curve)
        point = _from_jacobian(combined, curve)
    else:
        point = u1 * CurvePoint.generator(curve) + u2 * public_key
    if point.is_infinity:
        return False
    assert point.x is not None
    return point.x % curve.n == signature.r


def derive_public_key(private_key: int, curve: CurveParameters = SECP256K1) -> CurvePoint:
    """Compute the public point corresponding to ``private_key``."""
    if not 1 <= private_key < curve.n:
        raise ValueError("private key out of range")
    if _FAST_MATH:
        return _from_jacobian(_fixed_base_mult(private_key, curve), curve)
    return private_key * CurvePoint.generator(curve)
