"""Key management for blockchain participants.

Every participant of the system (clients such as ALPHA/BRAVO/CHARLIE in the
evaluation, and the anchor nodes that jointly hold the master signature of
Section IV-D1) owns a key pair.  Entries store the participant's address
(``K`` field in the console figures) and a signature (``S`` field), and the
quorum grants a deletion request only when the requesting key matches the key
that signed the original entry.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.ecdsa import (
    SECP256K1,
    CurveParameters,
    CurvePoint,
    EcdsaSignature,
    decode_point,
    decode_signature,
    derive_public_key,
    ecdsa_sign,
    ecdsa_verify,
)

#: Type alias for the printable address of a participant.
Address = str


def derive_address(public_key_encoding: str, *, length: int = 40) -> Address:
    """Derive a printable address from a compressed public key encoding.

    The address is the truncated SHA-256 of the compressed point; 40 hex
    characters (160 bits) mirror the usual address length of production
    chains while staying readable in console dumps.
    """
    digest = hashlib.sha256(public_key_encoding.encode("utf-8")).hexdigest()
    return digest[:length]


@dataclass
class KeyPair:
    """An ECDSA key pair with convenience signing helpers.

    Key pairs can be generated randomly (:meth:`generate`) or derived
    deterministically from a human-readable seed (:meth:`from_seed`), which
    the evaluation scenario uses so that the ALPHA/BRAVO/CHARLIE keys are
    reproducible across runs.
    """

    private_key: int
    curve: CurveParameters = field(default=SECP256K1)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not 1 <= self.private_key < self.curve.n:
            raise ValueError("private key out of curve order range")
        # Derived once: the SEC1 encoding and the address used to be
        # recomputed on every property access, which in the hot loop meant a
        # fresh hex format + SHA-256 per signed message.
        self._public_point = derive_public_key(self.private_key, self.curve)
        self._public_key_hex = self._public_point.encode()
        self._address = derive_address(self._public_key_hex)

    @classmethod
    def generate(cls, *, label: Optional[str] = None, curve: CurveParameters = SECP256K1) -> "KeyPair":
        """Generate a fresh random key pair."""
        private_key = secrets.randbelow(curve.n - 1) + 1
        return cls(private_key=private_key, curve=curve, label=label)

    @classmethod
    def from_seed(cls, seed: str, *, curve: CurveParameters = SECP256K1) -> "KeyPair":
        """Derive a key pair deterministically from a seed string."""
        digest = hashlib.sha256(f"selective-deletion:{seed}".encode("utf-8")).digest()
        private_key = (int.from_bytes(digest, "big") % (curve.n - 1)) + 1
        return cls(private_key=private_key, curve=curve, label=seed)

    @property
    def public_key(self) -> CurvePoint:
        """The public curve point."""
        return self._public_point

    @property
    def public_key_hex(self) -> str:
        """Compressed SEC1 hex encoding of the public key (memoised)."""
        return self._public_key_hex

    @property
    def address(self) -> Address:
        """Printable address derived from the public key (memoised)."""
        return self._address

    def sign(self, message: bytes) -> EcdsaSignature:
        """Sign raw bytes with this key."""
        return ecdsa_sign(self.private_key, message, self.curve)

    def sign_text(self, message: str) -> str:
        """Sign a text message and return the hex-encoded signature."""
        return self.sign(message.encode("utf-8")).encode()

    def verify(self, message: bytes, signature: EcdsaSignature) -> bool:
        """Verify a signature made with this key pair's public key."""
        return ecdsa_verify(self._public_point, message, signature, self.curve)

    def __repr__(self) -> str:
        label = self.label or "anonymous"
        return f"KeyPair(label={label!r}, address={self.address[:12]}...)"


def verify_with_public_key(public_key_hex: str, message: bytes, signature_hex: str) -> bool:
    """Verify a hex signature against a compressed hex public key.

    This is the form in which keys and signatures travel inside blocks, so
    validation code never needs access to :class:`KeyPair` objects.
    """
    try:
        point = decode_point(public_key_hex)
        signature = decode_signature(signature_hex)
    except (ValueError, IndexError):
        return False
    return ecdsa_verify(point, message, signature)
