"""Hash primitives used throughout the blockchain.

The paper chains blocks by storing the hash of the previous block header in
each block (Section IV-A).  The Genesis Block of the evaluation prototype
carries the previous hash ``DEADB`` (Fig. 6); we keep that constant so the
console figures can be reproduced verbatim.

All hashing in this library goes through :func:`hash_hex`, which serialises
its input canonically (sorted keys, no whitespace differences) before
applying SHA-256.  Canonical serialisation is what makes summary blocks
deterministic: every anchor node computes the identical block hash from the
identical agreed chain state, which is the core requirement of Section IV-B.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable

#: Previous-hash value of the very first Genesis Block, as printed in Fig. 6
#: of the paper.
GENESIS_PREVIOUS_HASH = "DEADB"

#: Number of hex characters of a full SHA-256 digest.
FULL_DIGEST_LENGTH = 64


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a lowercase hex string."""
    return hashlib.sha256(data).hexdigest()


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to a canonical JSON string.

    Keys are sorted and separators are fixed so that two structurally equal
    Python objects always produce byte-identical serialisations.  This is the
    property that lets every anchor node compute the same summary-block hash
    without exchanging the block (Section IV-B).

    The serialiser lets immutable domain objects (entries, blocks,
    redundancy records) memoise their own canonical form via a
    ``__canonical_json__`` method: re-hashing a summary block then reuses the
    cached per-entry strings instead of re-serialising every entry from
    scratch.  Plain structures (no memoised objects anywhere) take the fast C
    encoder; only structures that actually contain a memoised object fall
    back to the recursive Python composer.  Either way the output is
    byte-identical to ``json.dumps(value, sort_keys=True, separators=(",",
    ":"))`` on the fully expanded structure.

    Fast path: values whose concrete type is a builtin container or scalar
    cannot carry the memo hook, so they skip the per-value ``getattr`` probe
    and go straight to a single reused C encoder (``json.dumps`` with
    non-default options builds a fresh ``JSONEncoder`` per call — measurably
    hot when every block hash serialises through here).
    """
    cls = value.__class__
    if cls in _PLAIN_TYPES:
        try:
            return _encode_canonical(value)
        except _NeedsComposition:
            return _canonical(value)
    hook = getattr(value, "__canonical_json__", None)
    if hook is not None:
        return hook()
    try:
        return _encode_canonical(value)
    except _NeedsComposition:
        return _canonical(value)


class _NeedsComposition(Exception):
    """Raised mid-C-encoding when a memoised domain object is encountered."""


def _dumps_default(value: Any) -> Any:
    if getattr(value, "__canonical_json__", None) is not None:
        raise _NeedsComposition
    return _encode_fallback(value)


#: Builtin types that can never carry the ``__canonical_json__`` memo hook —
#: they bypass the attribute probe entirely.  Subclasses (str-Enums!) are
#: deliberately absent: ``value.__class__`` must match exactly.
_PLAIN_TYPES = frozenset((dict, list, tuple, str, int, float, bool, type(None)))

#: One reused canonical encoder; ``.encode`` is byte-identical to
#: ``json.dumps(value, sort_keys=True, separators=(",", ":"),
#: default=_dumps_default)`` without rebuilding the encoder per call.
_encode_canonical = json.JSONEncoder(
    sort_keys=True, separators=(",", ":"), default=_dumps_default
).encode


def _canonical(value: Any) -> str:
    if value is None or value is True or value is False or isinstance(value, (str, int, float)):
        # Scalars (including str/int subclasses such as str-Enums) delegate to
        # json.dumps so escaping and number formatting match exactly.
        return json.dumps(value)
    hook = getattr(value, "__canonical_json__", None)
    if hook is not None:
        return hook()
    if isinstance(value, dict):
        if all(type(key) is str for key in value):
            return (
                "{"
                + ",".join(
                    json.dumps(key) + ":" + _canonical(item)
                    for key, item in sorted(value.items(), key=lambda pair: pair[0])
                )
                + "}"
            )
        # Non-string keys: defer to json.dumps, whose key coercion rules are
        # subtle; correctness beats caching for this rare case.
        return json.dumps(value, sort_keys=True, separators=(",", ":"), default=_encode_fallback)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    return _canonical(_encode_fallback(value))


def _encode_fallback(value: Any) -> Any:
    """JSON fallback encoder for objects exposing ``to_dict``."""
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise TypeError(f"object of type {type(value).__name__} is not JSON serialisable")


def hash_hex(value: Any, *, digest_length: int = FULL_DIGEST_LENGTH) -> str:
    """Hash an arbitrary JSON-serialisable ``value``.

    Parameters
    ----------
    value:
        Any JSON-serialisable structure (or an object with ``to_dict``).
    digest_length:
        Number of leading hex characters to keep.  The paper's console
        output (Figs. 6-8) prints truncated five-character hashes; the chain
        itself always uses the full digest.
    """
    digest = sha256_hex(canonical_json(value).encode("utf-8"))
    return digest[:digest_length]


def hash_pair(left: str, right: str) -> str:
    """Hash the concatenation of two hex digests (Merkle-tree node rule)."""
    return sha256_hex((left + right).encode("utf-8"))


def hash_many(parts: Iterable[str]) -> str:
    """Hash an ordered iterable of strings into a single digest."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def truncate_hash(digest: str, length: int = 5) -> str:
    """Shorten a digest for display, mimicking the paper's console figures."""
    if length <= 0:
        raise ValueError("length must be positive")
    return digest[:length].upper()


@dataclass(frozen=True)
class HashPointer:
    """A typed reference to another block by hash and block number.

    Summary blocks use hash pointers when they operate in the
    ``merkle_reference`` mode of Section V-B2: instead of copying the full
    data of old sequences, only a pointer (block number + digest) is stored.
    """

    block_number: int
    digest: str

    def __post_init__(self) -> None:
        if self.block_number < 0:
            raise ValueError("block_number must be non-negative")
        if not self.digest:
            raise ValueError("digest must not be empty")

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable representation."""
        return {"block_number": self.block_number, "digest": self.digest}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "HashPointer":
        """Rebuild a pointer from :meth:`to_dict` output."""
        return cls(block_number=int(payload["block_number"]), digest=str(payload["digest"]))

    def matches(self, value: Any) -> bool:
        """Check whether ``value`` hashes to this pointer's digest."""
        return hash_hex(value) == self.digest
