"""Append-only journal (write-ahead log) block store.

The journal stores one JSON document per line.  Appends are O(1); physical
reclamation after a genesis-marker shift happens through compaction, which
rewrites the file without the truncated blocks — mirroring how a production
node would actually recover the disk space the paper's data-reduction claim
promises.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.block import Block
from repro.core.errors import StorageError
from repro.storage.memstore import BlockStore


class JournalBlockStore(BlockStore):
    """File-backed append-only store with explicit compaction."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._index: dict[int, Block] = {}
        self._truncated_before = 0
        self._last: Optional[int] = None
        if self.path.exists():
            self._load()
        else:
            self.path.touch()

    # ------------------------------------------------------------------ #
    # Loading and writing
    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StorageError(f"corrupt journal line {line_number}: {exc}") from exc
                if record.get("kind") == "truncate":
                    self._truncated_before = int(record["before"])
                    doomed = [n for n in self._index if n < self._truncated_before]
                    for number in doomed:
                        del self._index[number]
                    if not self._index:
                        # Mirror truncate_before: an emptied store accepts a
                        # fresh range starting at any number.
                        self._last = None
                    continue
                block = Block.from_dict(record["block"])
                self._index[block.block_number] = block
                if self._last is None or block.block_number > self._last:
                    self._last = block.block_number

    def _write_record(self, record: dict) -> None:
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------ #
    # BlockStore interface
    # ------------------------------------------------------------------ #

    def append(self, block: Block) -> None:
        """Append a block record to the journal (O(1) plus the disk write)."""
        if block.block_number in self._index:
            raise StorageError(f"block {block.block_number} is already journaled")
        if self._last is not None and block.block_number != self._last + 1:
            raise StorageError(
                f"expected block {self._last + 1}, got {block.block_number}"
            )
        self._write_record({"kind": "block", "block": block.to_dict()})
        self._index[block.block_number] = block
        self._last = block.block_number

    def get(self, block_number: int) -> Block:
        """Load a block from the in-memory index."""
        try:
            return self._index[block_number]
        except KeyError:
            raise StorageError(f"block {block_number} is not journaled") from None

    def truncate_before(self, block_number: int) -> int:
        """Record a truncation marker and drop the blocks from the index.

        The journal file itself keeps growing until :meth:`compact` is
        called; this mirrors WAL-style storage engines and lets tests verify
        that compaction — not just logical truncation — reclaims space.
        """
        doomed = [number for number in self._index if number < block_number]
        if not doomed:
            return 0
        self._write_record({"kind": "truncate", "before": block_number})
        self._truncated_before = max(self._truncated_before, block_number)
        for number in doomed:
            del self._index[number]
        if not self._index:
            self._last = None
        return len(doomed)

    def head(self) -> Optional[Block]:
        """The newest journaled block (O(1))."""
        return self._index[self._last] if self._last is not None else None

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Block]:
        for number in sorted(self._index):
            yield self._index[number]

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def file_size(self) -> int:
        """Size of the journal file in bytes."""
        return self.path.stat().st_size if self.path.exists() else 0

    def compact(self) -> int:
        """Rewrite the journal without truncated blocks; returns bytes saved."""
        before = self.file_size()
        temporary = self.path.with_suffix(self.path.suffix + ".compact")
        with temporary.open("w", encoding="utf-8") as handle:
            for block in self:
                handle.write(json.dumps({"kind": "block", "block": block.to_dict()}, sort_keys=True) + "\n")
        temporary.replace(self.path)
        return before - self.file_size()
