"""Storage backends for anchor nodes: memory, append-only journal, snapshots."""

from repro.storage.memstore import BlockStore, MemoryBlockStore, persist_chain
from repro.storage.snapshot import SnapshotManager, load_snapshot, save_snapshot
from repro.storage.wal import JournalBlockStore

__all__ = [
    "BlockStore",
    "MemoryBlockStore",
    "persist_chain",
    "SnapshotManager",
    "load_snapshot",
    "save_snapshot",
    "JournalBlockStore",
]
