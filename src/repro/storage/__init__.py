"""Storage backends for anchor nodes: memory, append-only journal, snapshots."""

from repro.storage.memstore import BlockStore, MemoryBlockStore, persist_chain
from repro.storage.snapshot import (
    SnapshotManager,
    chain_from_payload,
    load_snapshot,
    save_snapshot,
    snapshot_digest,
    snapshot_payload,
)
from repro.storage.wal import JournalBlockStore

__all__ = [
    "BlockStore",
    "MemoryBlockStore",
    "persist_chain",
    "SnapshotManager",
    "chain_from_payload",
    "load_snapshot",
    "save_snapshot",
    "snapshot_digest",
    "snapshot_payload",
    "JournalBlockStore",
]
