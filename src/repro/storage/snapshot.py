"""Whole-chain JSON snapshots.

Snapshots capture the complete state of a :class:`~repro.core.chain.Blockchain`
(blocks, genesis marker, deletion registry, configuration) in one JSON file.
They are what a freshly joining anchor node downloads to obtain the *"current
status quo"* clients and nodes must anchor their trust in (Section V-B3/B4),
and they double as the persistence format of the examples and benchmarks.

Two formats share the same ``to_dict`` payload:

* the **file format** (:func:`save_snapshot` / :func:`load_snapshot`) —
  indented JSON, friendly to inspection and version control;
* the **wire format** (:func:`snapshot_payload` / :func:`chain_from_payload`)
  — one compact, canonically ordered string, the unit the snapshot-bootstrap
  protocol (:mod:`repro.sync.bootstrap`) chunks, digests and streams between
  anchor nodes.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.core.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - the chain façade imports this package
    from repro.core.chain import Blockchain


#: Audit events carried by the wire format.  The audit trail is pure
#: observability — it never influences block hashes or chain behaviour — so
#: a bootstrapping replica only receives a bounded tail of it.  Without this
#: cap the snapshot would grow linearly with chain *age* even though the
#: living chain itself is bounded by retention, and the whole point of the
#: snapshot bootstrap is that its cost tracks the living state, not history.
WIRE_AUDIT_WINDOW = 64


def snapshot_payload(chain: Blockchain, *, audit_window: Optional[int] = WIRE_AUDIT_WINDOW) -> str:
    """Serialise the chain state to one compact canonical string.

    The output is deterministic for a given chain state (sorted keys, no
    whitespace), so its length and digest are stable quantities the wire
    protocol can advertise in a manifest before streaming the chunks.  The
    audit trail is truncated to its newest ``audit_window`` events
    (``None`` keeps all of them — the file format's behaviour).
    """
    state = chain.to_dict()
    if audit_window is not None:
        state["events"] = state["events"][-audit_window:]
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def snapshot_digest(payload: str) -> str:
    """Integrity digest of a wire snapshot payload (hex sha256)."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def chain_from_payload(payload: str, **chain_kwargs) -> Blockchain:
    """Restore and fully verify a chain from a wire snapshot payload.

    Mirrors :func:`load_snapshot`: besides the hash-chain validation the
    chain index rebuilt by ``Blockchain.from_dict`` is verified against the
    legacy linear scans, so a bootstrapping replica never starts serving
    lookups from a corrupt cache.  Raises :class:`StorageError` on malformed
    payloads and the chain's own integrity errors on inconsistent state.
    """
    from repro.core.chain import Blockchain

    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StorageError(f"snapshot payload is not valid JSON: {exc}") from exc
    chain = Blockchain.from_dict(data, **chain_kwargs)
    chain.validate()
    chain.verify_index()
    return chain


def save_snapshot(chain: Blockchain, path: Union[str, Path]) -> int:
    """Serialise the chain to ``path``; returns the written size in bytes."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(chain.to_dict(), sort_keys=True, indent=2)
    target.write_text(payload, encoding="utf-8")
    return len(payload.encode("utf-8"))


def load_snapshot(path: Union[str, Path], **chain_kwargs) -> Blockchain:
    """Restore a chain from a snapshot produced by :func:`save_snapshot`.

    Besides the hash-chain validation this also verifies the chain index
    rebuilt by ``Blockchain.from_dict`` against the legacy linear scans, so a
    freshly joining anchor node never starts serving lookups from a corrupt
    cache.
    """
    from repro.core.chain import Blockchain

    source = Path(path)
    if not source.exists():
        raise StorageError(f"snapshot {source} does not exist")
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StorageError(f"snapshot {source} is not valid JSON: {exc}") from exc
    chain = Blockchain.from_dict(payload, **chain_kwargs)
    chain.validate()
    chain.verify_index()
    return chain


class SnapshotManager:
    """Keeps a rotating set of snapshots for one chain."""

    def __init__(self, directory: Union[str, Path], *, keep: int = 3, prefix: str = "chain") -> None:
        if keep < 1:
            raise StorageError("must keep at least one snapshot")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.prefix = prefix

    def _snapshot_path(self, head_number: int) -> Path:
        return self.directory / f"{self.prefix}-{head_number:08d}.json"

    def existing_snapshots(self) -> list[Path]:
        """Snapshot files, oldest first."""
        return sorted(self.directory.glob(f"{self.prefix}-*.json"))

    def save(self, chain: Blockchain) -> Path:
        """Write a snapshot for the chain's current head and rotate old ones."""
        path = self._snapshot_path(chain.head.block_number)
        save_snapshot(chain, path)
        snapshots = self.existing_snapshots()
        for stale in snapshots[: max(0, len(snapshots) - self.keep)]:
            stale.unlink()
        return path

    def latest(self) -> Optional[Path]:
        """Most recent snapshot path, if any."""
        snapshots = self.existing_snapshots()
        return snapshots[-1] if snapshots else None

    def restore_latest(self, **chain_kwargs) -> Blockchain:
        """Load the most recent snapshot."""
        latest = self.latest()
        if latest is None:
            raise StorageError(f"no snapshots under {self.directory}")
        return load_snapshot(latest, **chain_kwargs)
