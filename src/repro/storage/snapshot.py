"""Whole-chain JSON snapshots.

Snapshots capture the complete state of a :class:`~repro.core.chain.Blockchain`
(blocks, genesis marker, deletion registry, configuration) in one JSON file.
They are what a freshly joining anchor node downloads to obtain the *"current
status quo"* clients and nodes must anchor their trust in (Section V-B3/B4),
and they double as the persistence format of the examples and benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.core.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - the chain façade imports this package
    from repro.core.chain import Blockchain


def save_snapshot(chain: Blockchain, path: Union[str, Path]) -> int:
    """Serialise the chain to ``path``; returns the written size in bytes."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(chain.to_dict(), sort_keys=True, indent=2)
    target.write_text(payload, encoding="utf-8")
    return len(payload.encode("utf-8"))


def load_snapshot(path: Union[str, Path], **chain_kwargs) -> Blockchain:
    """Restore a chain from a snapshot produced by :func:`save_snapshot`.

    Besides the hash-chain validation this also verifies the chain index
    rebuilt by ``Blockchain.from_dict`` against the legacy linear scans, so a
    freshly joining anchor node never starts serving lookups from a corrupt
    cache.
    """
    from repro.core.chain import Blockchain

    source = Path(path)
    if not source.exists():
        raise StorageError(f"snapshot {source} does not exist")
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StorageError(f"snapshot {source} is not valid JSON: {exc}") from exc
    chain = Blockchain.from_dict(payload, **chain_kwargs)
    chain.validate()
    chain.verify_index()
    return chain


class SnapshotManager:
    """Keeps a rotating set of snapshots for one chain."""

    def __init__(self, directory: Union[str, Path], *, keep: int = 3, prefix: str = "chain") -> None:
        if keep < 1:
            raise StorageError("must keep at least one snapshot")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.prefix = prefix

    def _snapshot_path(self, head_number: int) -> Path:
        return self.directory / f"{self.prefix}-{head_number:08d}.json"

    def existing_snapshots(self) -> list[Path]:
        """Snapshot files, oldest first."""
        return sorted(self.directory.glob(f"{self.prefix}-*.json"))

    def save(self, chain: Blockchain) -> Path:
        """Write a snapshot for the chain's current head and rotate old ones."""
        path = self._snapshot_path(chain.head.block_number)
        save_snapshot(chain, path)
        snapshots = self.existing_snapshots()
        for stale in snapshots[: max(0, len(snapshots) - self.keep)]:
            stale.unlink()
        return path

    def latest(self) -> Optional[Path]:
        """Most recent snapshot path, if any."""
        snapshots = self.existing_snapshots()
        return snapshots[-1] if snapshots else None

    def restore_latest(self, **chain_kwargs) -> Blockchain:
        """Load the most recent snapshot."""
        latest = self.latest()
        if latest is None:
            raise StorageError(f"no snapshots under {self.directory}")
        return load_snapshot(latest, **chain_kwargs)
