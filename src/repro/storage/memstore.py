"""In-memory block store.

Anchor nodes *"manage the full copy of the blockchain"* (Section IV-A); the
storage backends decouple that copy from the chain logic so deployments can
choose volatile memory (tests, simulation), an append-only journal
(:mod:`repro.storage.wal`) or JSON snapshots (:mod:`repro.storage.snapshot`).
All backends share the :class:`BlockStore` interface, including the
``truncate_before`` operation the marker shift needs to physically reclaim
space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional

from repro.core.block import Block
from repro.core.errors import StorageError


class BlockStore(ABC):
    """Interface every storage backend implements."""

    @abstractmethod
    def append(self, block: Block) -> None:
        """Persist one block at the end of the store."""

    @abstractmethod
    def get(self, block_number: int) -> Block:
        """Load a block by number (raises :class:`StorageError` if missing)."""

    @abstractmethod
    def truncate_before(self, block_number: int) -> int:
        """Physically remove all blocks before ``block_number``.

        Returns the number of removed blocks.  This is what reclaims disk
        space after a genesis-marker shift.
        """

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored blocks."""

    @abstractmethod
    def __iter__(self) -> Iterator[Block]:
        """Iterate over stored blocks in ascending block-number order."""

    def head(self) -> Optional[Block]:
        """The stored block with the highest number, or ``None`` when empty."""
        last = None
        for block in self:
            last = block
        return last

    def byte_size(self) -> int:
        """Approximate serialised size of all stored blocks."""
        return sum(block.byte_size() for block in self)


class MemoryBlockStore(BlockStore):
    """Dict-backed store; the default backend of the chain façade.

    Appends enforce contiguous numbering, so the stored numbers always form
    one gap-free range ``[first, last]``; the cached bounds make ``append``,
    ``head`` and ``get`` O(1) — the chain façade sits on this store, so the
    store must not reintroduce the linear scans the chain index removed.
    """

    def __init__(self) -> None:
        self._blocks: dict[int, Block] = {}
        self._first: Optional[int] = None
        self._last: Optional[int] = None

    def append(self, block: Block) -> None:
        """Store a block, rejecting duplicates and number regressions."""
        if block.block_number in self._blocks:
            raise StorageError(f"block {block.block_number} is already stored")
        if self._last is not None and block.block_number != self._last + 1:
            raise StorageError(
                f"expected block {self._last + 1}, got {block.block_number}"
            )
        self._blocks[block.block_number] = block
        if self._first is None:
            self._first = block.block_number
        self._last = block.block_number

    def get(self, block_number: int) -> Block:
        """Load a block by number."""
        try:
            return self._blocks[block_number]
        except KeyError:
            raise StorageError(f"block {block_number} is not stored") from None

    def truncate_before(self, block_number: int) -> int:
        """Drop all blocks with a smaller number."""
        if self._first is None:
            return 0
        doomed = range(self._first, min(block_number, self._last + 1))
        for number in doomed:
            del self._blocks[number]
        if self._blocks:
            self._first = max(self._first, block_number)
        else:
            self._first = self._last = None
        return len(doomed)

    def head(self) -> Optional[Block]:
        """The newest stored block (O(1))."""
        return self._blocks[self._last] if self._last is not None else None

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        if self._first is None:
            return
        for number in range(self._first, self._last + 1):
            yield self._blocks[number]


def persist_chain(store: BlockStore, blocks: list[Block]) -> int:
    """Append every not-yet-stored block of a living chain to ``store``.

    Returns the number of newly persisted blocks.  Used by anchor nodes after
    each sealing round.
    """
    stored_head = store.head()
    start_number = stored_head.block_number + 1 if stored_head is not None else None
    added = 0
    for block in blocks:
        if start_number is not None and block.block_number < start_number:
            continue
        if start_number is None and len(store) == 0 and block.block_number != blocks[0].block_number:
            continue
        try:
            store.append(block)
        except StorageError:
            continue
        added += 1
    return added
