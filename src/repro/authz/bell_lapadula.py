"""Bell-LaPadula-style automatic cohesion / access model.

Section IV-D2 suggests that an automatic approach to deciding deletions
*"could be designed based on the principle of Bell-LaPadula model or
Brewer-Nash Model"*.  This module implements the Bell-LaPadula side: entries
and subjects carry security levels, reads follow *no read up*, writes follow
*no write down* (the \\*-property), and deletions are only granted to subjects
whose clearance dominates the entry's classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

from repro.core.chain import Blockchain, CohesionChecker
from repro.core.entry import EntryReference
from repro.core.errors import AuthorizationError


class SecurityLevel(IntEnum):
    """Linearly ordered classification levels."""

    PUBLIC = 0
    INTERNAL = 1
    CONFIDENTIAL = 2
    SECRET = 3


@dataclass
class BellLaPadulaModel:
    """Mandatory access control with the simple-security and star properties."""

    subject_clearance: dict[str, SecurityLevel] = field(default_factory=dict)
    object_classification: dict[tuple[int, int], SecurityLevel] = field(default_factory=dict)
    default_clearance: SecurityLevel = SecurityLevel.PUBLIC
    default_classification: SecurityLevel = SecurityLevel.PUBLIC

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def clear_subject(self, subject: str, level: SecurityLevel) -> None:
        """Assign a clearance level to a subject."""
        self.subject_clearance[subject] = level

    def classify_entry(self, reference: EntryReference, level: SecurityLevel) -> None:
        """Assign a classification level to an entry."""
        self.object_classification[(reference.block_number, reference.entry_number)] = level

    def clearance_of(self, subject: str) -> SecurityLevel:
        """Clearance of a subject (default when unregistered)."""
        return self.subject_clearance.get(subject, self.default_clearance)

    def classification_of(self, reference: EntryReference) -> SecurityLevel:
        """Classification of an entry (default when unregistered)."""
        return self.object_classification.get(
            (reference.block_number, reference.entry_number), self.default_classification
        )

    # ------------------------------------------------------------------ #
    # The two BLP properties plus the deletion rule
    # ------------------------------------------------------------------ #

    def may_read(self, subject: str, reference: EntryReference) -> bool:
        """Simple security property: no read up."""
        return self.clearance_of(subject) >= self.classification_of(reference)

    def may_write(self, subject: str, reference: EntryReference) -> bool:
        """Star property: no write down."""
        return self.clearance_of(subject) <= self.classification_of(reference)

    def may_delete(self, subject: str, reference: EntryReference) -> bool:
        """Deletion rule: the subject's clearance must dominate the entry.

        Deleting is modelled as an administrative read-and-destroy, so the
        subject must be allowed to read the entry; writing-down concerns do
        not apply because nothing is disclosed to lower levels.
        """
        return self.may_read(subject, reference)

    def require_delete(self, subject: str, reference: EntryReference) -> None:
        """Raise :class:`AuthorizationError` when deletion is not allowed."""
        if not self.may_delete(subject, reference):
            raise AuthorizationError(
                f"{subject!r} (clearance {self.clearance_of(subject).name}) may not delete "
                f"{reference} (classified {self.classification_of(reference).name})"
            )

    # ------------------------------------------------------------------ #
    # Chain integration
    # ------------------------------------------------------------------ #

    def as_cohesion_checker(self) -> CohesionChecker:
        """Cohesion checker enforcing the deletion rule on the chain.

        The requesting subject is the author of the deletion request; the
        target's classification comes from the registered levels.
        """

        def checker(target: EntryReference, chain: Blockchain, requester: str) -> tuple[bool, str]:
            located = chain.find_entry(target)
            if located is None:
                return False, f"target {target} not found"
            subject: Optional[str] = requester or located[1].author
            if self.may_delete(subject, target):
                return True, f"clearance of {subject!r} dominates the entry classification"
            return False, (
                f"clearance of {subject!r} is below the classification of {target}"
            )

        return checker
