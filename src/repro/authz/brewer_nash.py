"""Brewer-Nash ("Chinese Wall") automatic cohesion model.

The second automatic model Section IV-D2 proposes.  Entries belong to
*datasets* of *conflict-of-interest classes*; once a subject has accessed a
dataset of a class, it may no longer access — and in particular may not
trigger deletions in — any other dataset of the same class.  This prevents a
participant from selectively erasing the records of a competitor after
having worked with its own records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.chain import Blockchain, CohesionChecker
from repro.core.entry import EntryReference
from repro.core.errors import AuthorizationError


@dataclass(frozen=True)
class Dataset:
    """A company dataset inside a conflict-of-interest class."""

    name: str
    conflict_class: str


@dataclass
class BrewerNashModel:
    """Chinese-Wall access tracking for deletion decisions."""

    datasets: dict[str, Dataset] = field(default_factory=dict)
    entry_dataset: dict[tuple[int, int], str] = field(default_factory=dict)
    access_history: dict[str, set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register_dataset(self, name: str, conflict_class: str) -> Dataset:
        """Declare a dataset inside a conflict-of-interest class."""
        dataset = Dataset(name=name, conflict_class=conflict_class)
        self.datasets[name] = dataset
        return dataset

    def tag_entry(self, reference: EntryReference, dataset_name: str) -> None:
        """Attach an entry to a dataset."""
        if dataset_name not in self.datasets:
            raise AuthorizationError(f"unknown dataset {dataset_name!r}")
        self.entry_dataset[(reference.block_number, reference.entry_number)] = dataset_name

    def dataset_of(self, reference: EntryReference) -> Optional[Dataset]:
        """Dataset an entry belongs to, if tagged."""
        name = self.entry_dataset.get((reference.block_number, reference.entry_number))
        return self.datasets.get(name) if name else None

    # ------------------------------------------------------------------ #
    # Chinese-Wall rule
    # ------------------------------------------------------------------ #

    def record_access(self, subject: str, dataset_name: str) -> None:
        """Note that ``subject`` has worked with ``dataset_name``."""
        if dataset_name not in self.datasets:
            raise AuthorizationError(f"unknown dataset {dataset_name!r}")
        self.access_history.setdefault(subject, set()).add(dataset_name)

    def may_access(self, subject: str, dataset_name: str) -> bool:
        """Simple-security rule of Brewer-Nash.

        Access is allowed when the subject has not yet touched a *different*
        dataset in the same conflict class.
        """
        dataset = self.datasets.get(dataset_name)
        if dataset is None:
            return False
        for accessed_name in self.access_history.get(subject, set()):
            accessed = self.datasets[accessed_name]
            if accessed.conflict_class == dataset.conflict_class and accessed.name != dataset.name:
                return False
        return True

    def may_delete(self, subject: str, reference: EntryReference) -> bool:
        """Deletion is only permitted inside datasets the wall allows."""
        dataset = self.dataset_of(reference)
        if dataset is None:
            return True  # untagged entries are outside any wall
        return self.may_access(subject, dataset.name)

    # ------------------------------------------------------------------ #
    # Chain integration
    # ------------------------------------------------------------------ #

    def as_cohesion_checker(self) -> CohesionChecker:
        """Cohesion checker enforcing the Chinese Wall on deletion requests."""

        def checker(target: EntryReference, chain: Blockchain, requester: str) -> tuple[bool, str]:
            dataset = self.dataset_of(target)
            if dataset is None:
                return True, "entry is not governed by a conflict-of-interest class"
            if self.may_delete(requester, target):
                self.record_access(requester, dataset.name)
                return True, f"access to dataset {dataset.name!r} is on the requester's side of the wall"
            return False, (
                f"{requester!r} already accessed a competing dataset in class "
                f"{dataset.conflict_class!r}"
            )

        return checker
