"""Role-based authorization.

Section IV-D1: *"For authorization of privileges, it can be applied a
role-based concept with corresponding user signatures. ... the anchor nodes
of the quorum work together as a basis of trust and are jointly granted full
administrative privileges.  These receive a master signature. ... a user is
only allowed to submit delete requests for his own transactions."*

This module provides the role model (user, auditor, admin/quorum), the
permission catalogue, and an :class:`AccessController` that plugs into the
chain façade as its deletion authorizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.core.deletion import Authorizer
from repro.core.entry import Entry
from repro.core.errors import AuthorizationError


class Role(str, Enum):
    """Roles known to the access controller."""

    #: Ordinary participant: may submit entries and delete own entries.
    USER = "user"
    #: Read-everything role for compliance audits; may not delete anything.
    AUDITOR = "auditor"
    #: Quorum member holding the master signature; may delete foreign entries.
    ADMIN = "admin"


class Permission(str, Enum):
    """Actions the controller can be asked about."""

    SUBMIT_ENTRY = "submit_entry"
    READ_CHAIN = "read_chain"
    DELETE_OWN = "delete_own"
    DELETE_FOREIGN = "delete_foreign"
    SHIFT_MARKER = "shift_marker"


#: Default permission matrix; deployments can override per instance.
DEFAULT_ROLE_PERMISSIONS: dict[Role, frozenset[Permission]] = {
    Role.USER: frozenset({Permission.SUBMIT_ENTRY, Permission.READ_CHAIN, Permission.DELETE_OWN}),
    Role.AUDITOR: frozenset({Permission.READ_CHAIN}),
    Role.ADMIN: frozenset(
        {
            Permission.SUBMIT_ENTRY,
            Permission.READ_CHAIN,
            Permission.DELETE_OWN,
            Permission.DELETE_FOREIGN,
            Permission.SHIFT_MARKER,
        }
    ),
}


@dataclass
class AccessController:
    """Assigns roles to participants and answers permission questions."""

    assignments: dict[str, Role] = field(default_factory=dict)
    permissions: dict[Role, frozenset[Permission]] = field(
        default_factory=lambda: dict(DEFAULT_ROLE_PERMISSIONS)
    )
    default_role: Optional[Role] = Role.USER

    # ------------------------------------------------------------------ #
    # Role management
    # ------------------------------------------------------------------ #

    def assign(self, participant: str, role: Role) -> None:
        """Give ``participant`` the given role."""
        self.assignments[participant] = role

    def assign_admins(self, participants: Iterable[str]) -> None:
        """Grant the quorum master signature (ADMIN role) to several nodes."""
        for participant in participants:
            self.assign(participant, Role.ADMIN)

    def role_of(self, participant: str) -> Role:
        """Role of a participant (falls back to the default role)."""
        role = self.assignments.get(participant, self.default_role)
        if role is None:
            raise AuthorizationError(f"participant {participant!r} has no role assigned")
        return role

    # ------------------------------------------------------------------ #
    # Permission checks
    # ------------------------------------------------------------------ #

    def has_permission(self, participant: str, permission: Permission) -> bool:
        """True when the participant's role grants the permission."""
        try:
            role = self.role_of(participant)
        except AuthorizationError:
            return False
        return permission in self.permissions.get(role, frozenset())

    def require(self, participant: str, permission: Permission) -> None:
        """Raise :class:`AuthorizationError` unless the permission is granted."""
        if not self.has_permission(participant, permission):
            raise AuthorizationError(
                f"{participant!r} ({self.role_of(participant).value}) lacks permission {permission.value}"
            )

    # ------------------------------------------------------------------ #
    # Deletion authorizer (plugs into Blockchain)
    # ------------------------------------------------------------------ #

    def deletion_authorizer(self) -> Authorizer:
        """Build the deletion authorization hook for :class:`Blockchain`.

        Implements the paper's rule: own entries are deletable with
        ``DELETE_OWN``; foreign entries require ``DELETE_FOREIGN`` (the
        quorum master signature).
        """

        def authorize(request: Entry, target: Entry) -> tuple[bool, str]:
            same_signer = (
                request.public_key == target.public_key
                if request.public_key and target.public_key
                else request.author == target.author
            )
            if same_signer:
                if self.has_permission(request.author, Permission.DELETE_OWN):
                    return True, "owner deletion permitted by role"
                return False, f"role of {request.author!r} may not delete entries"
            if self.has_permission(request.author, Permission.DELETE_FOREIGN):
                return True, "foreign deletion permitted by master signature"
            return False, (
                f"{request.author!r} may not delete an entry of {target.author!r}"
            )

        return authorize

    def statistics(self) -> dict[str, int]:
        """Role distribution for reports."""
        counts: dict[str, int] = {role.value: 0 for role in Role}
        for role in self.assignments.values():
            counts[role.value] += 1
        return counts
