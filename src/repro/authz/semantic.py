"""Semantic cohesion of deletions.

Section IV-D2: *"A deletion request can only be granted, if further
transactions do not rely on it.  Otherwise, multiple transactions need to be
revoked, which may involve additional parties.  A deletion request of such a
chain part of a transaction chain can be approved by the signatures of all
dependent parties."*

The cohesion checker maintains a dependency graph between entries
(``depends_on`` edges declared by the application when it writes entries that
reference earlier ones), refuses deletions of entries that still have living
dependants, and supports the co-signing workflow for dependent parties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.chain import Blockchain, CohesionChecker
from repro.core.entry import EntryReference
from repro.core.errors import CohesionError


def _key(reference: EntryReference) -> tuple[int, int]:
    return (reference.block_number, reference.entry_number)


@dataclass
class DependencyGraph:
    """Directed graph: an edge A -> B means "A depends on B"."""

    _dependencies: dict[tuple[int, int], set[tuple[int, int]]] = field(default_factory=dict)
    _dependants: dict[tuple[int, int], set[tuple[int, int]]] = field(default_factory=dict)
    _owners: dict[tuple[int, int], str] = field(default_factory=dict)

    def register_entry(self, reference: EntryReference, owner: str) -> None:
        """Record the owner of an entry so co-signature sets can be computed."""
        self._owners[_key(reference)] = owner

    def add_dependency(self, dependant: EntryReference, dependency: EntryReference) -> None:
        """Declare that ``dependant`` relies on ``dependency``."""
        if _key(dependant) == _key(dependency):
            raise CohesionError("an entry cannot depend on itself")
        self._dependencies.setdefault(_key(dependant), set()).add(_key(dependency))
        self._dependants.setdefault(_key(dependency), set()).add(_key(dependant))

    def dependants_of(self, reference: EntryReference) -> list[EntryReference]:
        """Entries that directly rely on ``reference``."""
        return [
            EntryReference(block_number=block, entry_number=entry)
            for block, entry in sorted(self._dependants.get(_key(reference), set()))
        ]

    def transitive_dependants(self, reference: EntryReference) -> list[EntryReference]:
        """All entries that directly or indirectly rely on ``reference``."""
        seen: set[tuple[int, int]] = set()
        stack = [_key(reference)]
        while stack:
            current = stack.pop()
            for dependant in self._dependants.get(current, set()):
                if dependant not in seen:
                    seen.add(dependant)
                    stack.append(dependant)
        return [EntryReference(block_number=b, entry_number=e) for b, e in sorted(seen)]

    def owner_of(self, reference: EntryReference) -> Optional[str]:
        """Registered owner of an entry."""
        return self._owners.get(_key(reference))

    def required_cosigners(self, reference: EntryReference) -> set[str]:
        """Owners of all dependants whose signatures a deletion would need."""
        cosigners = set()
        for dependant in self.transitive_dependants(reference):
            owner = self.owner_of(dependant)
            if owner is not None:
                cosigners.add(owner)
        return cosigners

    def remove_entry(self, reference: EntryReference) -> None:
        """Drop an entry and its edges (after it was physically deleted)."""
        key = _key(reference)
        for dependency in self._dependencies.pop(key, set()):
            self._dependants.get(dependency, set()).discard(key)
        for dependant in self._dependants.pop(key, set()):
            self._dependencies.get(dependant, set()).discard(key)
        self._owners.pop(key, None)


@dataclass
class CohesionPolicy:
    """Semantic-cohesion checker pluggable into :class:`Blockchain`.

    A deletion is cohesive when the target has no living dependants, or when
    every required co-signer has signed off (:meth:`cosign`).
    """

    graph: DependencyGraph = field(default_factory=DependencyGraph)
    _cosignatures: dict[tuple[int, int], set[str]] = field(default_factory=dict)

    def cosign(self, target: EntryReference, party: str) -> None:
        """Record a dependent party's consent to delete ``target``."""
        self._cosignatures.setdefault(_key(target), set()).add(party)

    def cosigners_of(self, target: EntryReference) -> set[str]:
        """Parties that already co-signed the deletion of ``target``."""
        return set(self._cosignatures.get(_key(target), set()))

    def missing_cosigners(self, target: EntryReference) -> set[str]:
        """Required co-signers that have not signed yet."""
        return self.graph.required_cosigners(target) - self.cosigners_of(target)

    def check(self, target: EntryReference, chain: Blockchain, requester: str = "") -> tuple[bool, str]:
        """Cohesion verdict used by :class:`Blockchain.request_deletion`.

        ``requester`` (the author of the deletion request) also counts as an
        implicit co-signer of their own request.
        """
        if requester:
            self.cosign(target, requester)
        living_dependants = [
            dependant
            for dependant in self.graph.transitive_dependants(target)
            if chain.entry_exists(dependant) and not chain.is_marked_for_deletion(dependant)
        ]
        if not living_dependants:
            return True, "no living entries depend on the target"
        missing = self.missing_cosigners(target)
        if not missing:
            return True, (
                f"all {len(self.graph.required_cosigners(target))} dependent parties co-signed"
            )
        return False, (
            f"{len(living_dependants)} dependent entries exist; missing co-signatures from "
            f"{sorted(missing)}"
        )

    def as_checker(self) -> CohesionChecker:
        """Return the callable form expected by the chain façade."""

        def checker(target: EntryReference, chain: Blockchain, requester: str) -> tuple[bool, str]:
            return self.check(target, chain, requester)

        return checker
