"""Authorization and semantic-cohesion layer (Section IV-D1 / IV-D2).

Role-based access control with the quorum's master signature, a dependency
graph with co-signing for semantic cohesion, and the two automatic models
the paper proposes: Bell-LaPadula and Brewer-Nash.
"""

from repro.authz.bell_lapadula import BellLaPadulaModel, SecurityLevel
from repro.authz.brewer_nash import BrewerNashModel, Dataset
from repro.authz.roles import (
    DEFAULT_ROLE_PERMISSIONS,
    AccessController,
    Permission,
    Role,
)
from repro.authz.semantic import CohesionPolicy, DependencyGraph

__all__ = [
    "BellLaPadulaModel",
    "SecurityLevel",
    "BrewerNashModel",
    "Dataset",
    "DEFAULT_ROLE_PERMISSIONS",
    "AccessController",
    "Permission",
    "Role",
    "CohesionPolicy",
    "DependencyGraph",
]
