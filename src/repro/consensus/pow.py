"""Simplified Proof-of-Work engine.

The paper's concept applies to mined chains such as Bitcoin (Section VI
explicitly mentions extending "already running systems like Bitcoin"), and
the 51 %-attack analysis of Section V-B1 reasons about the number of blocks
an attacker must re-mine.  This engine implements hash-prefix proof of work
with a configurable difficulty in bits, low enough to run in tests and
benchmarks yet structurally identical to production PoW.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consensus.base import ConsensusDecision, ConsensusEngine
from repro.core.block import Block
from repro.core.errors import ConsensusError


def _leading_zero_bits(hex_digest: str) -> int:
    """Number of leading zero bits of a hex digest."""
    bits = 0
    for character in hex_digest:
        value = int(character, 16)
        if value == 0:
            bits += 4
            continue
        # Count the leading zeros inside this nibble and stop.
        bits += 4 - value.bit_length()
        break
    return bits


@dataclass
class ProofOfWork(ConsensusEngine):
    """Hash-prefix proof of work with ``difficulty_bits`` leading zero bits."""

    difficulty_bits: int = 8
    max_attempts: int = 2_000_000
    name: str = "pow"

    def __post_init__(self) -> None:
        if self.difficulty_bits < 0:
            raise ConsensusError("difficulty_bits must be non-negative")
        if self.max_attempts <= 0:
            raise ConsensusError("max_attempts must be positive")

    def expected_attempts(self) -> int:
        """Expected number of nonce trials per block (2^difficulty)."""
        return 1 << self.difficulty_bits

    def meets_difficulty(self, block: Block) -> bool:
        """Check the hash-prefix condition for ``block``."""
        return _leading_zero_bits(block.block_hash) >= self.difficulty_bits

    def prepare_block(self, block: Block) -> Block:
        """Mine the block by scanning nonces until the difficulty is met."""
        for nonce in range(self.max_attempts):
            block.set_nonce(nonce)
            if self.meets_difficulty(block):
                return block
        raise ConsensusError(
            f"could not mine block {block.block_number} within {self.max_attempts} attempts"
        )

    def validate_block(self, block: Block, previous: Optional[Block]) -> ConsensusDecision:
        """Accept blocks whose hash satisfies the difficulty target."""
        if not self.meets_difficulty(block):
            return ConsensusDecision(
                accepted=False,
                reason=f"block {block.block_number} does not meet difficulty {self.difficulty_bits} bits",
            )
        return ConsensusDecision(accepted=True, reason="difficulty target met")

    def work_per_block(self) -> float:
        """Relative work unit per block, used by the attack model."""
        return float(self.expected_attempts())
