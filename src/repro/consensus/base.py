"""Consensus abstraction.

Section IV-A stresses that the selective-deletion concept *"is based on this
functionality, independent of the specific consensus algorithm"*, and
Section V-B3 states that *"any consensus algorithm can be extended by the
described behavior"*.  The library therefore treats consensus as a strategy
object: an engine prepares blocks before they are appended (e.g. mining a
nonce or attaching a validator signature) and validates blocks received from
peers.  The summary/deletion layer never looks inside the engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.core.block import Block


@dataclass(frozen=True)
class ConsensusDecision:
    """Outcome of validating a block under a consensus engine."""

    accepted: bool
    reason: str = ""


class ConsensusEngine(ABC):
    """Strategy interface every consensus algorithm implements."""

    #: Short engine name used in logs and reports.
    name: str = "abstract"

    @abstractmethod
    def prepare_block(self, block: Block) -> Block:
        """Finalise a freshly built block (mine it, sign it, ...).

        The engine may mutate the block in place (e.g. set the nonce) and
        must return it.
        """

    @abstractmethod
    def validate_block(self, block: Block, previous: Optional[Block]) -> ConsensusDecision:
        """Check that a block satisfies the engine's acceptance rule."""

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"{self.name} consensus engine"


class NullConsensus(ConsensusEngine):
    """Accept-everything engine used by unit tests and micro-benchmarks.

    Useful to isolate the cost of the summarisation machinery itself from the
    cost of mining or signature checking.
    """

    name = "null"

    def prepare_block(self, block: Block) -> Block:
        """Return the block unchanged."""
        return block

    def validate_block(self, block: Block, previous: Optional[Block]) -> ConsensusDecision:
        """Accept every block."""
        return ConsensusDecision(accepted=True, reason="null consensus accepts everything")
