"""Election of anchor nodes.

Section IV-A: *"For the election of the group of these trusted nodes,
several community based approaches can be applied.  This depends on the type
of the blockchain: public, private, consortium, hybrid.  For example, the
trusted community could consist of a non-profit organisation or participated
users, who have previously done transaction in the blockchain."*

This module implements three such election strategies so deployments (and
the network simulator) can pick the one matching their chain type:

* :class:`StaticElection` — a fixed, operator-provided list (private /
  consortium chains),
* :class:`ActivityElection` — the most active past participants become
  anchors (public chains, the paper's "participated users" example),
* :class:`BordaElection` — committee election by ranked ballots, following
  the committee-voting literature the paper cites (Black, *The Theory of
  Committees and Elections*).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.chain import Blockchain
from repro.core.errors import ConsensusError


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of an anchor-node election."""

    anchors: tuple[str, ...]
    scores: Mapping[str, float]
    strategy: str

    def is_anchor(self, candidate: str) -> bool:
        """True when ``candidate`` was elected."""
        return candidate in self.anchors


class ElectionStrategy(ABC):
    """Interface for anchor-node election strategies."""

    name: str = "abstract"

    @abstractmethod
    def elect(self, seats: int) -> ElectionResult:
        """Elect ``seats`` anchor nodes."""


@dataclass
class StaticElection(ElectionStrategy):
    """Operator-defined anchor set for private and consortium chains."""

    candidates: Sequence[str]
    name: str = "static"

    def elect(self, seats: int) -> ElectionResult:
        """Return the first ``seats`` configured candidates."""
        if seats <= 0:
            raise ConsensusError("the number of seats must be positive")
        chosen = tuple(self.candidates[:seats])
        if len(chosen) < seats:
            raise ConsensusError("not enough configured candidates for the requested seats")
        return ElectionResult(
            anchors=chosen,
            scores={candidate: 1.0 for candidate in chosen},
            strategy=self.name,
        )


@dataclass
class ActivityElection(ElectionStrategy):
    """Elect the participants with the most past transactions in the chain."""

    chain: Blockchain
    minimum_entries: int = 1
    name: str = "activity"

    def activity_scores(self) -> dict[str, float]:
        """Count entries per author over the living chain (copies included)."""
        counts: Counter[str] = Counter()
        for _, entry in self.chain.iter_entries():
            if not entry.is_deletion_request:
                counts[entry.author] += 1
        return {author: float(count) for author, count in counts.items()}

    def elect(self, seats: int) -> ElectionResult:
        """Pick the ``seats`` most active authors (ties broken by name)."""
        if seats <= 0:
            raise ConsensusError("the number of seats must be positive")
        scores = {
            author: score
            for author, score in self.activity_scores().items()
            if score >= self.minimum_entries
        }
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        chosen = tuple(author for author, _ in ranked[:seats])
        if len(chosen) < seats:
            raise ConsensusError(
                f"only {len(chosen)} participants meet the activity threshold; {seats} seats requested"
            )
        return ElectionResult(anchors=chosen, scores=scores, strategy=self.name)


@dataclass
class BordaElection(ElectionStrategy):
    """Committee election by Borda count over ranked ballots."""

    ballots: list[Sequence[str]] = field(default_factory=list)
    name: str = "borda"

    def add_ballot(self, ranking: Sequence[str]) -> None:
        """Register one voter's ranking (most preferred first)."""
        if len(set(ranking)) != len(ranking):
            raise ConsensusError("a ballot must not rank the same candidate twice")
        self.ballots.append(tuple(ranking))

    def scores_from_ballots(self) -> dict[str, float]:
        """Borda scores: the top of an n-candidate ballot earns n-1 points."""
        scores: dict[str, float] = {}
        for ballot in self.ballots:
            top = len(ballot) - 1
            for position, candidate in enumerate(ballot):
                scores[candidate] = scores.get(candidate, 0.0) + (top - position)
        return scores

    def elect(self, seats: int) -> ElectionResult:
        """Elect the ``seats`` candidates with the highest Borda scores."""
        if seats <= 0:
            raise ConsensusError("the number of seats must be positive")
        if not self.ballots:
            raise ConsensusError("no ballots have been cast")
        scores = self.scores_from_ballots()
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        chosen = tuple(candidate for candidate, _ in ranked[:seats])
        if len(chosen) < seats:
            raise ConsensusError("fewer distinct candidates than requested seats")
        return ElectionResult(anchors=chosen, scores=scores, strategy=self.name)


@dataclass
class HeadElection(ElectionStrategy):
    """Elect the most up-to-date replicas (highest head block number).

    Used for producer failover: under real message delay replicas progress
    unevenly — gossip hops still in flight, catch-ups pending — so when the
    producer disappears, the quorum promotes the replica that has replayed
    the most blocks (ties broken by node id) and loses nothing.
    """

    chains: Mapping[str, "Blockchain"] = field(default_factory=dict)
    name: str = "head"

    def elect(self, seats: int) -> ElectionResult:
        """Pick the ``seats`` candidates with the highest replica heads."""
        if seats <= 0:
            raise ConsensusError("the number of seats must be positive")
        scores = {
            node_id: float(chain.head.block_number) for node_id, chain in self.chains.items()
        }
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        chosen = tuple(node_id for node_id, _ in ranked[:seats])
        if len(chosen) < seats:
            raise ConsensusError(
                f"only {len(chosen)} candidate replicas available; {seats} seats requested"
            )
        return ElectionResult(anchors=chosen, scores=scores, strategy=self.name)


def elect_anchor_nodes(strategy: ElectionStrategy, seats: int) -> ElectionResult:
    """Convenience wrapper used by the network simulator."""
    return strategy.elect(seats)


def rotate_quorum(current: Iterable[str], newly_elected: Sequence[str], *, keep: int) -> list[str]:
    """Blend a new election result into an existing quorum.

    Keeps up to ``keep`` of the current members for stability and fills the
    remaining seats from the new election in order; the resulting quorum has
    the same size as the new election result.
    """
    if keep < 0:
        raise ConsensusError("keep must be non-negative")
    seats = len(newly_elected)
    retained = list(current)[:keep][:seats]
    for candidate in newly_elected:
        if len(retained) >= seats:
            break
        if candidate not in retained:
            retained.append(candidate)
    return retained
