"""Quorum voting.

Two decisions in the paper are taken by the quorum of anchor nodes:

* *"By a majority vote, the quorum determines the new first Block and the
  time of the changeover"* (Section IV-C — redefining the Genesis Block),
* deletion requests are *"approved ... according to the consensus of the
  anchor nodes"* (Section IV-D1), potentially under additional constraints
  the quorum dictates.

This module provides a small, reusable voting machine: proposals are opened,
members cast signed or unsigned votes, and the proposal is decided once a
configurable threshold (simple majority by default) is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Mapping, Optional

from repro.core.errors import ConsensusError


class ProposalState(str, Enum):
    """Lifecycle of a quorum proposal."""

    OPEN = "open"
    ACCEPTED = "accepted"
    REJECTED = "rejected"


@dataclass
class Proposal:
    """A single yes/no decision put before the quorum."""

    proposal_id: str
    kind: str
    payload: Any
    votes: dict[str, bool] = field(default_factory=dict)
    state: ProposalState = ProposalState.OPEN

    @property
    def yes_votes(self) -> int:
        """Number of approving votes."""
        return sum(1 for approve in self.votes.values() if approve)

    @property
    def no_votes(self) -> int:
        """Number of rejecting votes."""
        return sum(1 for approve in self.votes.values() if not approve)


@dataclass(frozen=True)
class VoteOutcome:
    """Result returned when a vote settles (or fails to settle) a proposal."""

    proposal_id: str
    state: ProposalState
    yes_votes: int
    no_votes: int
    member_count: int

    @property
    def decided(self) -> bool:
        """True once the proposal is accepted or rejected."""
        return self.state is not ProposalState.OPEN


class Quorum:
    """Majority voting among a fixed set of anchor nodes.

    ``threshold`` is the fraction of the *member set* that must approve; the
    default ``0.5`` (exclusive) realises a simple majority.  Rejection is
    declared as soon as approval has become impossible.
    """

    def __init__(self, members: Iterable[str], *, threshold: float = 0.5) -> None:
        self.members = sorted(set(members))
        if not self.members:
            raise ConsensusError("a quorum needs at least one member")
        if not 0.0 < threshold < 1.0:
            raise ConsensusError("threshold must be a fraction strictly between 0 and 1")
        self.threshold = threshold
        self._proposals: dict[str, Proposal] = {}

    # ------------------------------------------------------------------ #
    # Proposal management
    # ------------------------------------------------------------------ #

    def propose(self, proposal_id: str, kind: str, payload: Any) -> Proposal:
        """Open a new proposal (idempotent for the same id/kind/payload)."""
        existing = self._proposals.get(proposal_id)
        if existing is not None:
            if existing.kind != kind:
                raise ConsensusError(
                    f"proposal {proposal_id!r} already exists with a different kind"
                )
            return existing
        proposal = Proposal(proposal_id=proposal_id, kind=kind, payload=payload)
        self._proposals[proposal_id] = proposal
        return proposal

    def proposal(self, proposal_id: str) -> Proposal:
        """Fetch a proposal by id."""
        try:
            return self._proposals[proposal_id]
        except KeyError:
            raise ConsensusError(f"unknown proposal {proposal_id!r}") from None

    def open_proposals(self) -> list[Proposal]:
        """All proposals still awaiting a decision."""
        return [p for p in self._proposals.values() if p.state is ProposalState.OPEN]

    # ------------------------------------------------------------------ #
    # Voting
    # ------------------------------------------------------------------ #

    def required_votes(self) -> int:
        """Minimal number of yes votes needed for acceptance."""
        needed = int(len(self.members) * self.threshold) + 1
        return min(needed, len(self.members))

    def vote(self, proposal_id: str, member: str, approve: bool) -> VoteOutcome:
        """Cast (or change) a member's vote and evaluate the proposal."""
        if member not in self.members:
            raise ConsensusError(f"{member!r} is not a quorum member")
        proposal = self.proposal(proposal_id)
        if proposal.state is not ProposalState.OPEN:
            return self._outcome(proposal)
        proposal.votes[member] = approve
        self._evaluate(proposal)
        return self._outcome(proposal)

    def _evaluate(self, proposal: Proposal) -> None:
        required = self.required_votes()
        if proposal.yes_votes >= required:
            proposal.state = ProposalState.ACCEPTED
            return
        remaining = len(self.members) - len(proposal.votes)
        if proposal.yes_votes + remaining < required:
            proposal.state = ProposalState.REJECTED

    def _outcome(self, proposal: Proposal) -> VoteOutcome:
        return VoteOutcome(
            proposal_id=proposal.proposal_id,
            state=proposal.state,
            yes_votes=proposal.yes_votes,
            no_votes=proposal.no_votes,
            member_count=len(self.members),
        )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def record_votes(self, proposal_id: str, votes: Mapping[str, bool]) -> VoteOutcome:
        """Apply a batch of votes collected in one network round.

        The failover path broadcasts a ``VOTE_REQUEST`` to the reachable
        anchors and tallies whatever responses came back (some arrive late,
        some not at all — delay and partitions shape the outcome).  Votes
        are applied in member order; tallying stops as soon as the proposal
        is decided.
        """
        outcome = self._outcome(self.proposal(proposal_id))
        for member, approve in sorted(votes.items()):
            outcome = self.vote(proposal_id, member, approve)
            if outcome.decided:
                break
        return outcome

    def decide_unanimously(self, proposal_id: str, kind: str, payload: Any) -> VoteOutcome:
        """Open a proposal and have every member approve it.

        Models the common case of the deterministic decisions in the paper
        (marker shifts computed identically by every honest node).
        """
        self.propose(proposal_id, kind, payload)
        outcome: Optional[VoteOutcome] = None
        for member in self.members:
            outcome = self.vote(proposal_id, member, True)
            if outcome.decided:
                break
        assert outcome is not None
        return outcome

    def statistics(self) -> dict[str, int]:
        """Counters over all proposals seen so far."""
        states = [proposal.state for proposal in self._proposals.values()]
        return {
            "proposals": len(states),
            "accepted": sum(1 for state in states if state is ProposalState.ACCEPTED),
            "rejected": sum(1 for state in states if state is ProposalState.REJECTED),
            "open": sum(1 for state in states if state is ProposalState.OPEN),
        }
