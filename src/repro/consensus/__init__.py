"""Consensus layer: pluggable block-acceptance rules and quorum voting.

The selective-deletion concept is consensus-agnostic (Sections IV-A and
V-B3); this package supplies the engines the network simulator and the
benchmarks run against — an accept-all null engine, hash-prefix proof of
work, and anchor-node proof of authority — plus majority voting for the
quorum decisions (genesis-marker shifts, deletion approvals) and anchor-node
election strategies.
"""

from repro.consensus.base import ConsensusDecision, ConsensusEngine, NullConsensus
from repro.consensus.election import (
    ActivityElection,
    BordaElection,
    ElectionResult,
    ElectionStrategy,
    HeadElection,
    StaticElection,
    elect_anchor_nodes,
    rotate_quorum,
)
from repro.consensus.poa import ProofOfAuthority, ValidatorSet
from repro.consensus.pow import ProofOfWork
from repro.consensus.quorum import Proposal, ProposalState, Quorum, VoteOutcome

__all__ = [
    "ConsensusDecision",
    "ConsensusEngine",
    "NullConsensus",
    "ActivityElection",
    "BordaElection",
    "ElectionResult",
    "ElectionStrategy",
    "HeadElection",
    "StaticElection",
    "elect_anchor_nodes",
    "rotate_quorum",
    "ProofOfAuthority",
    "ValidatorSet",
    "ProofOfWork",
    "Proposal",
    "ProposalState",
    "Quorum",
    "VoteOutcome",
]
