"""Proof-of-Authority engine for anchor-node quorums.

The paper's deployment model centres on *anchor nodes* — "the guardians of
the blockchain" — that manage full copies and build the quorum
(Section IV-A).  Proof of Authority is the natural fit: a fixed, publicly
known validator set takes turns sealing blocks and every block must carry a
valid validator signature.  This engine signs the block header with the
validator's ECDSA key and validates round-robin ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.base import ConsensusDecision, ConsensusEngine
from repro.core.block import Block
from repro.core.errors import ConsensusError
from repro.crypto.hashing import canonical_json
from repro.crypto.keys import KeyPair, verify_with_public_key


@dataclass
class ValidatorSet:
    """The ordered set of authorized block sealers (the anchor nodes)."""

    validators: dict[str, str] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)

    @classmethod
    def from_key_pairs(cls, key_pairs: dict[str, KeyPair]) -> "ValidatorSet":
        """Build a validator set from named key pairs."""
        ordered = sorted(key_pairs)
        return cls(
            validators={name: key_pairs[name].public_key_hex for name in ordered},
            order=ordered,
        )

    def __len__(self) -> int:
        return len(self.order)

    def is_validator(self, name: str) -> bool:
        """True when ``name`` belongs to the authority set."""
        return name in self.validators

    def expected_sealer(self, block_number: int) -> str:
        """Round-robin sealer for a given block number."""
        if not self.order:
            raise ConsensusError("validator set is empty")
        return self.order[block_number % len(self.order)]

    def public_key_of(self, name: str) -> str:
        """Public key of a validator."""
        try:
            return self.validators[name]
        except KeyError:
            raise ConsensusError(f"{name!r} is not an authorized validator") from None


@dataclass
class ProofOfAuthority(ConsensusEngine):
    """Round-robin proof of authority over a fixed validator set.

    ``sealer_name``/``sealer_key`` identify the local validator; blocks whose
    round-robin slot belongs to another validator are still *prepared*
    locally (summary blocks are computed by everyone, Section IV-B) but the
    seal records which validator was responsible.
    """

    validator_set: ValidatorSet
    sealer_name: str
    sealer_key: KeyPair
    strict_round_robin: bool = False
    name: str = "poa"

    def __post_init__(self) -> None:
        if not self.validator_set.is_validator(self.sealer_name):
            raise ConsensusError(f"{self.sealer_name!r} is not part of the validator set")

    def _seal_payload(self, block: Block) -> str:
        return canonical_json(
            {
                "block_number": block.block_number,
                "previous_hash": block.previous_hash,
                "timestamp": block.timestamp,
                "entries": [entry.to_dict() for entry in block.entries],
            }
        )

    def prepare_block(self, block: Block) -> Block:
        """Attach the sealing validator's signature to the block.

        The seal is stored in ``summary_references`` under a reserved key so
        the block data model stays consensus-agnostic.
        """
        signature = self.sealer_key.sign_text(self._seal_payload(block))
        block.summary_references = [
            reference
            for reference in block.summary_references
            if not (isinstance(reference, dict) and reference.get("kind") == "poa-seal")
        ] + [
            {
                "kind": "poa-seal",
                "sealer": self.sealer_name,
                "signature": signature,
            }
        ]
        block.set_nonce(block.nonce)  # invalidate the cached hash after sealing
        return block

    def _extract_seal(self, block: Block) -> Optional[dict]:
        for reference in block.summary_references:
            if isinstance(reference, dict) and reference.get("kind") == "poa-seal":
                return reference
        return None

    def validate_block(self, block: Block, previous: Optional[Block]) -> ConsensusDecision:
        """Check the seal signature and (optionally) the round-robin order."""
        seal = self._extract_seal(block)
        if seal is None:
            return ConsensusDecision(accepted=False, reason="block carries no authority seal")
        sealer = seal.get("sealer", "")
        if not self.validator_set.is_validator(sealer):
            return ConsensusDecision(accepted=False, reason=f"sealer {sealer!r} is not authorized")
        public_key = self.validator_set.public_key_of(sealer)
        if not verify_with_public_key(
            public_key, self._seal_payload(block).encode("utf-8"), seal.get("signature", "")
        ):
            return ConsensusDecision(accepted=False, reason="authority seal signature is invalid")
        if self.strict_round_robin:
            expected = self.validator_set.expected_sealer(block.block_number)
            if sealer != expected:
                return ConsensusDecision(
                    accepted=False,
                    reason=f"block {block.block_number} should be sealed by {expected!r}, not {sealer!r}",
                )
        return ConsensusDecision(accepted=True, reason=f"sealed by {sealer}")
