"""Rule base classes, findings, and the rule registry.

Every rule is a class with a unique ``rule_id`` (``REPRO-<FAMILY><NUMBER>``),
a one-line ``title`` shown in reports and the docs catalogue, a ``rationale``
explaining which reproduction guarantee the rule protects, and an ``example``
of code it rejects.  Rules come in two scopes:

* **file** rules inspect one parsed Python file at a time
  (:meth:`Rule.check_file`),
* **project** rules see the whole file set at once and perform cross-file
  consistency checks (:meth:`Rule.check_project`) — the protocol rules
  cross-reference the message-kind registry against every dispatch site,
  something no per-file pass can do.

The registry is the single source of truth for the rule catalogue: the CLI's
``--list-rules``, the docs table in ``docs/ARCHITECTURE.md`` (pinned by
``REPRO-DOC403``) and the test suite all read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Type

if TYPE_CHECKING:  # pragma: no cover - only for type annotations
    from repro.lint.project import FileContext, Project


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file position.

    ``suppressed`` findings were matched by an ``allow`` pragma; they are
    excluded from the exit-code decision but kept available for reporting
    (``--show-suppressed``) so suppressions stay visible, not silent.
    """

    rule_id: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    suppression_reason: str = ""

    @property
    def sort_key(self) -> tuple[str, int, str]:
        """Stable report order: by file, then line, then rule."""
        return (self.path, self.line, self.rule_id)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (the JSON reporter's row)."""
        payload: dict[str, Any] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.suppressed:
            payload["suppressed"] = True
            payload["suppression_reason"] = self.suppression_reason
        return payload


class Rule:
    """Base class for all lint rules."""

    #: Unique identifier, e.g. ``REPRO-D101``.
    rule_id: str = ""
    #: One-line summary for reports and the docs catalogue.
    title: str = ""
    #: Which guarantee the rule protects (docs catalogue column).
    rationale: str = ""
    #: A short snippet of code the rule rejects (docs catalogue column).
    example: str = ""
    #: ``"file"`` or ``"project"``.
    scope: str = "file"

    def check_file(self, ctx: "FileContext") -> Iterable[Finding]:
        """Yield findings for one parsed Python file (file-scope rules)."""
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        """Yield findings for the whole file set (project-scope rules)."""
        return ()

    def finding(self, ctx_or_path: Any, line: int, message: str) -> Finding:
        """Build a finding anchored at ``line`` of the given file."""
        path = getattr(ctx_or_path, "rel_path", ctx_or_path)
        return Finding(rule_id=self.rule_id, path=str(path), line=line, message=message)


#: The live rule registry, ordered by registration (re-sorted on read).
_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def rule_catalogue() -> list[Type[Rule]]:
    """All registered rule classes, sorted by rule id."""
    # Import for the registration side effect: the rule modules register
    # themselves on first import, so the catalogue is complete no matter
    # which entry point asked for it.
    from repro.lint import (  # noqa: F401
        rules_determinism,
        rules_docs,
        rules_frozen,
        rules_perf,
        rules_protocol,
    )

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """All registered rule ids (plus the engine's meta-checks)."""
    rule_catalogue()
    return sorted(set(_REGISTRY) | {check["rule_id"] for check in ENGINE_CHECKS})


#: Engine-level meta-checks: these are emitted by the engine itself (they
#: concern parsing and the suppression mechanism, which no rule can see), but
#: they carry ids like every other check so they can be listed, documented
#: and tested.
SYNTAX_ERROR_ID = "REPRO-A000"
PRAGMA_WITHOUT_REASON_ID = "REPRO-A001"
UNUSED_PRAGMA_ID = "REPRO-A002"

#: Catalogue rows for the engine-level checks (same shape as Rule attributes),
#: so the docs table and ``--list-rules`` cover the full check surface.
ENGINE_CHECKS: list[dict[str, str]] = [
    {
        "rule_id": SYNTAX_ERROR_ID,
        "title": "file does not parse",
        "rationale": "a file the AST rules cannot read is a file no invariant is checked in",
        "example": "def broken(:",
    },
    {
        "rule_id": PRAGMA_WITHOUT_REASON_ID,
        "title": "allow pragma without a reason",
        "rationale": "every suppression must say why the hazard is acceptable; a bare pragma is an unreviewable mute",
        "example": "x = hash(key)  # repro: allow[REPRO-D103]",
    },
    {
        "rule_id": UNUSED_PRAGMA_ID,
        "title": "allow pragma that suppresses nothing",
        "rationale": "stale pragmas hide the rule's absence — the hazard they once excused may have moved or gone",
        "example": "y = 1  # repro: allow[REPRO-D101] no clock read here",
    },
]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: int = 0

    @property
    def clean(self) -> bool:
        """True when no unsuppressed finding remains."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when findings remain."""
        return 0 if self.clean else 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (the JSON reporter's document)."""
        return {
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "rules_run": self.rules_run,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }

    def by_rule(self) -> dict[str, int]:
        """Unsuppressed finding counts per rule id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)
