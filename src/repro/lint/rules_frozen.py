"""Frozen-object discipline rules (``REPRO-F3xx``).

The domain model is built from frozen dataclasses so that chain content is
immutable once hashed.  Two disciplines keep that story honest:

* ``object.__setattr__`` — the only legal way to write to a frozen instance —
  is confined to ``__post_init__`` (derived-field initialisation).  Anywhere
  else it is mutation of supposedly immutable state (``REPRO-F301``).
* every frozen core type that participates in canonical serialisation (it
  defines ``to_dict``, so :func:`repro.crypto.hashing.canonical_json` will
  happily serialise it through the ``_encode_fallback`` path) must define
  ``__canonical_json__`` so its canonical form is explicit and memoisable
  rather than an accident of the fallback encoder (``REPRO-F302``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import Finding, Rule, register
from repro.lint.project import FileContext

#: Modules whose frozen types are chain content: their serialised form feeds
#: summary hashes, so the canonical-form hook is mandatory there.
CORE_PACKAGE_FRAGMENT = "repro/core/"

#: Method bodies where ``object.__setattr__`` on a frozen instance is the
#: sanctioned idiom (dataclasses docs say so for derived fields).
SETATTR_SANCTUARY = "__post_init__"


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = getattr(decorator.func, "id", getattr(decorator.func, "attr", ""))
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if keyword.arg == "frozen" and getattr(keyword.value, "value", False) is True:
                return True
    return False


def _is_object_setattr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "__setattr__"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "object"
    )


@register
class FrozenSetattrRule(Rule):
    """``object.__setattr__`` anywhere but ``__post_init__``."""

    rule_id = "REPRO-F301"
    title = "object.__setattr__ outside __post_init__"
    rationale = (
        "frozen dataclasses are the immutability guarantee of chain content; "
        "a __setattr__ escape hatch outside derived-field initialisation is "
        "mutation of hashed state"
    )
    example = "object.__setattr__(block, \"entries\", pruned)"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._scan(ctx, ctx.tree, sanctioned=False)

    def _scan(self, ctx: FileContext, node: ast.AST, *, sanctioned: bool):
        for child in ast.iter_child_nodes(node):
            inside = sanctioned
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inside = child.name == SETATTR_SANCTUARY
            if not inside and _is_object_setattr(child):
                yield self.finding(
                    ctx,
                    child.lineno,
                    "object.__setattr__ outside __post_init__ mutates a frozen "
                    "instance — derive the value in __post_init__ or rebuild "
                    "the object",
                )
            yield from self._scan(ctx, child, sanctioned=inside)


@register
class MissingCanonicalHookRule(Rule):
    """Frozen core types serialisable via ``to_dict`` without the hook."""

    rule_id = "REPRO-F302"
    title = "frozen core type lacks __canonical_json__"
    rationale = (
        "canonical_json serialises any to_dict-bearing object through its "
        "fallback encoder; core chain content must define __canonical_json__ "
        "so its canonical form is explicit, testable and memoisable"
    )
    example = "@dataclass(frozen=True)\nclass EntryReference:  # to_dict, no hook"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if CORE_PACKAGE_FRAGMENT not in ctx.rel_path:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_frozen_dataclass(node):
                continue
            methods = {
                member.name
                for member in node.body
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "to_dict" in methods and "__canonical_json__" not in methods:
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"frozen core type {node.name} defines to_dict but no "
                    "__canonical_json__ — its canonical form is an accident of "
                    "the fallback encoder",
                )
