"""Determinism rules (``REPRO-D1xx``).

The reproduction's core guarantee — replicas byte-identical per seed,
summaries a pure function of chain content (Section IV-B of the paper) —
survives only if no code path reads ambient nondeterminism.  These rules
forbid the four hazard classes wholesale:

* wall-clock reads outside the one sanctioned module (``core/clock.py``),
* unseeded or OS-backed randomness outside ``crypto/``,
* builtin ``hash()`` / ``id()`` (both vary per process: ``hash`` through
  ``PYTHONHASHSEED``, ``id`` through allocation order) anywhere their value
  could feed ordering, tie-breaks or dedup counts,
* iteration over unordered collections flowing into hashing, canonical
  serialisation or kernel scheduling without a ``sorted(...)`` wrapper.

The dynamic checks (seed-trace digests, convergence fuzzing) sample the
behaviour space; these rules check every line, including paths no scenario
exercises.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.base import Finding, Rule, register
from repro.lint.project import FileContext

#: The module allowed to read the wall clock: every other component must go
#: through an injected :class:`repro.core.clock.Clock`.
CLOCK_MODULE_SUFFIX = "repro/core/clock.py"

#: Package whose modules may use OS entropy (key generation is *meant* to
#: differ per run unless a seed is injected).
CRYPTO_PACKAGE_FRAGMENT = "repro/crypto/"

#: Wall-clock reads: ``module attribute`` call chains that return the current
#: time of the host machine.
WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Ambient-entropy calls that are nondeterministic regardless of arguments.
OS_ENTROPY_CALLS = {
    ("os", "urandom"),
    ("os", "getrandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
    ("secrets", "token_urlsafe"),
    ("secrets", "randbelow"),
    ("secrets", "choice"),
}

#: Deterministic sinks: functions whose output must not depend on iteration
#: order.  Name form (``canonical_json(...)``) and attribute form
#: (``kernel.schedule(...)``) are both recognised.
ORDER_SENSITIVE_SINKS = {
    "canonical_json",
    "hash_hex",
    "sha256_hex",
    "hash_many",
    "hash_pair",
    "schedule",
    "schedule_at",
    "every",
}


def _dotted(node: ast.AST) -> Optional[tuple[str, str]]:
    """``("module", "attr")`` for ``module.attr`` / ``pkg.module.attr``."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Name):
        return (value.id, node.attr)
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        # datetime.datetime.now(...) — match on the inner module name.
        return (value.attr, node.attr)
    return None


def _from_imports(tree: ast.AST) -> set[tuple[str, str]]:
    """``(module, name)`` pairs pulled in via ``from module import name``."""
    imported: set[tuple[str, str]] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                imported.add((node.module, alias.asname or alias.name))
    return imported


@register
class WallClockRule(Rule):
    """Wall-clock reads outside ``core/clock.py``."""

    rule_id = "REPRO-D101"
    title = "wall-clock read outside core/clock.py"
    rationale = (
        "block timestamps, expiry and idle decisions must come from the injected "
        "Clock so every replica computes them identically"
    )
    example = "stamp = int(time.time())"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.rel_path.endswith(CLOCK_MODULE_SUFFIX):
            return
        from_imports = _from_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"wall-clock read {chain[0]}.{chain[1]}() — route time through an "
                    "injected repro.core.clock.Clock",
                )
            elif isinstance(node.func, ast.Name):
                name = node.func.id
                for module, attr in WALL_CLOCK_CALLS:
                    if name == attr and (module, attr) in from_imports:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            f"wall-clock read {attr}() (imported from {module}) — route "
                            "time through an injected repro.core.clock.Clock",
                        )
                        break


@register
class UnseededRandomRule(Rule):
    """Unseeded or OS-backed randomness outside ``crypto/``."""

    rule_id = "REPRO-D102"
    title = "unseeded randomness outside crypto/"
    rationale = (
        "every stochastic choice must replay identically per seed; the module-level "
        "random functions share hidden OS-seeded state"
    )
    example = "delay = random.uniform(1, 20)"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if CRYPTO_PACKAGE_FRAGMENT in ctx.rel_path:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            if chain in OS_ENTROPY_CALLS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"OS entropy {chain[0]}.{chain[1]}() — inject a seeded "
                    "random.Random instead",
                )
            elif chain[0] == "random":
                if chain[1] == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            "random.Random() without a seed — pass an explicit seed "
                            "so runs replay identically",
                        )
                elif chain[1] not in ("SystemRandom",):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        f"module-level random.{chain[1]}() uses shared unseeded state — "
                        "use a seeded random.Random instance",
                    )
                else:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "random.SystemRandom draws OS entropy — inject a seeded "
                        "random.Random instead",
                    )


@register
class HashIdRule(Rule):
    """Builtin ``hash()`` / ``id()`` outside ``__hash__`` methods."""

    rule_id = "REPRO-D103"
    title = "builtin hash()/id() outside __hash__"
    rationale = (
        "hash() varies with PYTHONHASHSEED and id() with allocation order; neither "
        "may feed ordering, tie-breaks or dedup counts"
    )
    example = "targets.sort(key=lambda n: hash(n))"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._visit(ctx, ctx.tree, in_dunder_hash=False)

    def _visit(
        self, ctx: FileContext, node: ast.AST, *, in_dunder_hash: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            inside = in_dunder_hash
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Delegating to hash() over the identity tuple is the idiom
                # *inside* __hash__ — consistency with __eq__ is all that
                # matters there, not cross-process stability.
                inside = child.name == "__hash__"
            if (
                not inside
                and isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id in ("hash", "id")
            ):
                yield self.finding(
                    ctx,
                    child.lineno,
                    f"builtin {child.func.id}() is process-specific — derive ordering, "
                    "tie-breaks and counts from stable content instead",
                )
            yield from self._visit(ctx, child, in_dunder_hash=inside)


def _is_unordered(node: ast.AST) -> bool:
    """True for expressions producing unordered (or order-fragile) iterables."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "values":
            return True
    return False


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _contains_unordered(node: ast.AST) -> bool:
    """True when an unordered source sits in ``node`` outside any sorted()."""
    if _is_sorted_call(node):
        return False
    if _is_unordered(node):
        return True
    return any(_contains_unordered(child) for child in ast.iter_child_nodes(node))


def _is_sink_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id in ORDER_SENSITIVE_SINKS
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in ORDER_SENSITIVE_SINKS
    return False


@register
class UnsortedIterationRule(Rule):
    """Unordered iteration feeding a deterministic sink without ``sorted``."""

    rule_id = "REPRO-D104"
    title = "unordered iteration reaching a deterministic sink"
    rationale = (
        "set iteration order varies per process; anything hashed, canonically "
        "serialised or scheduled from it must pass through sorted(...) first"
    )
    example = "digest = hash_many(peer for peer in set(peers))"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if _is_sink_call(node):
                # An unordered source anywhere in the sink's arguments —
                # unless a sorted(...) wrapper stands between them.
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if _contains_unordered(arg):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            "unordered iterable reaches an order-sensitive sink — "
                            "wrap the source in sorted(...)",
                        )
                        break
            elif isinstance(node, ast.For) and _is_unordered(node.iter):
                if any(_is_sink_call(inner) for inner in ast.walk(node)):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "loop over an unordered iterable feeds an order-sensitive "
                        "sink — iterate sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp, ast.DictComp)):
                if any(
                    _is_unordered(generator.iter) for generator in node.generators
                ) and any(_is_sink_call(inner) for inner in ast.walk(node)):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "comprehension over an unordered iterable feeds an "
                        "order-sensitive sink — iterate sorted(...) instead",
                    )
