"""The lint engine: run every rule, apply suppressions, build the report.

The engine is deliberately small — rules do the analysis, the engine owns the
mechanics every rule shares: iterating files, matching findings against
``allow`` pragmas, policing the pragmas themselves (reason mandatory, stale
pragmas reported) and aggregating everything into a :class:`LintReport`
whose exit code CI gates on.
"""

from __future__ import annotations

from typing import Iterable, Optional, Type

from repro.lint.base import (
    ENGINE_CHECKS,
    Finding,
    LintReport,
    PRAGMA_WITHOUT_REASON_ID,
    Rule,
    SYNTAX_ERROR_ID,
    UNUSED_PRAGMA_ID,
    rule_catalogue,
)
from repro.lint.project import FileContext, Project


class LintEngine:
    """Runs a rule set over a project."""

    def __init__(self, rules: Optional[Iterable[Type[Rule]]] = None) -> None:
        self.rules: list[Rule] = [cls() for cls in (rules if rules is not None else rule_catalogue())]

    def run(self, project: Project) -> LintReport:
        """Execute every rule and fold the findings into one report."""
        report = LintReport(rules_run=len(self.rules) + len(ENGINE_CHECKS))
        raw: list[Finding] = []
        for ctx in project.files:
            report.files_scanned += 1
            raw.extend(self._check_syntax(ctx))
        for rule in self.rules:
            if rule.scope == "file":
                for ctx in project.python_files():
                    raw.extend(rule.check_file(ctx))
            else:
                raw.extend(rule.check_project(project))
        self._apply_pragmas(project, raw, report)
        report.findings.sort(key=lambda finding: finding.sort_key)
        report.suppressed.sort(key=lambda finding: finding.sort_key)
        return report

    def _check_syntax(self, ctx: FileContext) -> list[Finding]:
        """A file no rule can parse is itself a finding, not a silent skip."""
        if ctx.is_python and ctx.parse_error is not None:
            error = ctx.parse_error
            return [
                Finding(
                    rule_id=SYNTAX_ERROR_ID,
                    path=ctx.rel_path,
                    line=error.lineno or 1,
                    message=f"file does not parse: {error.msg}",
                )
            ]
        return []

    def _apply_pragmas(
        self, project: Project, raw: list[Finding], report: LintReport
    ) -> None:
        """Split findings into active and suppressed; police the pragmas."""
        pragmas_by_path = {ctx.rel_path: ctx.pragmas for ctx in project.files}
        for finding in raw:
            pragma = next(
                (
                    candidate
                    for candidate in pragmas_by_path.get(finding.path, ())
                    if candidate.reason and candidate.covers(finding.rule_id, finding.line)
                ),
                None,
            )
            if pragma is None:
                report.findings.append(finding)
            else:
                pragma.used = True
                report.suppressed.append(
                    Finding(
                        rule_id=finding.rule_id,
                        path=finding.path,
                        line=finding.line,
                        message=finding.message,
                        suppressed=True,
                        suppression_reason=pragma.reason,
                    )
                )
        active_ids = {rule.rule_id for rule in self.rules}
        for ctx in project.files:
            for pragma in ctx.pragmas:
                if not pragma.reason:
                    report.findings.append(
                        Finding(
                            rule_id=PRAGMA_WITHOUT_REASON_ID,
                            path=ctx.rel_path,
                            line=pragma.line,
                            message=(
                                "allow pragma without a reason — state why the "
                                "suppressed hazard is acceptable"
                            ),
                        )
                    )
                elif not pragma.used and active_ids.intersection(pragma.rule_ids):
                    # Staleness is only judged against rules that actually
                    # ran: a partial run (rule-subset tests, the docs shim)
                    # must not flag pragmas belonging to the other families.
                    report.findings.append(
                        Finding(
                            rule_id=UNUSED_PRAGMA_ID,
                            path=ctx.rel_path,
                            line=pragma.line,
                            message=(
                                f"allow pragma for {', '.join(pragma.rule_ids)} "
                                "suppresses nothing — remove it or re-anchor it"
                            ),
                        )
                    )


def run_lint(
    project: Project, *, rules: Optional[Iterable[Type[Rule]]] = None
) -> LintReport:
    """Convenience wrapper: run the full (or given) rule set over ``project``."""
    return LintEngine(rules).run(project)
