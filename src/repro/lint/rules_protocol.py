"""Protocol-consistency rules (``REPRO-P2xx``).

The anchor-node protocol is defined in three places that can drift apart:
the :class:`~repro.network.message.MessageKind` registry, the dispatch
branches spread over ``network/node.py``, ``network/rpc.py`` and the
adversary/sync modules, and the taxonomy table in ``network/message.py``'s
docstring.  These rules cross-reference all of them over the whole tree:

* every registered kind must be *accounted for* — dispatched by a handler
  branch or produced as a reply (``REPRO-P201``); registering a kind and
  forgetting its handler fails the lint before any scenario can hit it,
* every kind actually sent as a request must have a handler (``REPRO-P202``),
* a request handler may only return ``None`` (silently dropping the reply)
  for kinds the taxonomy declares one-way (``REPRO-P203``),
* the taxonomy table itself must list exactly the registered kinds
  (``REPRO-P204``),
* every :class:`~repro.core.events.EventType` subscription must name an
  event type that is actually published (``REPRO-P205``).

The extraction walks ASTs, not imports, so the rules also run on synthetic
projects (the test suite injects a new kind and asserts the lint fails).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.lint.base import Finding, Rule, register
from repro.lint.project import FileContext, Project

MESSAGE_MODULE_SUFFIX = "repro/network/message.py"
EVENTS_MODULE_SUFFIX = "repro/core/events.py"

#: Taxonomy rows look like ``` ``SUBMIT_ENTRY``      client   ... ``` —
#: a kind in double backticks at the start of the (stripped) line.
TAXONOMY_ROW_PATTERN = re.compile(r"^``([A-Z_]+)``\s")


@dataclass
class ProtocolModel:
    """Everything the protocol rules extract from one project scan."""

    #: Registered kind name -> line number in network/message.py.
    members: dict[str, int] = field(default_factory=dict)
    #: Kind -> places it appears as a dispatch branch (dict key / comparison).
    handled: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    #: Kind -> places it is produced via ``.reply(MessageKind.X, ...)``.
    replied: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    #: Kind -> places it is sent as a request via ``Message(kind=...)``.
    sent: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    #: Kinds whose taxonomy row declares them one-way (no reply expected).
    one_way: set[str] = field(default_factory=set)
    #: Kinds with a taxonomy row at all.
    documented: set[str] = field(default_factory=set)
    #: Handler methods per kind in the dispatch dict of network/node.py.
    node_handlers: dict[str, str] = field(default_factory=dict)
    #: network/message.py context (anchor for registry-level findings).
    message_ctx: Optional[FileContext] = None

    @property
    def accounted(self) -> set[str]:
        """Kinds with a dispatch branch or a reply production site."""
        return set(self.handled) | set(self.replied)


def _kind_attr(node: ast.AST) -> Optional[str]:
    """``X`` for an ``MessageKind.X`` attribute access."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "MessageKind"
    ):
        return node.attr
    return None


def build_protocol_model(project: Project) -> ProtocolModel:
    """Scan the whole project for message-kind registration and usage."""
    model = ProtocolModel()
    message_ctx = project.find(MESSAGE_MODULE_SUFFIX)
    model.message_ctx = message_ctx
    if message_ctx is not None and message_ctx.tree is not None:
        _extract_members(message_ctx, model)
        _extract_taxonomy(message_ctx, model)
    for ctx in project.python_files():
        _extract_usage(ctx, model)
    return model


def _extract_members(ctx: FileContext, model: ProtocolModel) -> None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == "MessageKind":
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            model.members[target.id] = statement.lineno
            return


def _extract_taxonomy(ctx: FileContext, model: ProtocolModel) -> None:
    docstring = ast.get_docstring(ctx.tree) or ""
    for line in docstring.splitlines():
        match = TAXONOMY_ROW_PATTERN.match(line.strip())
        if match is None:
            continue
        kind = match.group(1)
        model.documented.add(kind)
        if "one-way" in line:
            model.one_way.add(kind)


def _extract_usage(ctx: FileContext, model: ProtocolModel) -> None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Dict):
            # A dispatch table: ``{MessageKind.X: self._handle_x, ...}``.
            for key, value in zip(node.keys, node.values):
                kind = _kind_attr(key) if key is not None else None
                if kind is None:
                    continue
                model.handled.setdefault(kind, []).append((ctx.rel_path, key.lineno))
                if ctx.rel_path.endswith("repro/network/node.py") and isinstance(
                    value, ast.Attribute
                ):
                    model.node_handlers[kind] = value.attr
        elif isinstance(node, ast.Compare):
            # ``message.kind is MessageKind.X`` (and ==, is not, != guards)
            # are dispatch branches too: the named kind is the one handled.
            for comparator in [node.left, *node.comparators]:
                kind = _kind_attr(comparator)
                if kind is not None:
                    model.handled.setdefault(kind, []).append((ctx.rel_path, node.lineno))
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr == "reply":
                args = list(node.args)
                kind = _kind_attr(args[0]) if args else None
                if kind is None:
                    for keyword in node.keywords:
                        if keyword.arg == "kind":
                            kind = _kind_attr(keyword.value)
                if kind is not None:
                    model.replied.setdefault(kind, []).append((ctx.rel_path, node.lineno))
            elif isinstance(node.func, ast.Name) and node.func.id == "Message":
                for keyword in node.keywords:
                    if keyword.arg == "kind":
                        kind = _kind_attr(keyword.value)
                        if kind is not None:
                            model.sent.setdefault(kind, []).append(
                                (ctx.rel_path, node.lineno)
                            )


@register
class UnaccountedKindRule(Rule):
    """Registered message kinds nobody dispatches or replies with."""

    rule_id = "REPRO-P201"
    title = "message kind neither handled nor produced as a reply"
    rationale = (
        "a kind in the registry that no dispatch branch handles is a message the "
        "protocol can send but every node silently rejects"
    )
    example = "NEW_KIND = \"new_kind\"  # registered, no handler branch anywhere"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_protocol_model(project)
        if model.message_ctx is None:
            return
        for kind, line in sorted(model.members.items()):
            if kind not in model.accounted:
                yield self.finding(
                    model.message_ctx,
                    line,
                    f"message kind {kind} is registered but no dispatch branch "
                    "handles it and no handler replies with it",
                )


@register
class SentWithoutHandlerRule(Rule):
    """Request kinds sent on the wire with no dispatch branch anywhere."""

    rule_id = "REPRO-P202"
    title = "sent message kind has no handler branch"
    rationale = (
        "a request constructed and sent must have a receiver-side dispatch branch, "
        "or every delivery dies as 'unsupported message kind'"
    )
    example = "transport.send(peer, Message(kind=MessageKind.NEW_KIND, ...))"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_protocol_model(project)
        for kind, sites in sorted(model.sent.items()):
            if kind not in model.handled:
                path, line = sites[0]
                yield Finding(
                    rule_id=self.rule_id,
                    path=path,
                    line=line,
                    message=(
                        f"message kind {kind} is sent as a request here but no "
                        "dispatch branch in the tree handles it"
                    ),
                )


@register
class SilentDropRule(Rule):
    """Request handlers that can return ``None`` for two-way kinds."""

    rule_id = "REPRO-P203"
    title = "handler drops the reply for a two-way kind"
    rationale = (
        "every handler path must end in a reply or a typed rejection; returning "
        "None is only legal for kinds the taxonomy declares one-way"
    )
    example = "def _handle_find_entry(self, message):\n    if ...: return None"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_protocol_model(project)
        node_ctx = project.find("repro/network/node.py")
        if node_ctx is None or node_ctx.tree is None:
            return
        # Kinds a handler serves; a handler shared by several kinds may only
        # return None when *all* of them are one-way.
        kinds_by_handler: dict[str, list[str]] = {}
        for kind, handler in model.node_handlers.items():
            kinds_by_handler.setdefault(handler, []).append(kind)
        for node in ast.walk(node_ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            kinds = kinds_by_handler.get(node.name)
            if not kinds:
                continue
            if all(kind in model.one_way for kind in kinds):
                continue
            for statement in ast.walk(node):
                if not isinstance(statement, ast.Return):
                    continue
                value = statement.value
                drops = value is None or (
                    isinstance(value, ast.Constant) and value.value is None
                )
                if drops:
                    yield self.finding(
                        node_ctx,
                        statement.lineno,
                        f"handler {node.name} (serving {', '.join(sorted(kinds))}) "
                        "returns None — two-way kinds must reply or reject with a "
                        "typed error",
                    )


@register
class TaxonomyRule(Rule):
    """The docstring taxonomy table mirrors the kind registry exactly."""

    rule_id = "REPRO-P204"
    title = "message-kind taxonomy table out of sync"
    rationale = (
        "the taxonomy table is the wire-protocol contract (including which kinds "
        "are one-way); a kind missing from it is protocol nobody agreed to"
    )
    example = "NEW_KIND = \"new_kind\"  # enum member without a taxonomy row"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        model = build_protocol_model(project)
        ctx = model.message_ctx
        if ctx is None or not model.members:
            return
        for kind, line in sorted(model.members.items()):
            if kind not in model.documented:
                yield self.finding(
                    ctx,
                    line,
                    f"message kind {kind} has no row in the taxonomy table of "
                    "network/message.py",
                )
        for kind in sorted(model.documented - set(model.members)):
            yield self.finding(
                ctx,
                1,
                f"taxonomy table documents {kind}, which is not a registered "
                "MessageKind member",
            )


@register
class EventSubscriptionRule(Rule):
    """Event-bus subscriptions must name published event types."""

    rule_id = "REPRO-P205"
    title = "subscription to an event type nobody publishes"
    rationale = (
        "a subscriber waiting on an unpublished EventType is a hook that never "
        "fires — measurements and announcements silently stop"
    )
    example = "bus.subscribe(on_seal, types=(EventType.NEVER_PUBLISHED,))"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        members = self._event_members(project)
        if not members:
            return
        published: set[str] = set()
        subscribed: list[tuple[str, str, int]] = []
        for ctx in project.python_files():
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = getattr(func, "attr", getattr(func, "id", ""))
                if "publish" in name:
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        for inner in ast.walk(arg):
                            member = self._event_attr(inner)
                            if member is not None:
                                published.add(member)
                elif name == "subscribe":
                    for keyword in node.keywords:
                        if keyword.arg != "types":
                            continue
                        for inner in ast.walk(keyword.value):
                            member = self._event_attr(inner)
                            if member is not None:
                                subscribed.append((member, ctx.rel_path, node.lineno))
        for member, path, line in subscribed:
            if member not in members:
                yield Finding(
                    rule_id=self.rule_id,
                    path=path,
                    line=line,
                    message=f"subscription names unknown event type {member}",
                )
            elif member not in published:
                yield Finding(
                    rule_id=self.rule_id,
                    path=path,
                    line=line,
                    message=(
                        f"subscription to EventType.{member}, which no publish "
                        "site in the tree emits"
                    ),
                )

    @staticmethod
    def _event_attr(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "EventType"
        ):
            return node.attr
        # ``EventType.X.value`` — the publish sites that stringify the kind.
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "value"
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == "EventType"
        ):
            return node.value.attr
        return None

    @staticmethod
    def _event_members(project: Project) -> dict[str, int]:
        ctx = project.find(EVENTS_MODULE_SUFFIX)
        if ctx is None or ctx.tree is None:
            return {}
        members: dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name == "EventType":
                for statement in node.body:
                    if isinstance(statement, ast.Assign):
                        for target in statement.targets:
                            if isinstance(target, ast.Name):
                                members[target.id] = statement.lineno
        return members
