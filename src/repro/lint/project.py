"""The file model the lint engine runs over.

A :class:`Project` is an ordered set of :class:`FileContext` objects — parsed
Python sources plus raw markdown documents — with the repo root they are
relative to.  Two constructors exist:

* :meth:`Project.from_root` walks the real tree (the CLI path),
* :meth:`Project.from_sources` builds a synthetic project from
  ``{relative_path: source}`` mappings — how the test suite proves
  cross-file rules fire (e.g. that registering a new message kind without a
  dispatch branch fails the lint) without touching the working tree.

Suppression pragmas are parsed here, once per file::

    risky_call()  # repro: allow[REPRO-D103] counting shared request objects

The pragma suppresses matching findings on its own line or, when written on
a line of its own, on the line directly below.  Several ids may share one
pragma (``allow[REPRO-D101,REPRO-D102] reason``).  The reason is mandatory —
a bare pragma is itself reported (``REPRO-A001``), and a pragma that ends up
suppressing nothing is reported too (``REPRO-A002``), so suppressions can
neither be silent nor go stale.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

#: Directories scanned by default, relative to the repo root.
DEFAULT_SCAN_DIRS = ("src", "tests", "benchmarks", "examples", "scripts")

#: Markdown documents checked by the docs rules.
DEFAULT_DOC_FILES = ("README.md", "docs")

#: Path fragments excluded from every scan: the known-bad lint fixtures are
#: *meant* to violate the rules (CI runs the linter on them expecting a
#: nonzero exit), so the default pass must not trip over them.
EXCLUDED_PARTS = ("tests/fixtures/",)

PRAGMA_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[A-Z0-9,\s-]+)\]\s*(?P<reason>.*)$"
)


@dataclass
class Pragma:
    """One parsed ``allow`` pragma."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str
    #: Set by the engine when a finding was matched against this pragma.
    used: bool = False

    def covers(self, rule_id: str, line: int) -> bool:
        """True when this pragma suppresses ``rule_id`` findings at ``line``."""
        return rule_id in self.rule_ids and line in (self.line, self.line + 1)


@dataclass
class FileContext:
    """One source file as the rules see it."""

    rel_path: str
    source: str
    _tree: Optional[ast.AST] = field(default=None, repr=False)
    _parse_error: Optional[SyntaxError] = field(default=None, repr=False)
    _pragmas: Optional[list[Pragma]] = field(default=None, repr=False)

    @property
    def is_python(self) -> bool:
        """True for files the AST rules should parse."""
        return self.rel_path.endswith(".py")

    @property
    def is_markdown(self) -> bool:
        """True for files the docs rules should scan."""
        return self.rel_path.endswith(".md")

    @property
    def tree(self) -> Optional[ast.AST]:
        """The parsed AST (``None`` for non-Python or unparseable files)."""
        if self._tree is None and self._parse_error is None and self.is_python:
            try:
                self._tree = ast.parse(self.source)
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        """The syntax error that prevented parsing, if any."""
        self.tree  # noqa: B018 - trigger the lazy parse
        return self._parse_error

    @property
    def lines(self) -> list[str]:
        """The raw source split into lines (1-indexed via ``line - 1``)."""
        return self.source.splitlines()

    @property
    def pragmas(self) -> list[Pragma]:
        """All ``allow`` pragmas of this file, parsed once.

        Python files are tokenised so only genuine comments count — pragma-
        shaped text inside string literals (rule examples, docstrings) must
        not suppress anything.  Other files fall back to a line scan.
        """
        if self._pragmas is None:
            parsed: list[Pragma] = []
            for number, text in self._comment_lines():
                match = PRAGMA_PATTERN.search(text)
                if match is None:
                    continue
                ids = tuple(
                    part.strip() for part in match.group("ids").split(",") if part.strip()
                )
                parsed.append(
                    Pragma(line=number, rule_ids=ids, reason=match.group("reason").strip())
                )
            self._pragmas = parsed
        return self._pragmas

    def _comment_lines(self) -> Iterator[tuple[int, str]]:
        """``(line, text)`` pairs a pragma may legitimately live in.

        Only Python files carry pragmas: markdown has no comment syntax the
        engine honours (the docs rule-catalogue table quotes pragma examples
        verbatim, which must not register as suppressions), and findings on
        docs are meant to be fixed, not muted.
        """
        if not self.is_python:
            return
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # Unparseable files already carry a REPRO-A000 finding; their
            # pragmas are read with the plain line scan.
            yield from enumerate(self.lines, 1)
            return
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string


@dataclass
class Project:
    """The ordered file set one lint run covers."""

    files: list[FileContext]
    root: Optional[Path] = None

    @classmethod
    def from_root(
        cls,
        root: Path,
        *,
        paths: Optional[Iterable[Path]] = None,
    ) -> "Project":
        """Collect the default scan set (or explicit ``paths``) under ``root``.

        Explicit paths bypass the fixture exclusion — pointing the linter at
        a known-bad file on purpose (the CI gate test) must work.
        """
        root = root.resolve()
        contexts: list[FileContext] = []
        if paths is None:
            candidates = _default_candidates(root)
            explicit = False
        else:
            candidates = []
            for path in paths:
                path = path.resolve()
                if path.is_dir():
                    candidates.extend(sorted(path.rglob("*.py")))
                    candidates.extend(sorted(path.rglob("*.md")))
                else:
                    candidates.append(path)
            explicit = True
        seen: set[str] = set()
        for path in candidates:
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            if rel in seen:
                continue
            if not explicit and any(part in rel for part in EXCLUDED_PARTS):
                continue
            seen.add(rel)
            contexts.append(FileContext(rel_path=rel, source=path.read_text(encoding="utf-8")))
        return cls(files=contexts, root=root)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Project":
        """Build a synthetic project from ``{relative_path: source}``."""
        return cls(
            files=[
                FileContext(rel_path=rel_path, source=source)
                for rel_path, source in sorted(sources.items())
            ]
        )

    def python_files(self) -> Iterator[FileContext]:
        """The parseable Python files, in scan order."""
        for ctx in self.files:
            if ctx.is_python and ctx.tree is not None:
                yield ctx

    def markdown_files(self) -> Iterator[FileContext]:
        """The markdown documents, in scan order."""
        for ctx in self.files:
            if ctx.is_markdown:
                yield ctx

    def find(self, rel_suffix: str) -> Optional[FileContext]:
        """The file whose relative path ends with ``rel_suffix``, if any."""
        for ctx in self.files:
            if ctx.rel_path.endswith(rel_suffix):
                return ctx
        return None


def _default_candidates(root: Path) -> list[Path]:
    """The default scan set: code directories plus the documentation."""
    candidates: list[Path] = []
    for name in DEFAULT_SCAN_DIRS:
        base = root / name
        if base.is_dir():
            candidates.extend(sorted(base.rglob("*.py")))
    for name in DEFAULT_DOC_FILES:
        base = root / name
        if base.is_dir():
            candidates.extend(sorted(base.glob("*.md")))
        elif base.is_file():
            candidates.append(base)
    return candidates
