"""Documentation rules (``REPRO-DOC4xx``).

The docs checks that used to live in ``scripts/check_doc_links.py`` plus the
table-sync checks the test suite pins, folded into the lint pass so one
command (``python -m repro lint``) gates code *and* documentation:

* every local markdown link must resolve to a real file (``REPRO-DOC401``),
* the scenario-catalogue table in ``docs/ARCHITECTURE.md`` must mirror the
  live :func:`repro.network.scenarios.scenario_catalogue` — names and
  parameter sets (``REPRO-DOC402``),
* the static-analysis rule table in ``docs/ARCHITECTURE.md`` must list
  exactly the registered rule ids, engine meta-checks included
  (``REPRO-DOC403``) — this file you are reading cannot add a rule without
  documenting it.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.lint.base import ENGINE_CHECKS, Finding, Rule, register, rule_catalogue
from repro.lint.project import FileContext, Project

#: ``[text](target)`` or ``[text](target "Title")`` — the target is captured
#: either way, so a link with a title cannot silently escape the check.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not local paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")

#: Heading under which the pinned scenario table lives.
SCENARIO_HEADING = "### Scenario catalogue"

#: Heading under which the pinned rule-catalogue table lives.
RULES_HEADING = "### Rule catalogue"

ARCHITECTURE_DOC_SUFFIX = "docs/ARCHITECTURE.md"


def _table_rows(ctx: FileContext, heading: str) -> list[tuple[int, list[str]]]:
    """``(line, cells)`` rows of the markdown table under ``heading``."""
    rows: list[tuple[int, list[str]]] = []
    in_section = False
    for number, line in enumerate(ctx.lines, 1):
        if line.startswith("#"):
            in_section = line.strip() == heading
            continue
        if not in_section or "|" not in line:
            continue
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        rows.append((number, cells))
    return rows


@register
class BrokenLinkRule(Rule):
    """Local markdown links that do not resolve."""

    rule_id = "REPRO-DOC401"
    title = "broken local link in the docs"
    rationale = (
        "the handbook's source links are how readers reach the code; they "
        "must not rot as the tree moves"
    )
    example = "[the kernel](../src/repro/kernel.py) after the file moved"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        for ctx in project.markdown_files():
            base = _posix_parent(ctx.rel_path)
            for number, line in enumerate(ctx.lines, 1):
                for match in LINK_PATTERN.finditer(line):
                    target = match.group(1)
                    if target.startswith(EXTERNAL_PREFIXES):
                        continue
                    target = target.split("#", 1)[0]
                    if not target:
                        continue
                    if not _resolves(project, base, target):
                        yield self.finding(
                            ctx,
                            number,
                            f"broken local link: {target}",
                        )


def _posix_parent(rel_path: str) -> str:
    return rel_path.rsplit("/", 1)[0] if "/" in rel_path else ""


def _normalise(base: str, target: str) -> str:
    parts: list[str] = base.split("/") if base else []
    for piece in target.split("/"):
        if piece in ("", "."):
            continue
        if piece == "..":
            if parts:
                parts.pop()
        else:
            parts.append(piece)
    return "/".join(parts)


def _resolves(project: Project, base: str, target: str) -> bool:
    rel = _normalise(base, target)
    if project.root is not None:
        return (project.root / rel).exists()
    # Synthetic projects: resolve against the in-memory file set.
    return any(
        ctx.rel_path == rel or ctx.rel_path.startswith(rel + "/") for ctx in project.files
    )


@register
class ScenarioTableRule(Rule):
    """The documented scenario catalogue mirrors the live registry."""

    rule_id = "REPRO-DOC402"
    title = "scenario-catalogue table out of sync"
    rationale = (
        "the handbook's scenario table is how operators pick workloads; a row "
        "that drifts from the registry documents knobs that do not exist"
    )
    example = "a `partition_healing` row naming a parameter the registry renamed"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        ctx = project.find(ARCHITECTURE_DOC_SUFFIX)
        if ctx is None:
            return
        try:
            from repro.network.scenarios import scenario_catalogue
        except Exception:  # pragma: no cover - only on a broken tree
            return
        documented: dict[str, tuple[int, set[str]]] = {}
        for number, cells in _table_rows(ctx, SCENARIO_HEADING):
            if len(cells) == 3 and cells[0].startswith("`") and cells[0].endswith("`"):
                params = {
                    part.strip().strip("`") for part in cells[1].split(",") if part.strip()
                }
                documented[cells[0].strip("`")] = (number, params)
        if not documented:
            yield self.finding(
                ctx, 1, f"no scenario table found under '{SCENARIO_HEADING}'"
            )
            return
        live = {entry.name: set(entry.defaults) for entry in scenario_catalogue()}
        for name, defaults in sorted(live.items()):
            if name not in documented:
                yield self.finding(
                    ctx, 1, f"scenario {name} is not documented in the catalogue table"
                )
            elif documented[name][1] != defaults:
                number, params = documented[name]
                yield self.finding(
                    ctx,
                    number,
                    f"documented parameters of scenario {name} drifted: "
                    f"docs say {sorted(params)}, registry says {sorted(defaults)}",
                )
        for name in sorted(set(documented) - set(live)):
            yield self.finding(
                ctx,
                documented[name][0],
                f"documented scenario {name} does not exist in the registry",
            )


@register
class RuleTableRule(Rule):
    """The documented rule catalogue lists exactly the registered rules."""

    rule_id = "REPRO-DOC403"
    title = "static-analysis rule table out of sync"
    rationale = (
        "the rule catalogue is the contract of this very linter; an "
        "undocumented rule is an unexplained CI failure waiting to happen"
    )
    example = "adding REPRO-D105 in code without a docs table row"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        ctx = project.find(ARCHITECTURE_DOC_SUFFIX)
        if ctx is None:
            return
        documented: dict[str, int] = {}
        for number, cells in _table_rows(ctx, RULES_HEADING):
            if cells and cells[0].startswith("`REPRO-") and cells[0].endswith("`"):
                documented[cells[0].strip("`")] = number
        registered = {cls.rule_id for cls in rule_catalogue()}
        registered.update(check["rule_id"] for check in ENGINE_CHECKS)
        for rule_id in sorted(registered):
            if rule_id not in documented:
                yield self.finding(
                    ctx,
                    1,
                    f"rule {rule_id} is registered but missing from the "
                    f"'{RULES_HEADING}' table",
                )
        for rule_id, number in sorted(documented.items()):
            if rule_id not in registered:
                yield self.finding(
                    ctx,
                    number,
                    f"documented rule {rule_id} is not registered in the linter",
                )
