"""The ``lint`` subcommand: argument wiring and the run driver.

Exit codes follow the usual linter convention:

* ``0`` — no unsuppressed finding,
* ``1`` — findings remain,
* ``2`` — usage error (a named path does not exist).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lint.base import ENGINE_CHECKS, rule_catalogue
from repro.lint.engine import run_lint
from repro.lint.project import Project
from repro.lint.reporters import render_json, render_text

USAGE_ERROR = 2


def default_root() -> Path:
    """The repository root this installation runs from (``src/../..``)."""
    return Path(__file__).resolve().parents[3]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repo's scan set)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: derived from the package location)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings muted by allow pragmas",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute one lint run per the parsed arguments."""
    if args.list_rules:
        for cls in rule_catalogue():
            print(f"{cls.rule_id}  {cls.title}")
        for check in ENGINE_CHECKS:
            print(f"{check['rule_id']}  {check['title']} (engine check)")
        return 0
    root = (args.root or default_root()).resolve()
    paths = [path if path.is_absolute() else root / path for path in args.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"no such file: {path}")
        return USAGE_ERROR
    project = Project.from_root(root, paths=paths or None)
    report = run_lint(project)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
    return report.exit_code
