"""Performance rules (``REPRO-PERF5xx``).

The hot-path pass (PR 8) made point and signature decoding cheap by routing
them through bounded LRU caches (:func:`repro.crypto.ecdsa.decode_point`,
:func:`repro.crypto.ecdsa.decode_signature`).  A call site that decodes via
the raw classmethods instead re-runs the full on-curve / range validation on
every call — correct, but it silently forfeits the caching the profiler
showed dominating signature-heavy scenarios.  These rules keep new call
sites on the cached entry points.

Inside ``repro/crypto/`` the raw classmethods remain the implementation (the
cached wrappers *call* them), so the package is exempt — mirroring how the
determinism rules exempt ``core/clock.py`` from the wall-clock rule.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.base import Finding, Rule, register
from repro.lint.project import FileContext

#: Package whose modules implement the cached wrappers and may therefore
#: call the raw decoders directly.
CRYPTO_PACKAGE_FRAGMENT = "repro/crypto/"

#: ``Class.decode`` receivers that have a cached wrapper, mapped to it.
CACHED_DECODERS = {
    "CurvePoint": "repro.crypto.decode_point",
    "EcdsaSignature": "repro.crypto.decode_signature",
}


@register
class UncachedDecodeRule(Rule):
    """Raw ``CurvePoint.decode`` / ``EcdsaSignature.decode`` outside crypto/."""

    rule_id = "REPRO-PERF501"
    title = "uncached point/signature decode outside crypto/"
    rationale = (
        "the raw classmethods re-validate on every call; the cached wrappers "
        "decode_point/decode_signature make repeated verification of the same "
        "keys and seals O(1) after the first hit"
    )
    example = "point = CurvePoint.decode(key_hex)"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if CRYPTO_PACKAGE_FRAGMENT in ctx.rel_path:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "decode"):
                continue
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in CACHED_DECODERS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    f"{receiver.id}.decode() bypasses the decode cache — call "
                    f"{CACHED_DECODERS[receiver.id]}() instead",
                )
