"""Report renderers for lint runs.

Two formats:

* **text** — one ``path:line: RULE-ID message`` row per finding plus a
  summary line, the format CI logs and humans read,
* **json** — the :meth:`~repro.lint.base.LintReport.to_dict` document, for
  tooling that wants to post-process findings.
"""

from __future__ import annotations

import json

from repro.lint.base import LintReport


def render_text(report: LintReport, *, show_suppressed: bool = False) -> str:
    """Human-readable report: findings, optional suppressions, summary."""
    lines: list[str] = []
    for finding in report.findings:
        lines.append(f"{finding.path}:{finding.line}: {finding.rule_id} {finding.message}")
    if show_suppressed:
        for finding in report.suppressed:
            lines.append(
                f"{finding.path}:{finding.line}: {finding.rule_id} suppressed "
                f"({finding.suppression_reason}): {finding.message}"
            )
    counts = report.by_rule()
    if counts:
        per_rule = ", ".join(f"{rule_id}×{count}" for rule_id, count in sorted(counts.items()))
        lines.append(
            f"{len(report.findings)} finding(s) [{per_rule}] — "
            f"{report.files_scanned} files, {report.rules_run} checks, "
            f"{len(report.suppressed)} suppressed"
        )
    else:
        lines.append(
            f"clean — {report.files_scanned} files, {report.rules_run} checks, "
            f"{len(report.suppressed)} suppressed"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
