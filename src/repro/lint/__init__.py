"""Static analysis for the reproduction's determinism and protocol invariants.

``python -m repro lint`` runs every registered rule over the tree and exits
nonzero on any unsuppressed finding.  The dynamic checks (seed-trace digests,
convergence fuzzing) sample the behaviour space; this pass proves the
invariants line-by-line — wall-clock and entropy confinement, ordering
discipline ahead of hashing, message-kind registry/dispatch consistency,
frozen-object discipline, and documentation sync.

See ``docs/ARCHITECTURE.md`` ("Static analysis") for the rule catalogue.
"""

from repro.lint.base import (
    ENGINE_CHECKS,
    Finding,
    LintReport,
    Rule,
    register,
    rule_catalogue,
    rule_ids,
)
from repro.lint.engine import LintEngine, run_lint
from repro.lint.project import FileContext, Pragma, Project
from repro.lint.reporters import render_json, render_text

__all__ = [
    "ENGINE_CHECKS",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "Pragma",
    "Project",
    "Rule",
    "register",
    "render_json",
    "render_text",
    "rule_catalogue",
    "rule_ids",
    "run_lint",
]
