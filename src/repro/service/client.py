"""The ledger client protocol and the in-process implementation.

:class:`LedgerClient` is the one client surface of the layered Ledger
service API: *what an application does with the ledger* — submit records,
request deletions, look entries up, read statistics, drive progress — is
expressed once, and *where the ledger runs* is an implementation detail:

* :class:`LocalLedgerClient` drives a :class:`~repro.core.chain.Blockchain`
  in-process (over any storage backend — memory or the durable journal),
* :class:`~repro.service.remote.RemoteLedgerClient` drives a replicated
  anchor-node deployment over the transport, exactly as the paper's CORBA
  clients did (Section V-B4),
* :class:`~repro.service.baseline.BaselineLedgerClient` adapts the
  Section III comparison baselines.

A workload replayed through any of them performs the same logical
operations, which is what makes cross-backend comparisons
(:mod:`repro.analysis.compare`, the growth benchmarks) apples-to-apples.

The protocol follows the paper's evaluation model: ``submit`` seals one
block per record by default (every login event becomes one block); batching
is available by passing ``seal=False`` and calling :meth:`LedgerClient.seal`
explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Union

from repro.core.chain import Blockchain
from repro.core.entry import EntryReference
from repro.core.errors import SelectiveDeletionError


class LedgerError(SelectiveDeletionError):
    """Raised when a ledger-client operation cannot be completed."""


@dataclass(frozen=True)
class SubmitReceipt:
    """Outcome of one record submission."""

    #: Reference the record can later be addressed by; ``None`` until sealed.
    reference: Optional[EntryReference]
    #: Block the record was sealed into; ``None`` while still pending.
    block_number: Optional[int]
    #: Whether the record is already part of a sealed block.
    sealed: bool
    error: str = ""

    @property
    def ok(self) -> bool:
        """True when the submission was accepted."""
        return not self.error


@dataclass(frozen=True)
class DeletionReceipt:
    """Outcome of one deletion request."""

    approved: bool
    reason: str
    #: Block the request was sealed into, when known.
    block_number: Optional[int] = None
    #: Whether the removal is globally effective (gone from what every node
    #: stores).  On the selective-deletion chain approval implies global
    #: effect; baselines like local pruning accept requests that only take
    #: effect locally — the distinction the comparison (claim C5) is about.
    globally_effective: bool = False
    #: Work units the backend spent on the request (baseline comparison).
    effort_units: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        """True when the request was processed (approved or not)."""
        return not self.error


@dataclass(frozen=True)
class LedgerRecord:
    """A record located through :meth:`LedgerClient.find_entry`."""

    reference: EntryReference
    data: Mapping[str, Any] = field(default_factory=dict)
    author: str = ""
    #: Block the record currently lives in (original or summary copy);
    #: ``None`` for backends without block addressing (baselines).
    block_number: Optional[int] = None


#: Reference forms accepted by the protocol.
TargetLike = Union[EntryReference, tuple]


def as_reference(target: TargetLike) -> EntryReference:
    """Coerce a ``(block, entry)`` pair into an :class:`EntryReference`."""
    return target if isinstance(target, EntryReference) else EntryReference(*target)


class LedgerClient(ABC):
    """One client protocol for local, networked and baseline ledgers."""

    #: Short backend name used in reports.
    name: str = "abstract"

    @abstractmethod
    def submit(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        seal: bool = True,
    ) -> SubmitReceipt:
        """Submit one signed record; seals one block unless ``seal=False``."""

    def submit_async(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        on_receipt: Callable[[SubmitReceipt], None],
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        seal: bool = True,
    ) -> None:
        """:meth:`submit` with the receipt delivered through a callback.

        The default completes synchronously — ``on_receipt`` runs before
        this returns.  Kernel-backed clients override it with a genuinely
        event-driven exchange so concurrent submissions overlap in virtual
        time; callers that need to know whether completion was deferred
        must track it themselves (see ``FleetDriver``'s lane pump).
        """
        on_receipt(
            self.submit(
                data,
                author,
                expires_at_time=expires_at_time,
                expires_at_block=expires_at_block,
                seal=seal,
            )
        )

    @abstractmethod
    def request_deletion(
        self,
        target: TargetLike,
        author: str,
        *,
        reason: str = "",
    ) -> DeletionReceipt:
        """Submit a deletion request for ``target`` and seal it into a block."""

    @abstractmethod
    def find_entry(self, reference: TargetLike) -> Optional[LedgerRecord]:
        """Locate a record by its original reference, or ``None`` if gone."""

    @abstractmethod
    def statistics(self) -> dict[str, Any]:
        """Operational counters of the backend.

        Every implementation guarantees the keys ``living_blocks``,
        ``byte_size`` and ``total_blocks_created`` so growth sampling works
        uniformly; chain-backed clients return the full
        :meth:`~repro.core.chain.Blockchain.statistics` dictionary.
        """

    @abstractmethod
    def seal(self) -> Optional[int]:
        """Seal the pending records into the next block; returns its number."""

    @abstractmethod
    def tick(self, ticks: int = 1) -> bool:
        """Advance ledger time; returns ``True`` when an idle block resulted.

        This drives the empty-block progress rule of Section IV-D3 so
        delayed deletions execute even without traffic.
        """

    def entry_exists(self, reference: TargetLike) -> bool:
        """True while the referenced record is still retrievable."""
        return self.find_entry(reference) is not None


class LocalLedgerClient(LedgerClient):
    """Drives an in-process :class:`Blockchain` (any storage backend)."""

    name = "local"

    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain

    def submit(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        seal: bool = True,
    ) -> SubmitReceipt:
        """Sign and queue the record; seal one block unless deferred."""
        self.chain.add_entry(
            data,
            author,
            expires_at_time=expires_at_time,
            expires_at_block=expires_at_block,
        )
        if not seal:
            return SubmitReceipt(reference=None, block_number=None, sealed=False)
        block = self.chain.seal_block()
        return SubmitReceipt(
            reference=EntryReference(block.block_number, len(block.entries)),
            block_number=block.block_number,
            sealed=True,
        )

    def request_deletion(
        self,
        target: TargetLike,
        author: str,
        *,
        reason: str = "",
    ) -> DeletionReceipt:
        """Evaluate and record the request, then seal it (with any pending)."""
        decision = self.chain.request_deletion(as_reference(target), author, reason=reason)
        block = self.chain.seal_block()
        return DeletionReceipt(
            approved=decision.is_approved,
            reason=decision.reason,
            block_number=block.block_number,
            globally_effective=decision.is_approved,
            effort_units=1.0,
        )

    def find_entry(self, reference: TargetLike) -> Optional[LedgerRecord]:
        """O(1) lookup through the chain index."""
        resolved = as_reference(reference)
        located = self.chain.find_entry(resolved)
        if located is None:
            return None
        block, entry = located
        return LedgerRecord(
            reference=resolved,
            data=dict(entry.data),
            author=entry.author,
            block_number=block.block_number,
        )

    def statistics(self) -> dict[str, Any]:
        """The chain's full operational counters (O(1))."""
        return self.chain.statistics()

    def seal(self) -> Optional[int]:
        """Seal the pending pool into the next block."""
        return self.chain.seal_block().block_number

    def tick(self, ticks: int = 1) -> bool:
        """Advance the chain clock and apply the idle-block rule."""
        self.chain.clock.advance(ticks)
        return self.chain.idle_tick() is not None
