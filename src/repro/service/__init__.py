"""The layered Ledger service API: one client protocol, many backends.

``repro.service`` is the top of the three-layer architecture:

1. **Storage** — :class:`~repro.storage.memstore.BlockStore` backends the
   chain façade runs on (memory, append-only journal),
2. **Events** — the typed :class:`~repro.core.events.EventBus` everything
   observes the chain through,
3. **Client** — the :class:`LedgerClient` protocol of this package, with an
   in-process, a networked and a baseline implementation.
"""

from repro.service.client import (
    DeletionReceipt,
    LedgerClient,
    LedgerError,
    LedgerRecord,
    LocalLedgerClient,
    SubmitReceipt,
    as_reference,
)
from repro.service.baseline import BaselineLedgerClient
from repro.service.remote import RemoteLedgerClient
from repro.service.sharding import (
    ErasureReceipt,
    ShardAuthorIndex,
    ShardRouter,
    shard_of_author,
)

__all__ = [
    "DeletionReceipt",
    "LedgerClient",
    "LedgerError",
    "LedgerRecord",
    "LocalLedgerClient",
    "SubmitReceipt",
    "as_reference",
    "BaselineLedgerClient",
    "RemoteLedgerClient",
    "ErasureReceipt",
    "ShardAuthorIndex",
    "ShardRouter",
    "shard_of_author",
]
