"""Ledger client backed by a replicated anchor-node deployment.

:class:`RemoteLedgerClient` implements the :class:`LedgerClient` protocol on
top of the anchor-node message protocol: records are signed client-side (one
:class:`~repro.network.node.ClientNode` per author, the paper's model of
many users talking to the quorum), submissions travel to an anchor node,
non-producer anchors forward producer-only operations, and queries are
served from the contacted anchor's replica.

Because anchor replicas converge deterministically (Section IV-B), a
workload replayed through this client against a healthy deployment yields
chain statistics identical to the same workload replayed through a
:class:`~repro.service.client.LocalLedgerClient` — the parity the layered
API is designed around (and that the test suite pins).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from repro.core.entry import EntryReference
from repro.network.message import Message
from repro.network.node import ClientNode
from repro.network.transport import InMemoryTransport
from repro.service.client import (
    DeletionReceipt,
    LedgerClient,
    LedgerError,
    LedgerRecord,
    SubmitReceipt,
    TargetLike,
    as_reference,
)


class RemoteLedgerClient(LedgerClient):
    """Drives anchor nodes over the transport — the networked backend."""

    name = "remote"

    def __init__(
        self,
        transport: InMemoryTransport,
        anchor_id: str,
        *,
        scheme_name: str = "simplified",
        query_anchor_id: Optional[str] = None,
        fallback_anchor_ids: Sequence[str] = (),
    ) -> None:
        """Bind to ``anchor_id`` for submissions (and ``query_anchor_id`` for
        lookups/statistics, default the same node).

        ``scheme_name`` must match the chain configuration of the anchors so
        client-side signatures verify server-side.  ``fallback_anchor_ids``
        are tried in order when the bound anchor answers with a transport
        error — the client-side failover the paper proposes against node
        isolation (Section V-B4).
        """
        self.transport = transport
        self.anchor_id = anchor_id
        self.query_anchor_id = query_anchor_id or anchor_id
        self.fallback_anchor_ids = tuple(fallback_anchor_ids)
        self.scheme_name = scheme_name
        #: Failovers performed (an anchor answered with an error and a
        #: fallback was tried), for reports.
        self.failovers = 0
        #: One signing client per author, created on first use.
        self._clients: dict[str, ClientNode] = {}

    def _client_for(self, author: str) -> ClientNode:
        client = self._clients.get(author)
        if client is None:
            client = ClientNode(author, self.transport, scheme_name=self.scheme_name)
            self._clients[author] = client
        return client

    def _driver(self) -> ClientNode:
        """The client used for author-less operations (seal, tick, queries)."""
        return self._client_for("ledger-driver")

    @staticmethod
    def _require_ok(response: Message, operation: str) -> Message:
        if response.is_error:
            raise LedgerError(
                f"{operation} failed: {response.payload.get('reason', 'unknown error')}"
            )
        return response

    def _with_failover(
        self, operation: Callable[[str], Message], *, first: Optional[str] = None
    ) -> Message:
        """Run ``operation`` against the bound anchor, falling over on error.

        ``operation`` receives an anchor id and returns the response message;
        the first non-error response wins.  When every anchor errors, the
        last error response is returned for the caller to surface.  Queries
        pass ``first=query_anchor_id`` so the read path starts at its bound
        replica before trying the rest of the deployment; fallbacks that
        duplicate ``first`` are skipped.
        """
        primary = first if first is not None else self.anchor_id
        targets = [primary]
        for fallback in (self.anchor_id, *self.fallback_anchor_ids):
            if fallback not in targets:
                targets.append(fallback)
        response: Optional[Message] = None
        for target in targets:
            response = operation(target)
            if not response.is_error:
                return response
            self.failovers += 1
        assert response is not None
        # Every target failed; one failover count per *extra* target tried.
        self.failovers -= 1
        return response

    # ------------------------------------------------------------------ #
    # LedgerClient protocol
    # ------------------------------------------------------------------ #

    @staticmethod
    def _submit_receipt_from(response: Message) -> SubmitReceipt:
        if response.is_error:
            return SubmitReceipt(
                reference=None,
                block_number=None,
                sealed=False,
                error=str(response.payload.get("reason", "submission failed")),
            )
        block_number = response.payload.get("block_number")
        entry_number = response.payload.get("entry_number")
        if block_number is None or entry_number is None:
            return SubmitReceipt(reference=None, block_number=None, sealed=False)
        return SubmitReceipt(
            reference=EntryReference(int(block_number), int(entry_number)),
            block_number=int(block_number),
            sealed=True,
        )

    def submit(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        seal: bool = True,
    ) -> SubmitReceipt:
        """Sign the record as ``author`` and submit it to the bound anchor."""
        response = self._with_failover(
            lambda target: self._client_for(author).submit_entry(
                target,
                dict(data),
                expires_at_time=expires_at_time,
                expires_at_block=expires_at_block,
                defer_seal=not seal,
            )
        )
        return self._submit_receipt_from(response)

    def submit_async(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        on_receipt: Callable[[SubmitReceipt], None],
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        seal: bool = True,
    ) -> None:
        """:meth:`submit` without the virtual-time wait (kernel mode only).

        The receipt callback fires when the anchor's response arrives;
        failover walks the same target order as the blocking path, one
        continuation per attempt.  Overlapping submissions — to one anchor
        or across a sharded deployment — consume concurrent, not summed,
        round-trip time.
        """
        client = self._client_for(author)
        targets = [self.anchor_id]
        for fallback in self.fallback_anchor_ids:
            if fallback not in targets:
                targets.append(fallback)

        def attempt(index: int) -> None:
            def handle(response: Message) -> None:
                if not response.is_error:
                    on_receipt(self._submit_receipt_from(response))
                    return
                if index + 1 < len(targets):
                    self.failovers += 1
                    attempt(index + 1)
                    return
                on_receipt(self._submit_receipt_from(response))

            client.submit_entry_async(
                targets[index],
                dict(data),
                on_response=handle,
                expires_at_time=expires_at_time,
                expires_at_block=expires_at_block,
                defer_seal=not seal,
            )

        attempt(0)

    def request_deletion(
        self,
        target: TargetLike,
        author: str,
        *,
        reason: str = "",
    ) -> DeletionReceipt:
        """Sign and submit a deletion request; the anchor seals it."""
        response = self._with_failover(
            lambda target_anchor: self._client_for(author).request_deletion(
                target_anchor, as_reference(target), reason=reason
            )
        )
        if response.is_error:
            return DeletionReceipt(
                approved=False,
                reason="",
                error=str(response.payload.get("reason", "deletion request failed")),
            )
        approved = response.payload.get("deletion_status") == "approved"
        return DeletionReceipt(
            approved=approved,
            reason=str(response.payload.get("deletion_reason", "")),
            block_number=response.payload.get("block_number"),
            globally_effective=approved,
            effort_units=1.0,
        )

    def find_entry(self, reference: TargetLike) -> Optional[LedgerRecord]:
        """Look the record up on the query anchor's replica.

        Converged replicas answer lookups identically, so when the query
        anchor times out the lookup fails over to the rest of the deployment
        instead of raising — reads survive any single-node outage.
        """
        resolved = as_reference(reference)
        response = self._require_ok(
            self._with_failover(
                lambda target: self._driver().find_entry(target, resolved),
                first=self.query_anchor_id,
            ),
            "find_entry",
        )
        if not response.payload.get("found"):
            return None
        entry = response.payload.get("entry", {})
        return LedgerRecord(
            reference=resolved,
            data=dict(entry.get("data", {})),
            author=str(entry.get("author", "")),
            block_number=response.payload.get("block_number"),
        )

    def statistics(self) -> dict[str, Any]:
        """The query anchor's replica statistics (with read failover)."""
        response = self._require_ok(
            self._with_failover(
                lambda target: self._driver().query_statistics(target),
                first=self.query_anchor_id,
            ),
            "statistics",
        )
        return dict(response.payload.get("statistics", {}))

    def seal(self) -> Optional[int]:
        """Ask the producer to seal the queued batch."""
        response = self._require_ok(
            self._with_failover(lambda target: self._driver().request_seal(target)), "seal"
        )
        return response.payload.get("block_number")

    def tick(self, ticks: int = 1) -> bool:
        """Advance the producer's clock; idle blocks replicate automatically."""
        response = self._require_ok(
            self._with_failover(lambda target: self._driver().idle_tick(target, ticks=ticks)),
            "tick",
        )
        return bool(response.payload.get("appended"))
