"""Ledger client adapting the Section III comparison baselines.

:class:`BaselineLedgerClient` exposes a
:class:`~repro.baselines.base.BaselineSystem` — immutable chain, local
pruning, hard fork, chameleon redaction, off-chain storage — through the
:class:`~repro.service.client.LedgerClient` protocol, so the comparison
harness and the workload driver sweep the paper's system and every
alternative with literally the same code path.

Baselines address records by insertion index, not by block coordinates.  To
keep workload deletion targets (``EntryReference`` pairs) meaningful, the
adapter mirrors the chain's block numbering under the paper's one-record-
per-block evaluation model: submissions receive the block number the
selective-deletion chain would have assigned (summary slots are skipped,
deletion requests consume a block of their own), and that synthetic
reference maps to the baseline's :class:`~repro.baselines.base.RecordRef`.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.baselines.base import BaselineSystem, RecordRef
from repro.core.sequence import is_summary_slot
from repro.service.client import (
    DeletionReceipt,
    LedgerClient,
    LedgerRecord,
    SubmitReceipt,
    TargetLike,
    as_reference,
)


class BaselineLedgerClient(LedgerClient):
    """Drives one baseline system through the ledger protocol."""

    def __init__(self, system: BaselineSystem, *, sequence_length: int = 3) -> None:
        self.system = system
        self.name = system.name
        self.sequence_length = sequence_length
        #: Synthetic chain numbering: the next block a submission would take.
        self._next_block = 1
        self._summary_slots_skipped = 0
        self._by_reference: dict[tuple[int, int], RecordRef] = {}
        self._records: dict[tuple[int, int], tuple[dict[str, Any], str]] = {}

    def _claim_block_number(self) -> int:
        """Next non-summary slot, mirroring the chain's numbering."""
        number = self._next_block
        while is_summary_slot(number, self.sequence_length):
            self._summary_slots_skipped += 1
            number += 1
        self._next_block = number + 1
        return number

    # ------------------------------------------------------------------ #
    # LedgerClient protocol
    # ------------------------------------------------------------------ #

    def submit(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        seal: bool = True,
    ) -> SubmitReceipt:
        """Append one record; expiry bounds are ignored (baselines have no
        temporary entries — one of the capabilities the comparison shows)."""
        record_ref = self.system.append_record(dict(data), author)
        block_number = self._claim_block_number()
        key = (block_number, 1)
        self._by_reference[key] = record_ref
        self._records[key] = (dict(data), author)
        return SubmitReceipt(
            reference=as_reference(key),
            block_number=block_number,
            sealed=True,
        )

    def request_deletion(
        self,
        target: TargetLike,
        author: str,
        *,
        reason: str = "",
    ) -> DeletionReceipt:
        """Attempt an erasure through the baseline's own mechanism."""
        resolved = as_reference(target)
        block_number = self._claim_block_number()  # the request occupies a block
        record_ref = self._by_reference.get((resolved.block_number, resolved.entry_number))
        if record_ref is None:
            return DeletionReceipt(
                approved=False,
                reason=f"target {resolved} does not exist in this ledger",
                block_number=block_number,
            )
        outcome = self.system.request_erasure(record_ref, author)
        return DeletionReceipt(
            approved=outcome.accepted,
            reason=outcome.detail,
            block_number=block_number,
            globally_effective=outcome.globally_effective,
            effort_units=outcome.effort_units,
        )

    def find_entry(self, reference: TargetLike) -> Optional[LedgerRecord]:
        """Return the record while the baseline can still produce it."""
        resolved = as_reference(reference)
        key = (resolved.block_number, resolved.entry_number)
        record_ref = self._by_reference.get(key)
        if record_ref is None or not self.system.record_retrievable(record_ref):
            return None
        data, author = self._records[key]
        return LedgerRecord(reference=resolved, data=data, author=author, block_number=None)

    def statistics(self) -> dict[str, Any]:
        """Uniform counters: baselines count records instead of blocks."""
        return {
            "system": self.system.name,
            "living_blocks": self.system.record_count(),
            "living_entries": self.system.record_count(),
            "byte_size": self.system.storage_bytes(),
            "total_blocks_created": self._next_block - 1 - self._summary_slots_skipped,
            "capabilities": self.system.capabilities(),
        }

    def seal(self) -> Optional[int]:
        """No-op: baselines persist records immediately."""
        return None

    def tick(self, ticks: int = 1) -> bool:
        """No-op: baselines have no idle-block progress rule."""
        return False
