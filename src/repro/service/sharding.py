"""Sharded multi-ledger deployments behind one ``LedgerClient`` surface.

One producer seals one block at a time, and ``BENCH_fleet.json`` pinned
what that costs: a single deployment saturates near ~47 req/s virtual with
the p50-inflation knee at N=300 clients.  The way past a single producer is
the way past any single writer — partition the keyspace.  This module
shards *authors* across K independent anchor deployments (one chain per
tenant/region, the paper's many-operators model writ large) while keeping
the application surface unchanged:

* :func:`shard_of_author` hashes an author onto a shard deterministically
  (SHA-256, stable across processes and seeds — never the salted builtin
  ``hash``);
* :class:`ShardAuthorIndex` is the shard-level generalisation of the
  chain-level ``ChainIndex`` entry-location map: which shards hold which
  authors' entries, maintained incrementally on every routed submission;
* :class:`ShardRouter` implements the full :class:`LedgerClient` protocol
  in front of the K deployments — ``submit`` routes by author hash,
  ``request_deletion`` routes by recorded entry location, ``find_entry``
  probes the recorded location first, ``statistics`` merges per-shard
  counters into one report — plus the one operation a sharded GDPR ledger
  must add: :meth:`ShardRouter.request_erasure`, which fans an author's
  right-to-be-forgotten request out to **exactly** the shards holding that
  author's entries and folds the per-shard completions into a single
  :class:`ErasureReceipt`.

Cross-shard deletion routing is the point: an erasure request must reach
every shard with the author's data (or the deletion is not globally
effective) and *only* those shards (or erasure cost grows with deployment
size instead of data size).  The index makes the fan-out exact, and the
routing-exactness test pins it.

Determinism: author→shard placement is a pure function of the author
string, the index iterates in sorted shard order, merged statistics are
keyed ``shard-0 .. shard-K-1``, and latency samples are plain rounded
floats — sharded runs replay byte-identically per (seed, K).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.core.entry import EntryReference
from repro.service.client import (
    DeletionReceipt,
    LedgerClient,
    LedgerRecord,
    SubmitReceipt,
    TargetLike,
    as_reference,
)
from repro.workloads.stats import latency_summary

#: Domain tag for author→shard placement, so shard routing can never
#: collide with other SHA-256 derivations (client sub-seeds, block hashes).
_SHARD_ROUTE_DOMAIN = "shard-route"


def shard_of_author(author: str, shard_count: int) -> int:
    """The deterministic home shard of ``author`` in a K-shard deployment.

    A pure function of the author string: stable across processes, runs and
    seeds (SHA-256, not the per-process-salted builtin ``hash``), uniform
    enough that a fleet of authors spreads evenly across shards.
    """
    if shard_count <= 0:
        raise ValueError("shard_count must be positive")
    digest = hashlib.sha256(
        f"{_SHARD_ROUTE_DOMAIN}:{author}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


@dataclass(frozen=True)
class ErasureReceipt:
    """One author-level erasure, folded from its per-shard deletions.

    ``shards`` lists exactly the shards the request was routed to — the
    shards holding the author's entries at request time, in ascending
    order.  ``approved`` holds only when **every** routed deletion was
    approved: a right-to-be-forgotten request is not satisfied by a subset
    of the author's data disappearing.
    """

    author: str
    #: Shards the request fanned out to (ascending; empty when the author
    #: had no recorded entries).
    shards: tuple[int, ...]
    #: Entries targeted across all shards.
    entries_targeted: int
    #: Per-entry deletion receipts, in (shard, reference) routing order.
    receipts: tuple[DeletionReceipt, ...]
    #: Every targeted entry's deletion was approved (vacuously False when
    #: nothing was targeted — erasing an unknown author is not a success).
    approved: bool
    #: Summed effort across shards (the paper's deletion-effort metric).
    effort_units: float
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error


class ShardAuthorIndex:
    """Which shards hold which authors' entries (and where each entry is).

    The shard-level generalisation of the chain-level ``ChainIndex``: the
    chain index answers "which block holds this entry" in O(1); this index
    answers "which *shards* hold this author's entries" — the lookup that
    makes cross-shard erasure fan-out exact instead of broadcast.

    Each shard numbers its own blocks, so an :class:`EntryReference` is
    only unique *per shard* — shard 0's (block 5, entry 1) and shard 1's
    (block 5, entry 1) are different entries.  The location map therefore
    refcounts holder shards per reference key instead of storing a single
    shard a later collision would silently overwrite, and ``discard``
    removes exactly one (shard, reference) recording, never a same-keyed
    entry on another shard.
    """

    def __init__(self) -> None:
        #: author -> list of (shard, reference) in submission order.
        self._refs: dict[str, list[tuple[int, EntryReference]]] = {}
        #: (block_number, entry_number) -> {shard: recordings}, for
        #: deletion routing.  A key held by several shards is ambiguous —
        #: :meth:`location_of` reports that honestly instead of guessing.
        self._locations: dict[tuple[int, int], dict[int, int]] = {}

    def record(self, author: str, shard: int, reference: EntryReference) -> None:
        """Note a sealed submission of ``author`` on ``shard``."""
        self._refs.setdefault(author, []).append((shard, reference))
        holders = self._locations.setdefault(
            (reference.block_number, reference.entry_number), {}
        )
        holders[shard] = holders.get(shard, 0) + 1

    def discard(self, author: str, shard: int, reference: EntryReference) -> None:
        """Forget one recording of ``reference`` on ``shard`` (after its
        deletion was approved)."""
        key = (reference.block_number, reference.entry_number)
        refs = self._refs.get(author, [])
        for position, (held_shard, ref) in enumerate(refs):
            if held_shard == shard and (ref.block_number, ref.entry_number) == key:
                del refs[position]
                break
        if not refs:
            self._refs.pop(author, None)
        holders = self._locations.get(key)
        if holders is None:
            return
        remaining = holders.get(shard, 0) - 1
        if remaining > 0:
            holders[shard] = remaining
        else:
            holders.pop(shard, None)
        if not holders:
            self._locations.pop(key, None)

    def shards_holding(self, author: str) -> list[int]:
        """The ascending shard list an erasure for ``author`` must reach."""
        return sorted({shard for shard, _ in self._refs.get(author, [])})

    def references_of(self, author: str) -> list[tuple[int, EntryReference]]:
        """The author's recorded entries as (shard, reference), in
        submission order — the erasure fan-out worklist."""
        return list(self._refs.get(author, []))

    def location_of(self, reference: EntryReference) -> Optional[int]:
        """The shard holding ``reference`` — when exactly one does.

        ``None`` both for unrouted references and for keys several shards
        hold (the per-shard block numbering collision): an ambiguous
        location is no location, and the caller falls back to its sweep
        or home-shard routing instead of acting on a guess.
        """
        holders = self.holders_of(reference)
        return holders[0] if len(holders) == 1 else None

    def holders_of(self, reference: EntryReference) -> list[int]:
        """Every shard recorded as holding ``reference``'s key, ascending
        (several when per-shard block numbering collides)."""
        return sorted(
            self._locations.get(
                (reference.block_number, reference.entry_number), {}
            )
        )

    def authors(self) -> list[str]:
        """All authors with recorded entries, sorted."""
        return sorted(self._refs)

    def __len__(self) -> int:
        return sum(len(refs) for refs in self._refs.values())


class ShardRouter(LedgerClient):
    """K independent ledger deployments behind one client surface.

    Parameters
    ----------
    shards:
        One :class:`LedgerClient` per shard (typically a
        ``RemoteLedgerClient`` bound to that shard's anchor deployment).
        Shard ``i`` of the router is ``shards[i]``.
    index:
        Optional shared :class:`ShardAuthorIndex` — pass one index to
        several routers to shard a deployment per-client while keeping a
        single global view of entry locations.
    clock:
        Optional virtual-clock callable (``kernel.now``).  When set, every
        routed ``submit`` / ``request_deletion`` round trip is timed and
        the per-shard service-latency percentiles land in
        :meth:`latency_report` — the per-shard half of the
        ``report["shards"]`` block.
    """

    name = "sharded"

    def __init__(
        self,
        shards: Sequence[LedgerClient],
        *,
        index: Optional[ShardAuthorIndex] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not shards:
            raise ValueError("a sharded deployment needs at least one shard")
        self.shards = list(shards)
        self.index = index if index is not None else ShardAuthorIndex()
        self.clock = clock
        #: Per-shard routed-operation counters, index-aligned with shards.
        self.submitted_per_shard = [0] * len(self.shards)
        self.deletions_per_shard = [0] * len(self.shards)
        #: Author-level erasures processed (each fans out per the index).
        self.erasures = 0
        #: Per-shard service-latency samples (virtual ms), clock-gated.
        self._latency_per_shard: list[list[float]] = [[] for _ in self.shards]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, author: str) -> int:
        """The home shard new submissions of ``author`` route to."""
        return shard_of_author(author, len(self.shards))

    def _timed(self, shard: int, operation: Callable[[], Any]) -> Any:
        if self.clock is None:
            return operation()
        started = self.clock()
        result = operation()
        self._latency_per_shard[shard].append(round(self.clock() - started, 6))
        return result

    # ------------------------------------------------------------------ #
    # LedgerClient protocol
    # ------------------------------------------------------------------ #

    def submit(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        seal: bool = True,
    ) -> SubmitReceipt:
        """Route the record to the author's home shard and index the seal."""
        shard = self.shard_of(author)
        receipt: SubmitReceipt = self._timed(
            shard,
            lambda: self.shards[shard].submit(
                data,
                author,
                expires_at_time=expires_at_time,
                expires_at_block=expires_at_block,
                seal=seal,
            ),
        )
        self.submitted_per_shard[shard] += 1
        if receipt.ok and receipt.reference is not None:
            self.index.record(author, shard, receipt.reference)
        return receipt

    def submit_async(
        self,
        data: Mapping[str, Any],
        author: str,
        *,
        on_receipt: Callable[[SubmitReceipt], None],
        expires_at_time: Optional[int] = None,
        expires_at_block: Optional[int] = None,
        seal: bool = True,
    ) -> None:
        """:meth:`submit` with the receipt delivered through a callback.

        Routes like :meth:`submit`; whether the exchange overlaps other
        submissions is the shard client's property (a kernel-backed shard
        defers the callback, so submissions to *different* shards — and to
        the same shard from different callers — consume concurrent
        round-trip time; this is where the K-fold service rate comes from).
        """
        shard = self.shard_of(author)
        started = self.clock() if self.clock is not None else None

        def finish(receipt: SubmitReceipt) -> None:
            if started is not None:
                assert self.clock is not None
                self._latency_per_shard[shard].append(round(self.clock() - started, 6))
            self.submitted_per_shard[shard] += 1
            if receipt.ok and receipt.reference is not None:
                self.index.record(author, shard, receipt.reference)
            on_receipt(receipt)

        self.shards[shard].submit_async(
            data,
            author,
            on_receipt=finish,
            expires_at_time=expires_at_time,
            expires_at_block=expires_at_block,
            seal=seal,
        )

    def request_deletion(
        self,
        target: TargetLike,
        author: str,
        *,
        reason: str = "",
    ) -> DeletionReceipt:
        """Route a single-entry deletion to the shard holding the entry.

        The recorded location wins (an entry always lives where it was
        submitted); an unindexed target falls back to the author's home
        shard — the only shard that *can* hold an entry this router would
        have placed.  When per-shard block numbering makes the reference
        key ambiguous, the author's home shard breaks the tie if it is
        among the holders, else the lowest holder.
        """
        reference = as_reference(target)
        holders = self.index.holders_of(reference)
        home = self.shard_of(author)
        if len(holders) == 1:
            shard = holders[0]
        elif home in holders or not holders:
            shard = home
        else:
            shard = holders[0]
        receipt: DeletionReceipt = self._timed(
            shard,
            lambda: self.shards[shard].request_deletion(
                reference, author, reason=reason
            ),
        )
        self.deletions_per_shard[shard] += 1
        if receipt.ok and receipt.approved:
            self.index.discard(author, shard, reference)
        return receipt

    def request_erasure(self, author: str, *, reason: str = "") -> ErasureReceipt:
        """Erase every recorded entry of ``author`` — the GDPR Article 17
        request a sharded deployment must route, not broadcast.

        Fans out to exactly the shards the index holds entries on (the
        routing-exactness acceptance pin), folds the per-shard deletion
        receipts into one author-level receipt, and forgets approved
        entries so a repeated erasure is a no-op rather than a re-issue.
        """
        worklist = self.index.references_of(author)
        shards_touched = self.index.shards_holding(author)
        if not worklist:
            return ErasureReceipt(
                author=author,
                shards=(),
                entries_targeted=0,
                receipts=(),
                approved=False,
                effort_units=0.0,
                error=f"no recorded entries for author {author!r}",
            )
        self.erasures += 1
        receipts: list[DeletionReceipt] = []
        for shard, reference in worklist:
            receipt: DeletionReceipt = self._timed(
                shard,
                lambda shard=shard, reference=reference: self.shards[
                    shard
                ].request_deletion(reference, author, reason=reason),
            )
            self.deletions_per_shard[shard] += 1
            receipts.append(receipt)
            if receipt.ok and receipt.approved:
                self.index.discard(author, shard, reference)
        return ErasureReceipt(
            author=author,
            shards=tuple(shards_touched),
            entries_targeted=len(worklist),
            receipts=tuple(receipts),
            approved=all(r.ok and r.approved for r in receipts),
            effort_units=round(sum(r.effort_units for r in receipts), 6),
        )

    def find_entry(self, reference: TargetLike) -> Optional[LedgerRecord]:
        """Locate a record across shards: recorded holder shards first
        (several when per-shard block numbering collides), then a sorted
        sweep (an entry submitted outside this router can live on any
        shard)."""
        resolved = as_reference(reference)
        holders = self.index.holders_of(resolved)
        order = holders + [
            shard for shard in range(len(self.shards)) if shard not in holders
        ]
        for shard in order:
            record = self.shards[shard].find_entry(resolved)
            if record is not None:
                return record
        return None

    def statistics(self) -> dict[str, Any]:
        """The merged deployment view: summed chain counters, per-shard
        breakdown, and the router's own routing counters."""
        per_shard = {
            f"shard-{shard}": client.statistics()
            for shard, client in enumerate(self.shards)
        }
        merged: dict[str, Any] = {
            "backend": self.name,
            "shards": len(self.shards),
            "living_blocks": sum(s["living_blocks"] for s in per_shard.values()),
            "byte_size": sum(s["byte_size"] for s in per_shard.values()),
            "total_blocks_created": sum(
                s["total_blocks_created"] for s in per_shard.values()
            ),
            "routing": {
                "submitted_per_shard": list(self.submitted_per_shard),
                "deletions_per_shard": list(self.deletions_per_shard),
                "erasures": self.erasures,
                "indexed_entries": len(self.index),
                "indexed_authors": len(self.index.authors()),
            },
            "per_shard": per_shard,
        }
        return merged

    def seal(self) -> Optional[int]:
        """Seal every shard's pending pool; returns shard 0's block number
        (per-shard numbers live in :meth:`statistics`)."""
        numbers = [client.seal() for client in self.shards]
        return numbers[0]

    def tick(self, ticks: int = 1) -> bool:
        """Advance every shard's ledger clock; ``True`` if any shard sealed
        an idle block (progress is per-shard, not global)."""
        appended = False
        for shard, client in enumerate(self.shards):
            appended = self._timed(shard, lambda c=client: c.tick(ticks)) or appended
        return appended

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def latency_report(self) -> dict[str, dict[str, Any]]:
        """Per-shard service-latency percentiles of the routed round trips.

        Keys ``shard-0 .. shard-K-1``; each value is a
        :func:`~repro.workloads.stats.latency_summary` block.  Gate on
        :func:`~repro.workloads.stats.has_samples` before comparing — an
        idle shard reports the empty-window shape, not zero latency.
        """
        return {
            f"shard-{shard}": latency_summary(samples)
            for shard, samples in enumerate(self._latency_per_shard)
        }

    def aggregate_latency(self) -> dict[str, Any]:
        """Deployment-wide service-latency percentiles: every routed round
        trip across every shard folded into one summary — the aggregate
        half of the ``report["shards"]`` block."""
        merged: list[float] = []
        for samples in self._latency_per_shard:
            merged.extend(samples)
        return latency_summary(merged)
