"""Login / audit-logging workload (Sections II and V).

Two generators:

* :class:`PaperScenarioWorkload` replays the exact evaluation trace of the
  paper — logins of ALPHA, BRAVO and CHARLIE, BRAVO's deletion request for
  (block 3, entry 1), and enough further activity to run the summarisation
  cycles of Figs. 6-8,
* :class:`LoginAuditWorkload` generates synthetic login streams of arbitrary
  size for the growth and latency benchmarks, with a configurable deletion
  rate.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.entry import EntryReference
from repro.workloads.base import EventKind, Workload, WorkloadEvent

#: The three participants of the paper's evaluation (Section V).
PAPER_USERS = ("ALPHA", "BRAVO", "CHARLIE")


def login_record(user: str, *, detail: str = "") -> dict[str, str]:
    """Entry payload of one login event in the paper's D/K/S structure."""
    record = f"Login {user}" if not detail else f"Login {user} {detail}"
    return {"D": record, "K": user, "S": f"sig_{user}"}


class PaperScenarioWorkload(Workload):
    """The exact scenario of Figs. 6-8."""

    name = "paper-scenario"

    def __init__(self, *, extra_cycles: int = 1) -> None:
        super().__init__(seed=0)
        self.extra_cycles = extra_cycles

    def events(self) -> Iterator[WorkloadEvent]:
        """Logins by ALPHA/BRAVO/CHARLIE, BRAVO's deletion, further logins."""
        # Fig. 6: one login per user -> entries in blocks 1, 3 and 4.
        for user in PAPER_USERS:
            yield WorkloadEvent(kind=EventKind.ENTRY, author=user, data=login_record(user))
        # Fig. 7: BRAVO requests deletion of its own entry (block 3, entry 1).
        yield WorkloadEvent(
            kind=EventKind.DELETION,
            author="BRAVO",
            target=EntryReference(3, 1),
        )
        # Keep the chain moving so the summarisation cycles of Figs. 7/8 run.
        for cycle in range(self.extra_cycles * 3 + 1):
            user = PAPER_USERS[cycle % len(PAPER_USERS)]
            yield WorkloadEvent(
                kind=EventKind.ENTRY,
                author=user,
                data=login_record(user, detail=f"(cycle {cycle + 1})"),
            )


class LoginAuditWorkload(Workload):
    """Synthetic login stream with an optional GDPR-style deletion rate."""

    name = "login-audit"

    def __init__(
        self,
        *,
        num_events: int = 1000,
        num_users: int = 10,
        deletion_rate: float = 0.0,
        idle_rate: float = 0.0,
        idle_ticks: int = 5,
        seed: int = 42,
    ) -> None:
        super().__init__(seed=seed)
        if num_events < 0 or num_users < 1:
            raise ValueError("num_events must be >= 0 and num_users >= 1")
        if not 0.0 <= deletion_rate <= 1.0 or not 0.0 <= idle_rate <= 1.0:
            raise ValueError("rates must be within [0, 1]")
        self.num_events = num_events
        self.num_users = num_users
        self.deletion_rate = deletion_rate
        self.idle_rate = idle_rate
        self.idle_ticks = idle_ticks

    def user(self, index: int) -> str:
        """Deterministic user name for an index."""
        if index < len(PAPER_USERS):
            return PAPER_USERS[index]
        return f"USER{index:03d}"

    def events(self) -> Iterator[WorkloadEvent]:
        """Logins interleaved with deletions of previously written entries.

        Entries are written one per block (the evaluation's model), so the
        n-th entry of the stream ends up in a deterministic block number;
        deletion targets are drawn from already-written entries of the same
        user, and the block number is estimated from the submission order —
        good enough for load generation, exact targeting is the example
        applications' job.
        """
        rng = self.fresh_rng()
        written: dict[str, list[EntryReference]] = {}
        data_blocks_emitted = 0
        for _ in range(self.num_events):
            roll = rng.random()
            if roll < self.idle_rate:
                yield WorkloadEvent(kind=EventKind.IDLE, idle_ticks=self.idle_ticks)
                continue
            user = self.user(rng.randrange(self.num_users))
            candidates = written.get(user, [])
            if candidates and roll < self.idle_rate + self.deletion_rate:
                target = candidates[rng.randrange(len(candidates))]
                yield WorkloadEvent(kind=EventKind.DELETION, author=user, target=target)
                data_blocks_emitted += 1
                continue
            data_blocks_emitted += 1
            # One entry per block and one summary block every l-1 data blocks
            # is chain-specific; replay() resolves actual numbers.  We record
            # an *approximate* reference assuming the paper configuration
            # (sequence length 3: data blocks skip every third slot).
            approx_block = self._approximate_block_number(data_blocks_emitted)
            reference = EntryReference(approx_block, 1)
            written.setdefault(user, []).append(reference)
            yield WorkloadEvent(
                kind=EventKind.ENTRY,
                author=user,
                data=login_record(user, detail=f"#{data_blocks_emitted}"),
            )

    @staticmethod
    def _approximate_block_number(data_block_index: int) -> int:
        """Block number of the n-th data block under sequence length 3.

        Data blocks occupy the non-summary slots 0, 1, 3, 4, 6, 7, ...; the
        genesis block takes the first slot, so the n-th submitted entry lands
        in the (n+1)-th data slot.
        """
        slot = data_block_index  # genesis occupies data-slot 0
        full_pairs, remainder = divmod(slot, 2)
        return full_pairs * 3 + remainder
