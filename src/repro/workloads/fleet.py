"""Open-loop multi-client traffic engine.

:class:`~repro.workloads.driver.ScenarioWorkloadDriver` is a *closed loop*:
event ``n+1`` is booked only once event ``n`` completes, so the deployment
services exactly one request at a time and every latency number is an
artifact of sequential issue.  A real population of clients does not wait
for each other — requests land when their senders decide, and a saturated
service accumulates backlog or drops work.  This module supplies that
missing traffic model:

* :func:`derive_client_seed` derives one sub-seed per fleet client from the
  fleet seed (client 0 keeps the fleet seed itself, so a one-client fleet is
  the single-driver run under another name);
* :func:`fleet_timeline` builds every client's
  :func:`~repro.workloads.base.arrival_schedule` timeline and interleaves
  them deterministically (sorted by arrival time, ties broken by client then
  position — a pure function of ``(seed, n_clients)``);
* :class:`FleetDriver` books the interleaved arrivals on the shared
  :class:`~repro.network.kernel.EventKernel` *up front* — open loop: an
  arrival fires at its scheduled time regardless of what completed — and
  admits them to service under a shared **in-flight budget**.  When the
  budget is exhausted the typed :class:`FleetPolicy` decides: ``SHED`` drops
  the request on the floor (counted, never issued), ``QUEUE`` parks it in a
  client-side backlog that is admitted as slots free up.  Request latency is
  measured from the *scheduled arrival* to completion, so queueing delay is
  charged to the service instead of silently vanishing (no coordinated
  omission), and the per-client / fleet-aggregate percentiles of
  :func:`~repro.workloads.stats.latency_summary` land under
  ``report["workloads"]``.

``in_flight_budget=0`` selects the **closed-loop spec mode**: the global
interleaved timeline is chained exactly like the single driver (event
``k+1`` books when ``k`` completes, at ``max(arrival, now)``), which makes a
one-client zero-budget fleet reproduce the
:class:`~repro.workloads.driver.ScenarioWorkloadDriver` run byte-identically
— the executable-spec pin of ``tests/test_workload_contract.py``.

Determinism: sub-seeds and timelines are pure functions of the fleet seed,
the kernel's seeded tie-break orders same-instant arrivals, and all reported
numbers are plain rounded floats — fleet runs replay byte-identically per
``(seed, n_clients, budget, policy)``.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from repro.core.events import ChainEvent, EventBus, EventType, Subscription
from repro.service.client import (
    DeletionReceipt,
    LedgerClient,
    LedgerError,
    SubmitReceipt,
    TargetLike,
    as_reference,
)
from repro.workloads.base import EventKind, Workload, WorkloadEvent, arrival_schedule
from repro.workloads.driver import WorkloadRunStats
from repro.workloads.stats import latency_summary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel is optional)
    from repro.network.kernel import EventKernel

#: Hook invoked after every ENTRY submission:
#: ``(client_index, position, event, receipt)`` — ``position`` is the event's
#: index within *its own client's* timeline, so per-client application state
#: (reference maps, erasure schedules) keys naturally.
FleetSubmitHook = Callable[[int, int, WorkloadEvent, SubmitReceipt], None]

#: Domain tag for the sub-seed hash mix: every ``(seed, client_index)``
#: pair maps to an independent 64-bit stream key, so no two fleets share a
#: per-client sub-stream no matter how their fleet seeds relate.  (The
#: earlier additive prime stride made client ``i`` of seed ``s`` collide
#: with client ``i+1`` of seed ``s - stride`` — exactly what a sharded
#: deployment deriving per-shard fleet seeds would trip over.)
_CLIENT_SEED_DOMAIN = "fleet-client"


class FleetPolicy(str, Enum):
    """What happens to an arrival when the in-flight budget is exhausted."""

    #: Drop the request (counted under ``shed``, never issued) — the arrival
    #: process stays strictly open-loop and overload shows up as loss.
    SHED = "shed"
    #: Park the request in a client-side backlog admitted as slots free up —
    #: nothing is lost and overload shows up as queueing latency.
    QUEUE = "queue"


def derive_client_seed(seed: int, client_index: int) -> int:
    """The deterministic sub-seed of fleet client ``client_index``.

    Client 0 keeps ``seed`` unchanged (a one-client fleet *is* the
    single-driver run); further clients hash-mix ``(seed, client_index)``
    through SHA-256 so distinct fleets never share a per-client sub-stream.
    """
    if client_index < 0:
        raise ValueError("client_index must be non-negative")
    if client_index == 0:
        return seed
    digest = hashlib.sha256(
        f"{_CLIENT_SEED_DOMAIN}:{seed}:{client_index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FleetArrival:
    """One scheduled request of the interleaved fleet timeline."""

    at_ms: float
    client_index: int
    position: int
    event: WorkloadEvent


def fleet_timeline(
    workloads: Sequence[Workload],
    *,
    mean_gap_ms: float,
    jitter: float = 0.5,
    ms_per_tick: float = 1.0,
    start_at_ms: float = 0.0,
) -> list[FleetArrival]:
    """Interleave every client's arrival schedule into one fleet timeline.

    Each workload is scheduled independently (its own seed, its own
    timeline), then the per-client streams merge sorted by
    ``(at_ms, client_index, position)`` — deterministic, and order-preserving
    within every client because a single client's schedule is already
    non-decreasing.
    """
    if start_at_ms < 0:
        raise ValueError("start_at_ms must be non-negative")
    arrivals: list[FleetArrival] = []
    for client_index, workload in enumerate(workloads):
        schedule = arrival_schedule(
            workload, mean_gap_ms=mean_gap_ms, jitter=jitter, ms_per_tick=ms_per_tick
        )
        arrivals.extend(
            FleetArrival(
                at_ms=round(start_at_ms + at, 6),
                client_index=client_index,
                position=position,
                event=event,
            )
            for position, (at, event) in enumerate(schedule)
        )
    arrivals.sort(key=lambda arrival: (arrival.at_ms, arrival.client_index, arrival.position))
    return arrivals


@dataclass
class FleetClientStats:
    """One fleet client: protocol counters plus its request latencies."""

    run: WorkloadRunStats
    request_latency_ms: list[float] = field(default_factory=list)
    executed: int = 0
    shed: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            **self.run.as_dict(),
            "executed": self.executed,
            "shed": self.shed,
            "request_latency_ms": latency_summary(self.request_latency_ms),
        }


@dataclass
class FleetRunStats:
    """Fleet-aggregate counters plus the per-client breakdown."""

    workload: str = ""
    n_clients: int = 0
    in_flight_budget: int = 0
    policy: str = FleetPolicy.QUEUE.value
    events_total: int = 0
    executed: int = 0
    shed: int = 0
    in_flight_peak: int = 0
    backlog_peak: int = 0
    horizon_ms: float = 0.0
    #: Virtual time at which the final arrival finished (or was shed) —
    #: under backlog this lies past the nominal horizon, and it is the
    #: denominator of the reported throughput.
    completed_at_ms: float = 0.0
    request_latency_ms: list[float] = field(default_factory=list)
    deletion_latency_ms: list[float] = field(default_factory=list)
    clients: list[FleetClientStats] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """Deterministic plain-dict view for scenario results and benchmarks."""
        elapsed = self.completed_at_ms
        throughput = (self.executed / elapsed * 1000.0) if elapsed > 0 else 0.0
        return {
            "workload": self.workload,
            "engine": "fleet",
            "mode": "closed-loop" if self.in_flight_budget == 0 else "open-loop",
            "n_clients": self.n_clients,
            "in_flight_budget": self.in_flight_budget,
            "policy": self.policy,
            "events_total": self.events_total,
            "executed": self.executed,
            "shed": self.shed,
            "in_flight_peak": self.in_flight_peak,
            "backlog_peak": self.backlog_peak,
            "horizon_ms": round(self.horizon_ms, 6),
            "completed_at_ms": round(self.completed_at_ms, 6),
            "throughput_per_s": round(throughput, 6),
            "request_latency_ms": latency_summary(self.request_latency_ms),
            "deletion_latency_ms": latency_summary(self.deletion_latency_ms),
            "clients": {
                f"client-{index}": client.as_dict()
                for index, client in enumerate(self.clients)
            },
        }


class FleetDriver:
    """Drives N independent seeded clients against a shared deployment.

    Parameters
    ----------
    workloads:
        One :class:`~repro.workloads.base.Workload` per fleet client —
        typically built with :func:`derive_client_seed` sub-seeds.
    clients:
        One :class:`~repro.service.client.LedgerClient` per fleet client
        (parallel to ``workloads``); every event of client ``i`` executes
        against ``clients[i]``.
    mean_gap_ms / jitter / ms_per_tick:
        Per-client arrival-rate knobs, forwarded to
        :func:`~repro.workloads.base.arrival_schedule`.  The fleet's offered
        load scales with ``n_clients / mean_gap_ms``.
    kernel / bus / start_at_ms / one_block_per_entry / expiry_ms_per_tick:
        As on :class:`~repro.workloads.driver.ScenarioWorkloadDriver`.
    in_flight_budget:
        Maximum number of requests admitted to service (issued, not yet
        completed) at any instant — shared across the whole fleet.  ``0``
        selects the closed-loop spec mode (see module docstring).
    policy:
        The :class:`FleetPolicy` applied when the budget is exhausted.
    on_submitted:
        Optional :data:`FleetSubmitHook`; ``on_finished`` is a plain
        attribute called once after the final arrival completed or was shed.
    lane_of:
        Optional service-lane selector.  By default the whole fleet drains
        through **one** service pump — requests round-trip strictly one at
        a time, which is the single-deployment model (and the source of its
        ~47 req/s ceiling).  A sharded deployment passes
        ``lane_of(arrival) -> lane`` (typically the arrival author's shard)
        to give every lane its own pump: round trips in *different* lanes
        overlap in virtual time — lane B's request departs while lane A's
        is still on the wire — so aggregate service rate scales with the
        number of lanes while each lane stays internally sequential.
    lane_count:
        Declared number of service lanes.  With more than one lane the
        driver switches to the **event-driven pump**: ENTRY submissions go
        through :meth:`LedgerClient.submit_async` and a lane's next request
        departs from the response-arrival callback instead of a blocking
        virtual-time wait, so N lanes genuinely sustain N overlapped round
        trips (the nested blocking pump tops out well short of that — every
        response return has to unwind through whatever stacked beneath it).
        Left at ``None`` (or ``1``) the classic blocking pump runs and the
        kernel sees the exact event sequence of a single-deployment run.
    """

    def __init__(
        self,
        workloads: Sequence[Workload],
        clients: Sequence[LedgerClient],
        *,
        mean_gap_ms: float,
        jitter: float = 0.5,
        ms_per_tick: float = 1.0,
        kernel: Optional["EventKernel"] = None,
        bus: Optional[EventBus] = None,
        start_at_ms: float = 0.0,
        one_block_per_entry: bool = True,
        expiry_ms_per_tick: Optional[float] = None,
        in_flight_budget: int = 8,
        policy: FleetPolicy | str = FleetPolicy.QUEUE,
        on_submitted: Optional[FleetSubmitHook] = None,
        lane_of: Optional[Callable[[FleetArrival], int]] = None,
        lane_count: Optional[int] = None,
    ) -> None:
        if not workloads:
            raise ValueError("a fleet needs at least one client workload")
        if len(workloads) != len(clients):
            raise ValueError(
                f"{len(workloads)} workloads need {len(workloads)} ledger clients, "
                f"got {len(clients)}"
            )
        if in_flight_budget < 0:
            raise ValueError("in_flight_budget must be non-negative")
        if expiry_ms_per_tick is not None and expiry_ms_per_tick <= 0:
            raise ValueError("expiry_ms_per_tick must be positive when set")
        self.workloads = list(workloads)
        #: The lead workload — names the fleet in ``report["workloads"]``.
        self.workload = self.workloads[0]
        self.clients = list(clients)
        #: The query surface scenario bodies read through (lookups after
        #: traffic) — fleet client 0's ledger client.
        self.client = self.clients[0]
        self.kernel = kernel
        self.start_at_ms = float(start_at_ms)
        self.one_block_per_entry = one_block_per_entry
        self.expiry_ms_per_tick = expiry_ms_per_tick
        self.in_flight_budget = int(in_flight_budget)
        self.policy = FleetPolicy(policy)
        self.on_submitted = on_submitted
        self.lane_of = lane_of
        self.lane_count = lane_count
        #: Event-driven pump active: multi-lane fleets issue requests
        #: asynchronously so lanes overlap without nesting blocking waits.
        self._async = kernel is not None and lane_count is not None and lane_count > 1
        #: Called once after the final arrival has completed or been shed.
        self.on_finished: Optional[Callable[[], None]] = None
        self.timeline: list[FleetArrival] = fleet_timeline(
            self.workloads,
            mean_gap_ms=mean_gap_ms,
            jitter=jitter,
            ms_per_tick=ms_per_tick,
            start_at_ms=self.start_at_ms,
        )
        self.stats = FleetRunStats(
            workload=self.workload.name,
            n_clients=len(self.workloads),
            in_flight_budget=self.in_flight_budget,
            policy=self.policy.value,
            events_total=len(self.timeline),
            horizon_ms=self.timeline[-1].at_ms if self.timeline else 0.0,
            clients=[
                FleetClientStats(run=WorkloadRunStats(workload=workload.name))
                for workload in self.workloads
            ],
        )
        for arrival in self.timeline:
            client = self.stats.clients[arrival.client_index]
            client.run.events_total += 1
            client.run.horizon_ms = arrival.at_ms
        self._scheduled = False
        self._finished = False
        self._processed = 0
        self._in_flight = 0
        #: Lanes currently inside their pump loop (lane 0 is the only lane
        #: when ``lane_of`` is None, so the default run never grows these
        #: maps past one entry and behaves exactly like a single pump).
        self._pumping: set[int] = set()
        self._waking: set[int] = set()
        #: Lanes with an async request in flight (event-driven pump only).
        self._busy: set[int] = set()
        self._service: dict[int, deque[FleetArrival]] = {}
        self._backlog: deque[FleetArrival] = deque()
        #: reference key -> virtual request time, for latency pairing.
        self._deletion_requested_at: dict[tuple[int, int], float] = {}
        #: reference key -> fleet client that issued the request.
        self._deletion_owner: dict[tuple[int, int], int] = {}
        self._latency_subscription: Optional[Subscription] = None
        self._bus = bus
        if bus is not None and kernel is not None:
            self._latency_subscription = bus.subscribe(
                self._on_deletion_event,
                types=(EventType.DELETION_REQUESTED, EventType.DELETION_EXECUTED),
            )

    # ------------------------------------------------------------------ #
    # Execution modes
    # ------------------------------------------------------------------ #

    def schedule(self) -> float:
        """Book the fleet timeline on the kernel; returns the horizon.

        Open loop (``in_flight_budget >= 1``): every arrival is booked at
        its scheduled time up front — completions do not gate arrivals, and
        the arrival callbacks are O(1) (admit / queue / shed) so a round
        trip overrunning the next arrival cannot nest executions.

        Closed loop (``in_flight_budget == 0``): the interleaved timeline is
        chained exactly like
        :meth:`~repro.workloads.driver.ScenarioWorkloadDriver.schedule` —
        the executable-spec mode.
        """
        if self.kernel is None:
            raise ValueError("schedule() requires a kernel; use run() without one")
        if self._scheduled:
            raise ValueError("the fleet timeline is already scheduled")
        self._scheduled = True
        if not self.timeline:
            self._finish()
            return self.stats.horizon_ms
        if self.in_flight_budget == 0:
            self._schedule_closed(0)
        else:
            for arrival in self.timeline:
                self.kernel.schedule_at(
                    max(arrival.at_ms, self.kernel.now),
                    lambda arrival=arrival: self._on_arrival(arrival),
                    label=(
                        f"fleet:{self.workload.name}:c{arrival.client_index}"
                        f":{arrival.event.kind.value}:{arrival.position}"
                    ),
                )
        return self.stats.horizon_ms

    def run(self) -> FleetRunStats:
        """Execute the interleaved timeline immediately, in arrival order.

        The kernel-less parity mode: the fleet performs exactly the protocol
        operations a closed-loop replay performs, in timeline order — the
        conformance suite pins a one-client fleet against
        :func:`~repro.workloads.base.replay` and the single driver with it.
        """
        if self.kernel is not None:
            raise ValueError("run() is the kernel-less mode; use schedule() with a kernel")
        for arrival in self.timeline:
            self._execute(arrival)
            self._complete(arrival)
        if not self.timeline:
            self._finish()
        return self.stats

    # ------------------------------------------------------------------ #
    # Closed-loop spec mode (budget 0)
    # ------------------------------------------------------------------ #

    def _schedule_closed(self, index: int) -> None:
        if index >= len(self.timeline):
            self._finish()
            return
        kernel = self.kernel
        assert kernel is not None
        arrival = self.timeline[index]

        def fire() -> None:
            try:
                self._execute(arrival)
            finally:
                # Even a failing event must not cut the rest of the
                # timeline short.
                self._complete(arrival)
                self._schedule_closed(index + 1)

        kernel.schedule_at(
            max(arrival.at_ms, kernel.now),
            fire,
            label=(
                f"fleet:{self.workload.name}:c{arrival.client_index}"
                f":{arrival.event.kind.value}:{arrival.position}"
            ),
        )

    # ------------------------------------------------------------------ #
    # Open-loop admission control
    # ------------------------------------------------------------------ #

    def _on_arrival(self, arrival: FleetArrival) -> None:
        if self._in_flight >= self.in_flight_budget:
            if self.policy is FleetPolicy.SHED:
                self._shed(arrival)
            else:
                self._backlog.append(arrival)
                if len(self._backlog) > self.stats.backlog_peak:
                    self.stats.backlog_peak = len(self._backlog)
            return
        self._admit(arrival)

    def _lane(self, arrival: FleetArrival) -> int:
        return 0 if self.lane_of is None else self.lane_of(arrival)

    def _admit(self, arrival: FleetArrival) -> None:
        self._in_flight += 1
        if self._in_flight > self.stats.in_flight_peak:
            self.stats.in_flight_peak = self._in_flight
        lane = self._lane(arrival)
        self._service.setdefault(lane, deque()).append(arrival)
        if self._async:
            self._pump_async(lane)
        elif lane not in self._pumping:
            self._pump(lane)

    def _pump(self, lane: int) -> None:
        """Drain one lane's service queue, one blocking round trip at a time.

        Runs inside the kernel callback that admitted the lane's first
        request.  Arrivals firing *during* a round trip (the transport's
        nested virtual-time wait) only enqueue — this loop picks up same-lane
        ones, and an idle *other* lane starts its own pump from the arrival
        callback, nested inside this lane's virtual-time wait.  That nesting
        is what makes cross-lane round trips overlap.

        When this pump itself runs nested above other pumping lanes, it
        yields the stack after every item (a zero-delay wake re-enters the
        queue at the same virtual instant): draining a whole lane from a
        nested frame would block the lanes beneath it for the duration, and
        it is the blocked lanes' overlapped responses — already in flight —
        that the aggregate service rate comes from.  A single lane never
        yields, so the default path schedules no extra kernel events.
        """
        self._pumping.add(lane)
        queue = self._service.setdefault(lane, deque())
        try:
            while queue:
                arrival = queue.popleft()
                try:
                    self._execute(arrival)
                finally:
                    self._in_flight -= 1
                    self._complete(arrival)
                    self._drain_backlog(lane)
                if len(self._pumping) > 1 and queue:
                    # Other lanes are stacked beneath this frame: hand the
                    # stack back so they can progress, and resume this
                    # lane's queue from a fresh frame at the same instant.
                    self._wake(lane)
                    return
        finally:
            self._pumping.discard(lane)

    def _drain_backlog(self, current_lane: int) -> None:
        """Admit backlogged arrivals into freed budget slots, lane-routed.

        Same-lane admissions are picked up by the caller's pump loop; an
        idle other lane is woken through a zero-delay kernel event rather
        than a recursive call, so its round trips run from a fresh frame
        (bounded stack) while still overlapping this lane's waits.  With a
        single lane (``lane_of`` None) the kernel path never triggers.
        """
        while self._backlog and self._in_flight < self.in_flight_budget:
            waiting = self._backlog.popleft()
            self._in_flight += 1
            if self._in_flight > self.stats.in_flight_peak:
                self.stats.in_flight_peak = self._in_flight
            lane = self._lane(waiting)
            self._service.setdefault(lane, deque()).append(waiting)
            if lane == current_lane:
                # Picked up by the caller — the blocking pump's loop or the
                # async completion's re-pump.
                continue
            if self._async:
                # An async pump never blocks, so an idle other lane can be
                # re-entered directly (it self-guards while busy).
                self._pump_async(lane)
            elif lane not in self._pumping:
                self._wake(lane)

    def _wake(self, lane: int) -> None:
        """Book a zero-delay kernel event that re-enters a lane's pump."""
        if lane in self._waking:
            return
        assert self.kernel is not None
        self._waking.add(lane)
        self.kernel.schedule_at(
            self.kernel.now,
            lambda: self._pump_idle(lane),
            label=f"fleet:{self.workload.name}:lane-{lane}:wake",
        )

    def _pump_idle(self, lane: int) -> None:
        self._waking.discard(lane)
        if lane not in self._pumping and self._service.get(lane):
            self._pump(lane)

    # ------------------------------------------------------------------ #
    # Event-driven pump (multi-lane deployments)
    # ------------------------------------------------------------------ #

    def _pump_async(self, lane: int) -> None:
        """Issue the lane's next request without blocking on its round trip.

        Each lane keeps at most one request in flight; the next departs from
        the completion callback.  A client whose ``submit_async`` completes
        synchronously (the protocol default, or a zero-latency transport)
        must not recurse through that callback — the ``sync``/``done`` state
        pair turns immediate completions back into loop iterations.
        """
        if lane in self._busy:
            return
        queue = self._service.setdefault(lane, deque())
        while queue:
            arrival = queue.popleft()
            self._busy.add(lane)
            state = {"sync": True, "done": False}

            def done(arrival: FleetArrival = arrival, state: dict = state) -> None:
                state["done"] = True
                self._busy.discard(lane)
                self._in_flight -= 1
                self._complete(arrival)
                self._drain_backlog(lane)
                if not state["sync"]:
                    self._pump_async(lane)

            self._execute_async(arrival, done)
            state["sync"] = False
            if not state["done"]:
                return

    def _execute_async(self, arrival: FleetArrival, done: Callable[[], None]) -> None:
        """Run one arrival, signalling completion through ``done``.

        ENTRY events go through the client's asynchronous submit path;
        deletions and idle ticks are rare bookkeeping round trips that stay
        on the blocking path (their latency is charged identically).
        """
        event = arrival.event
        if event.kind is not EventKind.ENTRY:
            try:
                self._execute(arrival)
            finally:
                done()
            return
        stats = self.stats.clients[arrival.client_index].run
        client = self.clients[arrival.client_index]

        def on_receipt(receipt: SubmitReceipt) -> None:
            stats.entries_submitted += 1
            if not receipt.ok:
                stats.entries_rejected += 1
            elif receipt.sealed:
                stats.blocks_sealed += 1
            if self.on_submitted is not None:
                self.on_submitted(arrival.client_index, arrival.position, event, receipt)
            done()

        client.submit_async(
            event.data,
            event.author,
            on_receipt=on_receipt,
            expires_at_time=self._rescale_expiry(event.expires_at_time),
            expires_at_block=event.expires_at_block,
            seal=self.one_block_per_entry,
        )

    def _shed(self, arrival: FleetArrival) -> None:
        client = self.stats.clients[arrival.client_index]
        client.shed += 1
        self.stats.shed += 1
        self._processed += 1
        self._note_completion_time()
        if self._processed >= self.stats.events_total:
            self._finish()

    def _complete(self, arrival: FleetArrival) -> None:
        client = self.stats.clients[arrival.client_index]
        client.executed += 1
        self.stats.executed += 1
        self._processed += 1
        if self.kernel is not None:
            latency = round(self.kernel.now - arrival.at_ms, 6)
            client.request_latency_ms.append(latency)
            self.stats.request_latency_ms.append(latency)
        self._note_completion_time()
        if self._processed >= self.stats.events_total:
            self._finish()

    def _note_completion_time(self) -> None:
        if self.kernel is not None:
            self.stats.completed_at_ms = self.kernel.now

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self.on_finished is not None:
            self.on_finished()

    # ------------------------------------------------------------------ #
    # Event execution (mirrors ScenarioWorkloadDriver._execute per client)
    # ------------------------------------------------------------------ #

    def _execute(self, arrival: FleetArrival) -> None:
        event = arrival.event
        stats = self.stats.clients[arrival.client_index].run
        client = self.clients[arrival.client_index]
        if event.kind is EventKind.ENTRY:
            receipt = client.submit(
                event.data,
                event.author,
                expires_at_time=self._rescale_expiry(event.expires_at_time),
                expires_at_block=event.expires_at_block,
                seal=self.one_block_per_entry,
            )
            stats.entries_submitted += 1
            if not receipt.ok:
                stats.entries_rejected += 1
            elif receipt.sealed:
                stats.blocks_sealed += 1
            if self.on_submitted is not None:
                self.on_submitted(arrival.client_index, arrival.position, event, receipt)
        elif event.kind is EventKind.DELETION:
            assert event.target is not None
            self.request_deletion(
                event.target, event.author, client_index=arrival.client_index
            )
        else:
            stats.idle_events += 1
            try:
                idle_block = client.tick(event.idle_ticks)
            except LedgerError:
                # As in the single driver: one lost tick round trip on a
                # lossy transport must not abort the timeline.
                stats.idle_rejected += 1
                return
            if idle_block:
                stats.idle_blocks += 1
                stats.blocks_sealed += 1

    def request_deletion(
        self,
        target: TargetLike,
        author: str,
        *,
        reason: str = "",
        client_index: int = 0,
    ) -> DeletionReceipt:
        """Submit a deletion request through fleet client ``client_index``.

        Scenario hooks route application-level erasures through here so the
        issuing client's counters and the latency tracker see them exactly
        like stream-borne DELETION events.
        """
        stats = self.stats.clients[client_index].run
        reference = as_reference(target)
        self._deletion_owner.setdefault(
            (reference.block_number, reference.entry_number), client_index
        )
        receipt = self.clients[client_index].request_deletion(
            reference, author, reason=reason
        )
        stats.deletions_requested += 1
        if receipt.ok:
            stats.blocks_sealed += 1
            if receipt.approved:
                stats.deletions_approved += 1
        if self._latency_subscription is None:
            stats.deletions_pending = stats.deletions_approved - stats.deletions_executed
        return receipt

    def _rescale_expiry(self, expires_at_time: Optional[int]) -> Optional[int]:
        if expires_at_time is None or self.expiry_ms_per_tick is None:
            return expires_at_time
        return int(round(self.start_at_ms + expires_at_time * self.expiry_ms_per_tick))

    # ------------------------------------------------------------------ #
    # Virtual-time deletion latency
    # ------------------------------------------------------------------ #

    def _on_deletion_event(self, event: ChainEvent) -> None:
        assert self.kernel is not None
        reference = event.payload.get("reference") or {}
        key = (reference.get("block_number"), reference.get("entry_number"))
        if None in key:
            return
        owner = self._deletion_owner.get(key, 0)
        stats = self.stats.clients[owner].run
        if event.kind == EventType.DELETION_REQUESTED.value:
            if event.payload.get("approved") and key not in self._deletion_requested_at:
                # The first approved request for a target starts the clock.
                self._deletion_requested_at[key] = self.kernel.now
                stats.deletions_pending += 1
        elif event.kind == EventType.DELETION_EXECUTED.value:
            requested_at = self._deletion_requested_at.pop(key, None)
            if requested_at is not None:
                latency = round(self.kernel.now - requested_at, 6)
                stats.deletions_executed += 1
                stats.deletions_pending -= 1
                stats.deletion_latency_ms.append(latency)
                self.stats.deletion_latency_ms.append(latency)

    def close(self) -> None:
        """Detach the latency subscription (idempotent)."""
        if self._latency_subscription is not None and self._bus is not None:
            self._bus.unsubscribe(self._latency_subscription)
            self._latency_subscription = None
