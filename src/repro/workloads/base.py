"""Workload framework.

A workload is a deterministic (seeded) stream of :class:`WorkloadEvent`
objects — entry submissions, deletion requests and idle periods — that a
driver replays against a :class:`~repro.core.chain.Blockchain`, a baseline
system, or the network simulator.  The concrete generators model the
scenarios the paper motivates: login/audit logging (Section II and V),
Industry-4.0 product tracking and vehicle life-cycles (Section VI),
cryptocurrency transfers (Section I) and GDPR erasure arrivals (Section II).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator, Optional

from repro.core.chain import Blockchain
from repro.core.entry import EntryReference


class EventKind(str, Enum):
    """Kinds of workload events."""

    ENTRY = "entry"
    DELETION = "deletion"
    IDLE = "idle"


@dataclass(frozen=True)
class WorkloadEvent:
    """One event of a workload trace."""

    kind: EventKind
    author: str = ""
    data: dict[str, Any] = field(default_factory=dict)
    target: Optional[EntryReference] = None
    expires_at_time: Optional[int] = None
    expires_at_block: Optional[int] = None
    idle_ticks: int = 0


class Workload:
    """Base class: a seeded, finite stream of events."""

    name = "abstract"

    def __init__(self, *, seed: int = 42) -> None:
        self.seed = seed
        self.random = random.Random(seed)

    def fresh_rng(self) -> random.Random:
        """A new generator seeded with the workload seed.

        Generator methods use this so that repeated calls (``events()``,
        ``cases()``, ``transfers()``) return identical streams instead of
        consuming shared random state.
        """
        return random.Random(self.seed)

    def events(self) -> Iterator[WorkloadEvent]:
        """Yield the workload's events; subclasses override."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[WorkloadEvent]:
        return self.events()


@dataclass
class ReplayResult:
    """Statistics collected while replaying a workload against a chain."""

    entries: int = 0
    deletions: int = 0
    deletions_approved: int = 0
    idle_blocks: int = 0
    blocks_sealed: int = 0
    size_series: list[tuple[int, int]] = field(default_factory=list)
    length_series: list[tuple[int, int]] = field(default_factory=list)


def replay(
    workload: Workload,
    chain: Blockchain,
    *,
    sample_every: int = 1,
    one_block_per_entry: bool = True,
) -> ReplayResult:
    """Replay a workload against a chain and record growth series.

    ``size_series`` / ``length_series`` record ``(total_blocks_created,
    living_bytes)`` and ``(total_blocks_created, living_block_count)`` so the
    growth benchmark can plot bounded-versus-unbounded behaviour (claim C1).
    """
    result = ReplayResult()
    step = 0
    for event in workload:
        if event.kind is EventKind.ENTRY:
            chain.add_entry(
                event.data,
                event.author,
                expires_at_time=event.expires_at_time,
                expires_at_block=event.expires_at_block,
            )
            result.entries += 1
            if one_block_per_entry:
                chain.seal_block()
                result.blocks_sealed += 1
        elif event.kind is EventKind.DELETION:
            assert event.target is not None
            decision = chain.request_deletion(event.target, event.author)
            result.deletions += 1
            if decision.is_approved:
                result.deletions_approved += 1
            chain.seal_block()
            result.blocks_sealed += 1
        else:
            chain.clock.advance(event.idle_ticks)
            if chain.idle_tick() is not None:
                result.idle_blocks += 1
                result.blocks_sealed += 1
        step += 1
        if sample_every and step % sample_every == 0:
            result.size_series.append((chain.total_blocks_created, chain.byte_size()))
            result.length_series.append((chain.total_blocks_created, chain.length))
    result.size_series.append((chain.total_blocks_created, chain.byte_size()))
    result.length_series.append((chain.total_blocks_created, chain.length))
    return result
