"""Workload framework.

A workload is a deterministic (seeded) stream of :class:`WorkloadEvent`
objects — entry submissions, deletion requests and idle periods — that a
driver replays against a :class:`~repro.core.chain.Blockchain`, a baseline
system, or the network simulator.  The concrete generators model the
scenarios the paper motivates: login/audit logging (Section II and V),
Industry-4.0 product tracking and vehicle life-cycles (Section VI),
cryptocurrency transfers (Section I) and GDPR erasure arrivals (Section II).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator, Optional, Union

from repro.core.chain import Blockchain
from repro.core.entry import EntryReference
from repro.service.client import LedgerClient, LocalLedgerClient


class EventKind(str, Enum):
    """Kinds of workload events."""

    ENTRY = "entry"
    DELETION = "deletion"
    IDLE = "idle"


@dataclass(frozen=True)
class WorkloadEvent:
    """One event of a workload trace."""

    kind: EventKind
    author: str = ""
    data: dict[str, Any] = field(default_factory=dict)
    target: Optional[EntryReference] = None
    expires_at_time: Optional[int] = None
    expires_at_block: Optional[int] = None
    idle_ticks: int = 0


def arrival_schedule(
    workload: "Workload",
    *,
    mean_gap_ms: float,
    jitter: float = 0.5,
    ms_per_tick: float = 1.0,
) -> list[tuple[float, WorkloadEvent]]:
    """Assign deterministic virtual arrival times to a workload's events.

    Gaps between consecutive events are drawn uniformly from
    ``mean_gap_ms * [1 - jitter, 1 + jitter]`` using the workload's own seed,
    and IDLE events additionally advance the timeline by their tick count —
    so a scenario can hand the resulting ``(at_ms, event)`` pairs straight to
    the kernel and idle periods become genuine stretches of virtual time.
    """
    if mean_gap_ms <= 0:
        raise ValueError("mean_gap_ms must be positive")
    if not 0 <= jitter < 1:
        raise ValueError("jitter must lie in [0, 1)")
    rng = workload.fresh_rng()
    timeline: list[tuple[float, WorkloadEvent]] = []
    at = 0.0
    for event in workload:
        at += rng.uniform(mean_gap_ms * (1 - jitter), mean_gap_ms * (1 + jitter))
        if event.kind is EventKind.IDLE:
            at += event.idle_ticks * ms_per_tick
        timeline.append((round(at, 6), event))
    return timeline


class Workload:
    """Base class: a seeded, finite stream of events."""

    name = "abstract"

    def __init__(self, *, seed: int = 42) -> None:
        self.seed = seed
        self.random = random.Random(seed)

    def fresh_rng(self) -> random.Random:
        """A new generator seeded with the workload seed.

        Generator methods use this so that repeated calls (``events()``,
        ``cases()``, ``transfers()``) return identical streams instead of
        consuming shared random state.
        """
        return random.Random(self.seed)

    def events(self) -> Iterator[WorkloadEvent]:
        """Yield the workload's events; subclasses override."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[WorkloadEvent]:
        return self.events()


@dataclass
class ReplayResult:
    """Statistics collected while replaying a workload against a chain."""

    entries: int = 0
    deletions: int = 0
    deletions_approved: int = 0
    idle_blocks: int = 0
    blocks_sealed: int = 0
    size_series: list[tuple[int, int]] = field(default_factory=list)
    length_series: list[tuple[int, int]] = field(default_factory=list)


def replay(
    workload: Workload,
    target: Union[Blockchain, LedgerClient],
    *,
    sample_every: int = 1,
    one_block_per_entry: bool = True,
) -> ReplayResult:
    """Replay a workload through the ledger-client protocol.

    ``target`` is any :class:`~repro.service.client.LedgerClient` — local
    chain, networked anchor deployment, or baseline adapter — so every
    workload replays unchanged against every backend.  Passing a bare
    :class:`Blockchain` wraps it in a
    :class:`~repro.service.client.LocalLedgerClient` for convenience.

    ``size_series`` / ``length_series`` record ``(total_blocks_created,
    living_bytes)`` and ``(total_blocks_created, living_block_count)`` so the
    growth benchmark can plot bounded-versus-unbounded behaviour (claim C1).
    """
    client = target if isinstance(target, LedgerClient) else LocalLedgerClient(target)
    result = ReplayResult()
    step = 0

    def sample() -> None:
        statistics = client.statistics()
        created = int(statistics.get("total_blocks_created", 0))
        result.size_series.append((created, int(statistics.get("byte_size", 0))))
        result.length_series.append((created, int(statistics.get("living_blocks", 0))))

    for event in workload:
        if event.kind is EventKind.ENTRY:
            receipt = client.submit(
                event.data,
                event.author,
                expires_at_time=event.expires_at_time,
                expires_at_block=event.expires_at_block,
                seal=one_block_per_entry,
            )
            result.entries += 1
            if receipt.sealed:
                result.blocks_sealed += 1
        elif event.kind is EventKind.DELETION:
            assert event.target is not None
            receipt = client.request_deletion(event.target, event.author)
            result.deletions += 1
            if receipt.approved:
                result.deletions_approved += 1
            result.blocks_sealed += 1
        else:
            if client.tick(event.idle_ticks):
                result.idle_blocks += 1
                result.blocks_sealed += 1
        step += 1
        if sample_every and step % sample_every == 0:
            sample()
    sample()
    return result
