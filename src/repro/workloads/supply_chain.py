"""Industry-4.0 supply-chain workload (Section VI).

*"In the area of Industry 4.0, the production of a good can be recorded along
the entire supply chain.  As soon as the minimum best-before date has been
exceeded or the data has expired, the new technology can be used to
automatically clean up the blockchain."*

Every product runs through a sequence of production stages; each stage is one
entry.  Entries carry a best-before expiry (a temporary-entry bound, Section
IV-D4), so expired products vanish from the chain without any deletion
request.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import EventKind, Workload, WorkloadEvent

#: Default production stages of one product.
DEFAULT_STAGES = ("raw-material", "assembly", "quality-check", "packaging", "shipping")


class SupplyChainWorkload(Workload):
    """Product tracking with best-before expiry per entry."""

    name = "supply-chain"

    def __init__(
        self,
        *,
        num_products: int = 50,
        stages: tuple[str, ...] = DEFAULT_STAGES,
        shelf_life_ticks: int = 200,
        stations: int = 5,
        seed: int = 7,
    ) -> None:
        super().__init__(seed=seed)
        if num_products < 0 or shelf_life_ticks <= 0 or stations < 1:
            raise ValueError("invalid supply-chain workload parameters")
        self.num_products = num_products
        self.stages = stages
        self.shelf_life_ticks = shelf_life_ticks
        self.stations = stations

    def station(self, index: int) -> str:
        """Name of the production station signing a stage entry."""
        return f"STATION{index % self.stations:02d}"

    def events(self) -> Iterator[WorkloadEvent]:
        """One entry per product per stage, tagged with a best-before time."""
        rng = self.fresh_rng()
        tick = 0
        for product_index in range(self.num_products):
            product_id = f"PRODUCT-{product_index:05d}"
            best_before = tick + self.shelf_life_ticks + rng.randrange(self.shelf_life_ticks)
            for stage_index, stage in enumerate(self.stages):
                station = self.station(product_index + stage_index)
                yield WorkloadEvent(
                    kind=EventKind.ENTRY,
                    author=station,
                    data={
                        "D": f"{product_id} {stage}",
                        "K": station,
                        "S": f"sig_{station}",
                        "product": product_id,
                        "stage": stage,
                    },
                    expires_at_time=best_before,
                )
                tick += 1
            if rng.random() < 0.2:
                yield WorkloadEvent(kind=EventKind.IDLE, idle_ticks=3)
                tick += 3
