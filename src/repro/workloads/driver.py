"""Workload → scenario bridge: drive any workload on the event kernel.

:func:`~repro.workloads.base.replay` executes a workload *synchronously* —
event after event, no notion of time between them.  The paper's evaluation
is about application workloads (erasure requests, audit logs, telemetry)
exercising selective deletion under realistic network conditions, so this
module supplies the missing bridge: :class:`ScenarioWorkloadDriver` runs a
workload through :func:`~repro.workloads.base.arrival_schedule` and books
every :class:`~repro.workloads.base.WorkloadEvent` as a *kernel event* at
its virtual arrival time, executed against any
:class:`~repro.service.client.LedgerClient` — in the named scenarios a
:class:`~repro.service.remote.RemoteLedgerClient` bound to a replicated
anchor deployment, so deletion latency, marker shifts and anti-entropy
interact with message latency, loss and partitions on virtual time (the
trace-driven simulation style of the BlockSim-family simulators).

Without a kernel the driver degrades to an ordered immediate replay
(:meth:`ScenarioWorkloadDriver.run`), which is what the conformance suite
uses to pin replay-vs-driver statistics identity: the driver performs
exactly the protocol operations ``replay`` performs, in the same order.

Determinism: the timeline is a pure function of the workload seed
(``arrival_schedule``), kernel execution order is the kernel's seeded
tie-break, and the collected statistics are plain rounded numbers — so a
scenario built on this driver stays byte-identical per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.events import ChainEvent, EventBus, EventType, Subscription
from repro.service.client import (
    DeletionReceipt,
    LedgerClient,
    LedgerError,
    SubmitReceipt,
    TargetLike,
)
from repro.workloads.base import EventKind, Workload, WorkloadEvent, arrival_schedule
from repro.workloads.stats import latency_summary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel is optional)
    from repro.network.kernel import EventKernel

#: Hook invoked after every ENTRY submission: ``(position, event, receipt)``.
#: Scenarios use it for application-level reactions the generic event stream
#: cannot carry — looking up the real reference of a GDPR record before its
#: erasure, translating a vehicle decommissioning into deletion requests.
SubmitHook = Callable[[int, WorkloadEvent, SubmitReceipt], None]


@dataclass
class WorkloadRunStats:
    """Per-workload counters collected while the driver executes.

    ``deletion_latency_ms`` values are *virtual* milliseconds between an
    approved deletion request and the marker shift that physically cut the
    target off — only measured on kernel deployments (the chain's event bus
    provides the execution signal, the kernel provides the clock).
    """

    workload: str = ""
    events_total: int = 0
    entries_submitted: int = 0
    entries_rejected: int = 0
    deletions_requested: int = 0
    #: Approvals *acknowledged to the client*.  On a lossy transport the
    #: response of an applied request can be lost, so chain-observed
    #: ``deletions_executed`` may legitimately exceed this counter (the
    #: at-least-once gap between the client plane and the chain plane).
    deletions_approved: int = 0
    deletions_executed: int = 0
    #: Approved deletions whose physical cut-off has not been observed —
    #: chain-observed when the driver tracks the event bus, the
    #: approved-minus-executed difference otherwise.
    deletions_pending: int = 0
    idle_events: int = 0
    idle_blocks: int = 0
    #: IDLE events whose tick round trip failed (e.g. the response was lost
    #: on a lossy transport) — the timeline continues regardless.
    idle_rejected: int = 0
    blocks_sealed: int = 0
    horizon_ms: float = 0.0
    deletion_latency_ms: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """Deterministic plain-dict view for scenario results and benchmarks.

        ``deletion_latency_ms`` reports the full percentile block of
        :func:`~repro.workloads.stats.latency_summary` — count/mean/min/max
        alone hid the tail (a bimodal sample keeps a healthy mean while its
        p99 explodes; pinned by ``tests/test_fleet_driver.py``).
        """
        return {
            "workload": self.workload,
            "events_total": self.events_total,
            "entries_submitted": self.entries_submitted,
            "entries_rejected": self.entries_rejected,
            "deletions_requested": self.deletions_requested,
            "deletions_approved": self.deletions_approved,
            "deletions_executed": self.deletions_executed,
            "deletions_pending": self.deletions_pending,
            "idle_events": self.idle_events,
            "idle_blocks": self.idle_blocks,
            "idle_rejected": self.idle_rejected,
            "blocks_sealed": self.blocks_sealed,
            "horizon_ms": round(self.horizon_ms, 6),
            "deletion_latency_ms": latency_summary(self.deletion_latency_ms),
        }


class ScenarioWorkloadDriver:
    """Schedules a workload's events on the kernel against a ledger client.

    Parameters
    ----------
    workload:
        Any :class:`~repro.workloads.base.Workload`; its seed fully
        determines the event stream *and* the arrival timeline.
    client:
        The :class:`LedgerClient` every event executes against.  Scenarios
        pass a :class:`~repro.service.remote.RemoteLedgerClient`; the
        conformance suite passes local and kernel-less remote clients.
    mean_gap_ms / jitter / ms_per_tick:
        Forwarded to :func:`arrival_schedule` — the arrival rate knobs.
    kernel:
        The :class:`~repro.network.kernel.EventKernel` to book events on.
        ``None`` selects the kernel-less immediate mode (:meth:`run`).
    bus:
        The producer chain's :class:`~repro.core.events.EventBus`.  When
        given together with a kernel, the driver subscribes to the typed
        deletion events and measures request→execution latency in virtual
        milliseconds.
    start_at_ms:
        Offset added to every arrival time (traffic does not start at the
        beginning of virtual time).
    one_block_per_entry:
        Seal one block per submission (the paper's evaluation model), as
        :func:`~repro.workloads.base.replay` does.
    expiry_ms_per_tick:
        When set, temporary-entry bounds (``expires_at_time``, expressed in
        workload ticks) are rescaled into virtual milliseconds — chains on a
        :class:`~repro.core.clock.SimulationClock` measure time in kernel
        milliseconds, not workload ticks.  ``None`` (the default) passes the
        bounds through unchanged, which keeps kernel-less runs identical to
        ``replay``.
    on_submitted:
        Optional :data:`SubmitHook` for application-level reactions.

    Two further hooks are plain attributes (set them before
    :meth:`schedule` / :meth:`run`):

    * :attr:`on_submitted` — see above;
    * :attr:`on_finished` — called once, right after the final timeline
      event completes.  Under backlog the *actual* completion time can lie
      well past the nominal horizon, so post-traffic machinery (settle
      heartbeats, follow-up requests) must anchor here, not at
      ``schedule()``'s return value.
    """

    def __init__(
        self,
        workload: Workload,
        client: LedgerClient,
        *,
        mean_gap_ms: float,
        jitter: float = 0.5,
        ms_per_tick: float = 1.0,
        kernel: Optional["EventKernel"] = None,
        bus: Optional[EventBus] = None,
        start_at_ms: float = 0.0,
        one_block_per_entry: bool = True,
        expiry_ms_per_tick: Optional[float] = None,
        on_submitted: Optional[SubmitHook] = None,
    ) -> None:
        if start_at_ms < 0:
            raise ValueError("start_at_ms must be non-negative")
        if expiry_ms_per_tick is not None and expiry_ms_per_tick <= 0:
            raise ValueError("expiry_ms_per_tick must be positive when set")
        self.workload = workload
        self.client = client
        self.kernel = kernel
        self.start_at_ms = float(start_at_ms)
        self.one_block_per_entry = one_block_per_entry
        self.expiry_ms_per_tick = expiry_ms_per_tick
        self.on_submitted = on_submitted
        #: Called once after the final timeline event has executed.
        self.on_finished: Optional[Callable[[], None]] = None
        #: The ``(at_ms, event)`` timeline — a pure function of the workload
        #: seed and the arrival-rate parameters.
        self.timeline: list[tuple[float, WorkloadEvent]] = [
            (self.start_at_ms + at, event)
            for at, event in arrival_schedule(
                workload, mean_gap_ms=mean_gap_ms, jitter=jitter, ms_per_tick=ms_per_tick
            )
        ]
        self.stats = WorkloadRunStats(workload=workload.name)
        self.stats.events_total = len(self.timeline)
        if self.timeline:
            self.stats.horizon_ms = self.timeline[-1][0]
        self._scheduled = False
        #: reference key -> virtual request time, for latency pairing.
        self._deletion_requested_at: dict[tuple[int, int], float] = {}
        self._latency_subscription: Optional[Subscription] = None
        self._bus = bus
        if bus is not None and kernel is not None:
            self._latency_subscription = bus.subscribe(
                self._on_deletion_event,
                types=(EventType.DELETION_REQUESTED, EventType.DELETION_EXECUTED),
            )

    # ------------------------------------------------------------------ #
    # Execution modes
    # ------------------------------------------------------------------ #

    def schedule(self) -> float:
        """Book the workload timeline on the kernel; returns the horizon.

        The horizon is the arrival time of the last event — scenarios
        typically ``run_until`` some settle margin past it so replication,
        anti-entropy and delayed deletions have virtual time to finish.

        Events are *chain-scheduled*: event ``n+1`` is booked once event
        ``n`` has completed, at ``max(its arrival time, now)``.  Booking the
        whole timeline up front would let a request whose transport round
        trip overruns the next arrival execute that next event *nested
        inside itself* — at high arrival rates the nesting chains through
        the entire stream and overflows the interpreter stack.  Chaining
        bounds the depth at one event and models a driver client that
        issues requests sequentially: arrivals faster than the service's
        round trip queue up as backlog instead of re-entering it.
        """
        if self.kernel is None:
            raise ValueError("schedule() requires a kernel; use run() without one")
        if self._scheduled:
            raise ValueError("the workload timeline is already scheduled")
        self._scheduled = True
        self._schedule_position(0)
        return self.stats.horizon_ms

    def _schedule_position(self, position: int) -> None:
        if position >= len(self.timeline):
            if self.on_finished is not None:
                self.on_finished()
            return
        kernel = self.kernel
        assert kernel is not None
        at_ms, event = self.timeline[position]

        def fire() -> None:
            try:
                self._execute(position, event)
            finally:
                # Even a failing event must not cut the rest of the
                # timeline short.
                self._schedule_position(position + 1)

        kernel.schedule_at(
            max(at_ms, kernel.now),
            fire,
            label=f"workload:{self.workload.name}:{event.kind.value}:{position}",
        )

    def run(self) -> WorkloadRunStats:
        """Execute the timeline immediately, in arrival order (no kernel).

        This is the parity mode: the driver performs exactly the protocol
        operations :func:`~repro.workloads.base.replay` performs, in the
        same order, so both leave identical final chain statistics behind
        (pinned by ``tests/test_workload_contract.py``).
        """
        if self.kernel is not None:
            raise ValueError("run() is the kernel-less mode; use schedule() with a kernel")
        for position, (_, event) in enumerate(self.timeline):
            self._execute(position, event)
        if self.on_finished is not None:
            self.on_finished()
        return self.stats

    # ------------------------------------------------------------------ #
    # Event execution
    # ------------------------------------------------------------------ #

    def _execute(self, position: int, event: WorkloadEvent) -> None:
        if event.kind is EventKind.ENTRY:
            receipt = self.client.submit(
                event.data,
                event.author,
                expires_at_time=self._rescale_expiry(event.expires_at_time),
                expires_at_block=event.expires_at_block,
                seal=self.one_block_per_entry,
            )
            self.stats.entries_submitted += 1
            if not receipt.ok:
                self.stats.entries_rejected += 1
            elif receipt.sealed:
                self.stats.blocks_sealed += 1
            if self.on_submitted is not None:
                self.on_submitted(position, event, receipt)
        elif event.kind is EventKind.DELETION:
            assert event.target is not None
            self.request_deletion(event.target, event.author)
        else:
            self.stats.idle_events += 1
            try:
                idle_block = self.client.tick(event.idle_ticks)
            except LedgerError:
                # Unlike submit/request_deletion, the tick protocol path
                # raises on a failed round trip (a lost response on a lossy
                # transport).  One lost tick must not abort the whole
                # timeline — record it and carry on.
                self.stats.idle_rejected += 1
                return
            if idle_block:
                self.stats.idle_blocks += 1
                self.stats.blocks_sealed += 1

    def request_deletion(
        self, target: TargetLike, author: str, *, reason: str = ""
    ) -> DeletionReceipt:
        """Submit a deletion request through the driver (counted + timed).

        Scenario hooks route their application-level erasures through this
        method so the per-workload counters and the virtual-time latency
        tracker see them exactly like stream-borne DELETION events.
        """
        receipt = self.client.request_deletion(target, author, reason=reason)
        self.stats.deletions_requested += 1
        if receipt.ok:
            self.stats.blocks_sealed += 1
            if receipt.approved:
                self.stats.deletions_approved += 1
        if self._latency_subscription is None:
            self.stats.deletions_pending = (
                self.stats.deletions_approved - self.stats.deletions_executed
            )
        return receipt

    def _rescale_expiry(self, expires_at_time: Optional[int]) -> Optional[int]:
        if expires_at_time is None or self.expiry_ms_per_tick is None:
            return expires_at_time
        return int(round(self.start_at_ms + expires_at_time * self.expiry_ms_per_tick))

    # ------------------------------------------------------------------ #
    # Virtual-time deletion latency
    # ------------------------------------------------------------------ #

    def _on_deletion_event(self, event: ChainEvent) -> None:
        assert self.kernel is not None
        reference = event.payload.get("reference") or {}
        key = (reference.get("block_number"), reference.get("entry_number"))
        if None in key:
            return
        if event.kind == EventType.DELETION_REQUESTED.value:
            if event.payload.get("approved"):
                # The first approved request for a target starts the clock.
                self._deletion_requested_at.setdefault(key, self.kernel.now)
        elif event.kind == EventType.DELETION_EXECUTED.value:
            requested_at = self._deletion_requested_at.pop(key, None)
            if requested_at is not None:
                self.stats.deletions_executed += 1
                self.stats.deletion_latency_ms.append(
                    round(self.kernel.now - requested_at, 6)
                )
        self.stats.deletions_pending = len(self._deletion_requested_at)

    def close(self) -> None:
        """Detach the latency subscription (idempotent)."""
        if self._latency_subscription is not None and self._bus is not None:
            self._bus.unsubscribe(self._latency_subscription)
            self._latency_subscription = None
