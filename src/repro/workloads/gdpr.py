"""GDPR right-to-erasure workload (Section II).

Personal-data records are written continuously; data subjects later exercise
their Art. 17 right to erasure with a configurable probability and delay.
The workload drives the baseline comparison (claim C5) and the deletion
latency benchmark (claim C2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.workloads.base import EventKind, Workload, WorkloadEvent


@dataclass(frozen=True)
class ErasureCase:
    """One data subject's record plus the point at which erasure is requested."""

    record_index: int
    subject: str
    erase_after: Optional[int]  # stream position of the erasure, None = never


class GdprErasureWorkload(Workload):
    """Personal-data stream with delayed erasure requests."""

    name = "gdpr-erasure"

    def __init__(
        self,
        *,
        num_records: int = 200,
        num_subjects: int = 25,
        erasure_probability: float = 0.25,
        min_delay: int = 5,
        max_delay: int = 50,
        seed: int = 99,
    ) -> None:
        super().__init__(seed=seed)
        if num_records < 0 or num_subjects < 1:
            raise ValueError("invalid GDPR workload parameters")
        if not 0.0 <= erasure_probability <= 1.0:
            raise ValueError("erasure_probability must be within [0, 1]")
        if min_delay < 1 or max_delay < min_delay:
            raise ValueError("delays must satisfy 1 <= min_delay <= max_delay")
        self.num_records = num_records
        self.num_subjects = num_subjects
        self.erasure_probability = erasure_probability
        self.min_delay = min_delay
        self.max_delay = max_delay

    def subject(self, index: int) -> str:
        """Deterministic data-subject name."""
        return f"SUBJECT{index:03d}"

    def cases(self) -> list[ErasureCase]:
        """Materialise which records will request erasure, and when."""
        rng = self.fresh_rng()
        cases: list[ErasureCase] = []
        for record_index in range(self.num_records):
            subject = self.subject(rng.randrange(self.num_subjects))
            erase_after: Optional[int] = None
            if rng.random() < self.erasure_probability:
                erase_after = record_index + rng.randrange(self.min_delay, self.max_delay + 1)
            cases.append(ErasureCase(record_index=record_index, subject=subject, erase_after=erase_after))
        return cases

    def events(self) -> Iterator[WorkloadEvent]:
        """Record submissions only; erasure timing is exposed via :meth:`cases`.

        The block number of each record depends on the chain configuration,
        so the erasure requests themselves are issued by the driver (see the
        GDPR example and the comparison benchmark), which looks up the real
        :class:`EntryReference` of each written record before requesting the
        deletion at the scheduled stream position.
        """
        for case in self.cases():
            yield WorkloadEvent(
                kind=EventKind.ENTRY,
                author=case.subject,
                data={
                    "D": f"personal data of {case.subject} (record {case.record_index})",
                    "K": case.subject,
                    "S": f"sig_{case.subject}",
                    "record_index": case.record_index,
                },
            )

    def erasure_schedule(self) -> dict[int, list[int]]:
        """Map stream position -> record indices whose erasure is due there."""
        schedule: dict[int, list[int]] = {}
        for case in self.cases():
            if case.erase_after is not None:
                schedule.setdefault(case.erase_after, []).append(case.record_index)
        return schedule
