"""Vehicle life-cycle workload (Section VI).

*"In the field of vehicle maintenance, the life cycle of each car can be
documented centrally, so that manipulations are excluded, e.g. on the mileage
or accidents.  After a vehicle is taken out of service, the blockchain as
database is cleaned up to handle the data amount."*

Each vehicle produces maintenance entries (mileage readings, inspections,
repairs) authored by workshops; when a vehicle is decommissioned the
registration authority requests deletion of all its entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.workloads.base import EventKind, Workload, WorkloadEvent

#: Maintenance event types recorded for a vehicle.
MAINTENANCE_KINDS = ("mileage-reading", "inspection", "repair", "accident-report")


@dataclass
class VehicleTrace:
    """Book-keeping of one vehicle's entries (filled in by the driver)."""

    vin: str
    decommissioned: bool = False
    entry_positions: list[int] = field(default_factory=list)


class VehicleLifecycleWorkload(Workload):
    """Maintenance logs per vehicle, with decommissioning deletions."""

    name = "vehicle-lifecycle"

    def __init__(
        self,
        *,
        num_vehicles: int = 20,
        events_per_vehicle: int = 10,
        decommission_fraction: float = 0.3,
        workshops: int = 4,
        seed: int = 11,
    ) -> None:
        super().__init__(seed=seed)
        if num_vehicles < 0 or events_per_vehicle < 1 or workshops < 1:
            raise ValueError("invalid vehicle workload parameters")
        if not 0.0 <= decommission_fraction <= 1.0:
            raise ValueError("decommission_fraction must be within [0, 1]")
        self.num_vehicles = num_vehicles
        self.events_per_vehicle = events_per_vehicle
        self.decommission_fraction = decommission_fraction
        self.workshops = workshops

    def vin(self, index: int) -> str:
        """Deterministic vehicle identification number."""
        return f"VIN{index:06d}"

    def workshop(self, index: int) -> str:
        """Workshop identity used as the entry author."""
        return f"WORKSHOP{index % self.workshops:02d}"

    def events(self) -> Iterator[WorkloadEvent]:
        """Maintenance entries per vehicle; decommissioned ones are marked.

        Deletion targets depend on the concrete block numbers, which only the
        driver knows; the workload therefore marks decommissioning with an
        ``IDLE``-free tagged entry (``stage == "decommissioned"``) that the
        example application translates into deletion requests for all of the
        vehicle's previous entries.
        """
        rng = self.fresh_rng()
        for vehicle_index in range(self.num_vehicles):
            vin = self.vin(vehicle_index)
            mileage = 0
            for event_index in range(self.events_per_vehicle):
                mileage += rng.randrange(500, 5000)
                kind = MAINTENANCE_KINDS[rng.randrange(len(MAINTENANCE_KINDS))]
                workshop = self.workshop(vehicle_index + event_index)
                yield WorkloadEvent(
                    kind=EventKind.ENTRY,
                    author=workshop,
                    data={
                        "D": f"{vin} {kind} at {mileage} km",
                        "K": workshop,
                        "S": f"sig_{workshop}",
                        "vin": vin,
                        "mileage": mileage,
                        "maintenance": kind,
                    },
                )
            if rng.random() < self.decommission_fraction:
                authority = "REGISTRATION-AUTHORITY"
                yield WorkloadEvent(
                    kind=EventKind.ENTRY,
                    author=authority,
                    data={
                        "D": f"{vin} decommissioned",
                        "K": authority,
                        "S": f"sig_{authority}",
                        "vin": vin,
                        "maintenance": "decommissioned",
                    },
                )
