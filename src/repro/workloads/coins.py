"""Cryptocurrency transfer workload.

Used for two purposes:

* the semantic-cohesion tests (Section IV-D2): a transfer that spends the
  output of an earlier transfer *depends* on it, so deleting the earlier
  transfer must be refused unless the dependent parties co-sign,
* the recovery discussion of Section V-A: coins whose keys are lost forever
  can be reclaimed for the system once their originating entries expire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.workloads.base import EventKind, Workload, WorkloadEvent


@dataclass(frozen=True)
class Transfer:
    """One coin transfer, possibly spending an earlier transfer."""

    transfer_id: int
    sender: str
    receiver: str
    amount: int
    spends: Optional[int] = None  # id of the transfer whose output is consumed

    def to_entry_data(self) -> dict:
        """Entry payload in the paper's D/K/S structure plus typed fields."""
        description = f"transfer #{self.transfer_id}: {self.sender} -> {self.receiver} ({self.amount})"
        return {
            "D": description,
            "K": self.sender,
            "S": f"sig_{self.sender}",
            "transfer_id": self.transfer_id,
            "receiver": self.receiver,
            "amount": self.amount,
            "spends": self.spends,
        }


class CoinTransferWorkload(Workload):
    """Random transfer graph over a fixed set of wallets."""

    name = "coin-transfers"

    def __init__(
        self,
        *,
        num_transfers: int = 100,
        num_wallets: int = 8,
        spend_probability: float = 0.6,
        lost_wallet_fraction: float = 0.1,
        seed: int = 23,
    ) -> None:
        super().__init__(seed=seed)
        if num_transfers < 0 or num_wallets < 2:
            raise ValueError("invalid coin workload parameters")
        if not 0.0 <= spend_probability <= 1.0 or not 0.0 <= lost_wallet_fraction <= 1.0:
            raise ValueError("probabilities must be within [0, 1]")
        self.num_transfers = num_transfers
        self.num_wallets = num_wallets
        self.spend_probability = spend_probability
        self.lost_wallet_fraction = lost_wallet_fraction

    def wallet(self, index: int) -> str:
        """Deterministic wallet name."""
        return f"WALLET{index:02d}"

    def lost_wallets(self) -> set[str]:
        """Wallets whose keys are considered lost (Section V-A recovery)."""
        if self.lost_wallet_fraction <= 0:
            return set()
        count = max(1, int(self.num_wallets * self.lost_wallet_fraction))
        return {self.wallet(index) for index in range(self.num_wallets - count, self.num_wallets)}

    def transfers(self) -> list[Transfer]:
        """Materialise the transfer graph (deterministic for the seed)."""
        rng = self.fresh_rng()
        transfers: list[Transfer] = []
        for transfer_id in range(self.num_transfers):
            sender = self.wallet(rng.randrange(self.num_wallets))
            receiver = self.wallet(rng.randrange(self.num_wallets))
            while receiver == sender:
                receiver = self.wallet(rng.randrange(self.num_wallets))
            spends: Optional[int] = None
            if transfers and rng.random() < self.spend_probability:
                spends = transfers[rng.randrange(len(transfers))].transfer_id
            transfers.append(
                Transfer(
                    transfer_id=transfer_id,
                    sender=sender,
                    receiver=receiver,
                    amount=rng.randrange(1, 1000),
                    spends=spends,
                )
            )
        return transfers

    def events(self) -> Iterator[WorkloadEvent]:
        """One entry per transfer."""
        for transfer in self.transfers():
            yield WorkloadEvent(
                kind=EventKind.ENTRY,
                author=transfer.sender,
                data=transfer.to_entry_data(),
            )
