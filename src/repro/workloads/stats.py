"""Latency aggregation shared by the workload drivers.

The paper's evaluation reports deletion latency as a single mean — which is
exactly the statistic that hides a long tail.  A mean can look healthy while
one request in a hundred waits an order of magnitude longer; percentile
reporting is what makes a saturation claim honest, so this module is the one
place latency samples are folded into report dictionaries:
:func:`percentile` implements the estimator and :func:`latency_summary`
produces the ``{count, mean, min, max, p50, p95, p99}`` block every driver
embeds under ``report["workloads"]``.

Determinism: the estimator is a pure function of the sample multiset (the
samples are sorted internally), results are rounded to six decimals like
every other reported number, and no randomness is involved — so reports stay
byte-identical per seed.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

#: The percentile levels every latency block reports, in report-key order.
PERCENTILE_LEVELS: tuple[tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p95", 95.0),
    ("p99", 99.0),
)


def percentile(values: Sequence[float], level: float) -> float:
    """The ``level``-th percentile of ``values`` by linear interpolation.

    Uses the standard inclusive definition (the one a sorted-list oracle
    computes by hand): for ``n`` samples the rank of level ``q`` is
    ``(q / 100) * (n - 1)``; a fractional rank interpolates linearly between
    the two neighbouring order statistics.  ``p0`` is the minimum, ``p100``
    the maximum, a single sample is every percentile of itself, and an empty
    sample set reports ``0.0`` (matching the empty mean/min/max convention of
    the run statistics).
    """
    if not 0.0 <= level <= 100.0:
        raise ValueError(f"percentile level must lie in [0, 100], got {level}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (level / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return float(ordered[lower] + (ordered[upper] - ordered[lower]) * fraction)


def latency_summary(values: Iterable[float]) -> dict[str, Any]:
    """The deterministic latency block of the workload reports.

    Keys: ``count``, ``mean``, ``min``, ``max`` (the paper's original
    statistics) plus ``p50`` / ``p95`` / ``p99`` — the fleet percentiles a
    mean-only report cannot express.  All numbers are rounded to six
    decimals; an empty sample set reports zeros throughout.
    """
    samples = list(values)
    summary: dict[str, Any] = {
        "count": len(samples),
        "mean": round(sum(samples) / len(samples), 6) if samples else 0.0,
        "min": round(min(samples), 6) if samples else 0.0,
        "max": round(max(samples), 6) if samples else 0.0,
    }
    for key, level in PERCENTILE_LEVELS:
        summary[key] = round(percentile(samples, level), 6)
    return summary


def has_samples(summary: Any) -> bool:
    """Whether a :func:`latency_summary` block holds real measurements.

    An empty window reports ``p50/p95/p99 = 0.0`` with ``count = 0`` —
    indistinguishable from genuinely-zero latency by the percentile values
    alone.  Every consumer that *compares* percentiles (knee detectors,
    per-shard merges) must gate on this first, or an idle shard reads as an
    infinitely fast one.
    """
    try:
        return int(summary.get("count", 0)) > 0
    except AttributeError:
        return False
