"""Workload generators for the scenarios the paper motivates."""

from repro.workloads.base import (
    EventKind,
    ReplayResult,
    Workload,
    WorkloadEvent,
    arrival_schedule,
    replay,
)
from repro.workloads.coins import CoinTransferWorkload, Transfer
from repro.workloads.driver import ScenarioWorkloadDriver, WorkloadRunStats
from repro.workloads.fleet import (
    FleetArrival,
    FleetClientStats,
    FleetDriver,
    FleetPolicy,
    FleetRunStats,
    derive_client_seed,
    fleet_timeline,
)
from repro.workloads.gdpr import ErasureCase, GdprErasureWorkload
from repro.workloads.logging import (
    PAPER_USERS,
    LoginAuditWorkload,
    PaperScenarioWorkload,
    login_record,
)
from repro.workloads.stats import (
    PERCENTILE_LEVELS,
    has_samples,
    latency_summary,
    percentile,
)
from repro.workloads.supply_chain import SupplyChainWorkload
from repro.workloads.vehicle import VehicleLifecycleWorkload

__all__ = [
    "EventKind",
    "ReplayResult",
    "Workload",
    "WorkloadEvent",
    "arrival_schedule",
    "replay",
    "CoinTransferWorkload",
    "FleetArrival",
    "FleetClientStats",
    "FleetDriver",
    "FleetPolicy",
    "FleetRunStats",
    "PERCENTILE_LEVELS",
    "ScenarioWorkloadDriver",
    "Transfer",
    "WorkloadRunStats",
    "derive_client_seed",
    "fleet_timeline",
    "has_samples",
    "latency_summary",
    "percentile",
    "ErasureCase",
    "GdprErasureWorkload",
    "PAPER_USERS",
    "LoginAuditWorkload",
    "PaperScenarioWorkload",
    "login_record",
    "SupplyChainWorkload",
    "VehicleLifecycleWorkload",
]
