"""Workload generators for the scenarios the paper motivates."""

from repro.workloads.base import (
    EventKind,
    ReplayResult,
    Workload,
    WorkloadEvent,
    arrival_schedule,
    replay,
)
from repro.workloads.coins import CoinTransferWorkload, Transfer
from repro.workloads.driver import ScenarioWorkloadDriver, WorkloadRunStats
from repro.workloads.gdpr import ErasureCase, GdprErasureWorkload
from repro.workloads.logging import (
    PAPER_USERS,
    LoginAuditWorkload,
    PaperScenarioWorkload,
    login_record,
)
from repro.workloads.supply_chain import SupplyChainWorkload
from repro.workloads.vehicle import VehicleLifecycleWorkload

__all__ = [
    "EventKind",
    "ReplayResult",
    "Workload",
    "WorkloadEvent",
    "arrival_schedule",
    "replay",
    "CoinTransferWorkload",
    "ScenarioWorkloadDriver",
    "Transfer",
    "WorkloadRunStats",
    "ErasureCase",
    "GdprErasureWorkload",
    "PAPER_USERS",
    "LoginAuditWorkload",
    "PaperScenarioWorkload",
    "login_record",
    "SupplyChainWorkload",
    "VehicleLifecycleWorkload",
]
