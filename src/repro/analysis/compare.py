"""Cross-system comparison harness (claim C5).

Runs the same GDPR-style workload — write records, later erase a fraction of
them — against the selective-deletion chain and every Section III baseline,
then collects storage, retrievability and effort into one comparison table.

Every system is driven through the :class:`~repro.service.client.LedgerClient`
protocol (via the baseline adapter), so the harness exercises exactly the
code path applications use — one driver, many backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.base import BaselineSystem
from repro.baselines.chameleon_chain import RedactableChain
from repro.baselines.full_chain import ImmutableChain
from repro.baselines.hard_fork import HardForkChain
from repro.baselines.offchain import OffChainStore
from repro.baselines.pruning import LocalPruningNode
from repro.baselines.selective import SelectiveDeletionSystem
from repro.service.baseline import BaselineLedgerClient
from repro.workloads.gdpr import GdprErasureWorkload


@dataclass
class ComparisonRow:
    """Measured behaviour of one system under the comparison workload."""

    system: str
    records_written: int
    erasures_requested: int
    erasures_effective: int
    records_still_readable: int
    storage_bytes: int
    erasure_effort: float
    capabilities: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Row in plain-dict form for table rendering."""
        return {
            "system": self.system,
            "records": self.records_written,
            "erasures": self.erasures_requested,
            "effective": self.erasures_effective,
            "readable": self.records_still_readable,
            "storage_bytes": self.storage_bytes,
            "effort": round(self.erasure_effort, 1),
            "selective": self.capabilities.get("selective_deletion", False),
            "global": self.capabilities.get("global_effect", False),
            "trapdoor": self.capabilities.get("requires_trapdoor_holder", False),
        }


def default_systems() -> list[BaselineSystem]:
    """The paper's system plus every Section III baseline."""
    return [
        SelectiveDeletionSystem(),
        ImmutableChain(),
        LocalPruningNode(keep_recent=50),
        HardForkChain(),
        RedactableChain(),
        OffChainStore(),
    ]


def run_comparison(
    *,
    systems: Sequence[BaselineSystem] | None = None,
    num_records: int = 120,
    erasure_probability: float = 0.3,
    seed: int = 99,
) -> list[ComparisonRow]:
    """Drive the GDPR workload through every system and collect a table."""
    workload = GdprErasureWorkload(
        num_records=num_records,
        erasure_probability=erasure_probability,
        seed=seed,
    )
    cases = workload.cases()
    rows: list[ComparisonRow] = []
    for system in systems if systems is not None else default_systems():
        client = BaselineLedgerClient(system)
        references = []
        erasures = 0
        effective = 0
        effort = 0.0
        for case in cases:
            receipt = client.submit(
                {
                    "D": f"personal data of {case.subject} (record {case.record_index})",
                    "K": case.subject,
                    "S": f"sig_{case.subject}",
                },
                case.subject,
            )
            references.append(receipt.reference)
        for case in cases:
            if case.erase_after is None:
                continue
            receipt = client.request_deletion(references[case.record_index], case.subject)
            erasures += 1
            effort += receipt.effort_units
            if receipt.globally_effective:
                effective += 1
        if isinstance(system, SelectiveDeletionSystem):
            system.drain_retention()
        readable = sum(
            1 for reference in references if client.find_entry(reference) is not None
        )
        rows.append(
            ComparisonRow(
                system=system.name,
                records_written=len(references),
                erasures_requested=erasures,
                erasures_effective=effective,
                records_still_readable=readable,
                storage_bytes=system.storage_bytes(),
                erasure_effort=effort,
                capabilities=system.capabilities(),
            )
        )
    return rows
