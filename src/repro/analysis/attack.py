"""51 %-attack model (Section V-B1, Fig. 9).

The paper argues that deleting old sequences removes their confirmations, so
an attacker could rewrite the newest summary block with a single block's
work — unless every new summary block also embeds (at least the Merkle root
of) a middle sequence ω_{l_β/2}.  With that redundancy *"each entry that is
longer than l_β/2 in the blockchain has at least l_β/2 confirmations at each
time"*, so the attacker must redo at least l_β/2 blocks of work.

This module provides both the analytic model (confirmation depth and attack
cost as a function of chain length and redundancy policy) and a Monte-Carlo
race simulation of an attacker with a given hash-power share trying to
out-mine the honest quorum over that many blocks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import RedundancyPolicy


@dataclass(frozen=True)
class ConfirmationProfile:
    """Confirmation depth an entry enjoys under a redundancy policy."""

    chain_length: int
    redundancy: RedundancyPolicy
    confirmations: int
    blocks_to_rewrite: int


def confirmation_depth(chain_length: int, redundancy: RedundancyPolicy) -> ConfirmationProfile:
    """Confirmations protecting the oldest data after it was summarised.

    * Without redundancy, the oldest data lives only in the newest summary
      block — one block of work suffices to rewrite it.
    * With middle-sequence redundancy (Merkle root or full copy), at least
      ``chain_length // 2`` blocks confirm it (Fig. 9).
    """
    if chain_length < 1:
        raise ValueError("chain_length must be positive")
    if redundancy is RedundancyPolicy.NONE:
        confirmations = 1
    else:
        confirmations = max(1, chain_length // 2)
    return ConfirmationProfile(
        chain_length=chain_length,
        redundancy=redundancy,
        confirmations=confirmations,
        blocks_to_rewrite=confirmations,
    )


def analytic_success_probability(attacker_share: float, blocks_to_rewrite: int) -> float:
    """Catch-up probability of an attacker with ``attacker_share`` hash power.

    Uses the classic Nakamoto random-walk bound: with attacker share q and
    honest share p, the probability of ever catching up from z blocks behind
    is ``(q/p)^z`` for q < p, and 1 otherwise.
    """
    if not 0.0 <= attacker_share <= 1.0:
        raise ValueError("attacker_share must be within [0, 1]")
    if blocks_to_rewrite < 0:
        raise ValueError("blocks_to_rewrite must be non-negative")
    q = attacker_share
    p = 1.0 - q
    if q >= p:
        return 1.0
    if blocks_to_rewrite == 0:
        return 1.0
    return (q / p) ** blocks_to_rewrite


@dataclass(frozen=True)
class AttackOutcome:
    """Result of a Monte-Carlo 51 %-attack simulation."""

    attacker_share: float
    blocks_to_rewrite: int
    trials: int
    successes: int

    @property
    def success_rate(self) -> float:
        """Empirical success probability."""
        return self.successes / self.trials if self.trials else 0.0


def simulate_attack(
    *,
    attacker_share: float,
    blocks_to_rewrite: int,
    trials: int = 2000,
    max_steps: int = 10_000,
    seed: int = 1337,
    rng: Optional[random.Random] = None,
) -> AttackOutcome:
    """Monte-Carlo race between the attacker and the honest quorum.

    In each step one block is produced; it belongs to the attacker with
    probability ``attacker_share``.  The attacker starts ``blocks_to_rewrite``
    blocks behind and wins a trial upon catching up before ``max_steps``.

    The race is driven by an explicit generator: either the caller's ``rng``
    (shared across calls, e.g. one scenario-seeded stream for a whole
    adversarial cross-check) or a fresh ``random.Random(seed)``.
    """
    if not 0.0 <= attacker_share <= 1.0:
        raise ValueError("attacker_share must be within [0, 1]")
    if blocks_to_rewrite < 0 or trials <= 0:
        raise ValueError("blocks_to_rewrite must be >= 0 and trials positive")
    if rng is None:
        rng = random.Random(seed)
    successes = 0
    for _ in range(trials):
        deficit = blocks_to_rewrite
        for _ in range(max_steps):
            if deficit <= 0:
                break
            if rng.random() < attacker_share:
                deficit -= 1
            else:
                deficit += 1
            if deficit > blocks_to_rewrite + 200:
                break  # hopeless; stop early
        if deficit <= 0:
            successes += 1
    return AttackOutcome(
        attacker_share=attacker_share,
        blocks_to_rewrite=blocks_to_rewrite,
        trials=trials,
        successes=successes,
    )


def attack_resistance_table(
    chain_lengths: Sequence[int],
    attacker_shares: Sequence[float],
    *,
    trials: int = 1000,
    seed: int = 7,
    rng: Optional[random.Random] = None,
) -> list[dict[str, float]]:
    """Sweep chain length x attacker share x redundancy policy.

    This regenerates the qualitative content of Fig. 9: without redundancy
    the success probability is independent of chain length (one block to
    rewrite); with redundancy it falls off sharply as the chain grows.

    With ``rng`` the whole sweep draws from one caller-owned stream; without
    it every cell reuses ``random.Random(seed)``, keeping cells independent
    of sweep order.
    """
    rows: list[dict[str, float]] = []
    for chain_length in chain_lengths:
        for share in attacker_shares:
            for policy in (RedundancyPolicy.NONE, RedundancyPolicy.MIDDLE_MERKLE_ROOT):
                profile = confirmation_depth(chain_length, policy)
                outcome = simulate_attack(
                    attacker_share=share,
                    blocks_to_rewrite=profile.blocks_to_rewrite,
                    trials=trials,
                    seed=seed,
                    rng=rng,
                )
                rows.append(
                    {
                        "chain_length": float(chain_length),
                        "attacker_share": share,
                        "redundancy": 0.0 if policy is RedundancyPolicy.NONE else 1.0,
                        "blocks_to_rewrite": float(profile.blocks_to_rewrite),
                        "analytic_success": analytic_success_probability(
                            share, profile.blocks_to_rewrite
                        ),
                        "simulated_success": outcome.success_rate,
                    }
                )
    return rows
