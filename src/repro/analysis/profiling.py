"""Profiling harness for the simulate hot loop.

ROADMAP open item 2 asks for exactly this: nobody had profiled
``python -m repro simulate`` since PR 1 moved the chain façade to O(1), yet
the 15-scenario catalogue now executes orders of magnitude more signatures
and hashes than the seed did.  This module wraps :func:`cProfile` around any
named scenario and renders the top offenders, so "attack the measured
offenders" starts from a measurement instead of a hunch:

* ``python -m repro profile --scenario vehicle-telemetry`` — top-N cumulative
  report on stdout,
* ``--sort tottime`` — order by internal time instead,
* ``--json profile.json`` — machine-readable rows (the hot-path benchmark's
  companion format),
* ``--scenario all`` — profile the whole catalogue in one aggregated run.

``scripts/profile_simulate.py`` is a thin wrapper over the same functions
for environments that prefer a script entry point.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Optional

#: Sort orders accepted by the CLI, mapped to pstats keys.
SORT_KEYS = {
    "cumulative": pstats.SortKey.CUMULATIVE,
    "tottime": pstats.SortKey.TIME,
    "calls": pstats.SortKey.CALLS,
}


def profile_scenarios(
    names: list[str],
    *,
    seed: int = 7,
    smoke: bool = False,
    top: int = 25,
    sort: str = "cumulative",
    overrides: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Run the named scenarios under cProfile; return a report document.

    The document carries one aggregated profile over all requested scenarios
    (hot spots shared across the catalogue aggregate instead of fragmenting)
    plus per-scenario wall-clock — all derived from the profiler's own
    timings, so the harness adds no wall-clock reads of its own.
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"unknown sort order {sort!r}; choose from {sorted(SORT_KEYS)}")
    from repro.network.scenarios import run_scenario

    profiler = cProfile.Profile()
    per_scenario: list[dict[str, Any]] = []
    for name in names:
        before = _profiler_seconds(profiler)
        profiler.enable()
        run_scenario(name, seed=seed, smoke=smoke, **(overrides or {}))
        profiler.disable()
        per_scenario.append(
            {"scenario": name, "seconds": round(_profiler_seconds(profiler) - before, 6)}
        )

    stats = pstats.Stats(profiler)
    stats.sort_stats(SORT_KEYS[sort])
    rows: list[dict[str, Any]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, line, function = func
        rows.append(
            {
                "function": function,
                "file": filename,
                "line": line,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    return {
        "scenarios": per_scenario,
        "seed": seed,
        "smoke": smoke,
        "sort": sort,
        "total_seconds": round(stats.total_tt, 6),  # type: ignore[attr-defined]
        "rows": rows,
    }


def _profiler_seconds(profiler: cProfile.Profile) -> float:
    """Total seconds accumulated in ``profiler`` so far (0.0 before any run).

    The sum of per-function inline time equals the profiled wall time, which
    keeps the per-scenario split inside the profiler's own clock instead of
    adding a second timing source around it.
    """
    return sum(entry.inlinetime for entry in profiler.getstats())


def render_profile(report: dict[str, Any]) -> str:
    """Human-readable table of a :func:`profile_scenarios` document."""
    lines = []
    for item in report["scenarios"]:
        lines.append(f"[profile] {item['scenario']}: {item['seconds']:.3f}s")
    lines.append(
        f"[profile] total {report['total_seconds']:.3f}s over "
        f"{len(report['scenarios'])} scenario(s), sorted by {report['sort']}"
    )
    lines.append("")
    lines.append(f"{'ncalls':>10} {'tottime':>9} {'cumtime':>9}  function")
    for row in report["rows"]:
        location = f"{row['file']}:{row['line']}" if row["line"] else row["file"]
        lines.append(
            f"{row['ncalls']:>10} {row['tottime']:>9.4f} {row['cumtime']:>9.4f}  "
            f"{row['function']}  ({location})"
        )
    return "\n".join(lines)
