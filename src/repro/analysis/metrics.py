"""Storage and deletion metrics.

These helpers turn raw chain state and replay results into the numbers the
evaluation claims are about: bounded chain growth (claim C1), deletion
latency in blocks (claim C2) and summary-block size (claim C3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.chain import Blockchain


@dataclass(frozen=True)
class GrowthPoint:
    """One sample of a growth curve."""

    blocks_created: int
    living_blocks: int
    living_bytes: int


def growth_curve(samples: Sequence[tuple[int, int]], sizes: Sequence[tuple[int, int]]) -> list[GrowthPoint]:
    """Merge length and size series from a replay into growth points."""
    merged: list[GrowthPoint] = []
    for (created_a, living), (created_b, size) in zip(samples, sizes):
        merged.append(
            GrowthPoint(
                blocks_created=max(created_a, created_b),
                living_blocks=living,
                living_bytes=size,
            )
        )
    return merged


def peak_living_blocks(curve: Sequence[GrowthPoint]) -> int:
    """Highest number of living blocks observed along a growth curve."""
    return max((point.living_blocks for point in curve), default=0)


def final_reduction_factor(
    selective_bytes: int,
    baseline_bytes: int,
) -> float:
    """How much smaller the selective-deletion chain is than the baseline."""
    if selective_bytes <= 0:
        return float("inf") if baseline_bytes > 0 else 1.0
    return baseline_bytes / selective_bytes


@dataclass(frozen=True)
class DeletionLatency:
    """Latency of one deletion, measured in blocks and clock ticks."""

    requested_at_block: int
    executed_at_block: int
    blocks_waited: int


def measure_deletion_latency(chain: Blockchain) -> list[DeletionLatency]:
    """Extract per-deletion latencies from the chain's event log.

    Approximates the execution point by the marker-shift event that removed
    the target's sequence; the delay is what Section IV-D3 calls *delayed
    deletion* and what the empty-block mechanism bounds.
    """
    requests: dict[str, int] = {}
    latencies: list[DeletionLatency] = []
    marker_shifts: list[tuple[int, int]] = []
    for event in chain.events:
        if event.kind in ("deletion-approved",):
            requests[event.detail] = event.block_number
        elif event.kind == "marker-shift":
            marker_shifts.append((event.block_number, chain.genesis_marker))
    for detail, requested_at in requests.items():
        executed_at: Optional[int] = None
        for shift_block, _ in marker_shifts:
            if shift_block >= requested_at:
                executed_at = shift_block
                break
        if executed_at is not None:
            latencies.append(
                DeletionLatency(
                    requested_at_block=requested_at,
                    executed_at_block=executed_at,
                    blocks_waited=executed_at - requested_at,
                )
            )
    return latencies


@dataclass(frozen=True)
class SummarySizeSample:
    """Size of one summary block and the data it absorbed."""

    block_number: int
    byte_size: int
    carried_entries: int
    merged_sequences: int


def summary_size_profile(chain: Blockchain) -> list[SummarySizeSample]:
    """Sizes of all living summary blocks (claim C3, Section V-B2)."""
    profile: list[SummarySizeSample] = []
    for block in chain.blocks:
        if not block.is_summary:
            continue
        profile.append(
            SummarySizeSample(
                block_number=block.block_number,
                byte_size=block.byte_size(),
                carried_entries=block.entry_count,
                merged_sequences=len(block.merged_sequences),
            )
        )
    return profile


def deletion_effectiveness(chain: Blockchain) -> dict[str, float]:
    """Ratios summarising how many approved deletions already took effect."""
    stats = chain.registry.statistics()
    approved = stats["approved"]
    executed = stats["executed"]
    return {
        "approved": float(approved),
        "executed": float(executed),
        "pending": float(approved - executed),
        "execution_ratio": (executed / approved) if approved else 1.0,
    }
