"""Storage and deletion metrics.

These helpers turn raw chain state and replay results into the numbers the
evaluation claims are about: bounded chain growth (claim C1), deletion
latency in blocks (claim C2) and summary-block size (claim C3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.chain import Blockchain
from repro.core.events import ChainEvent, EventType, Subscription


@dataclass(frozen=True)
class GrowthPoint:
    """One sample of a growth curve."""

    blocks_created: int
    living_blocks: int
    living_bytes: int


def growth_curve(samples: Sequence[tuple[int, int]], sizes: Sequence[tuple[int, int]]) -> list[GrowthPoint]:
    """Merge length and size series from a replay into growth points."""
    merged: list[GrowthPoint] = []
    for (created_a, living), (created_b, size) in zip(samples, sizes):
        merged.append(
            GrowthPoint(
                blocks_created=max(created_a, created_b),
                living_blocks=living,
                living_bytes=size,
            )
        )
    return merged


def peak_living_blocks(curve: Sequence[GrowthPoint]) -> int:
    """Highest number of living blocks observed along a growth curve."""
    return max((point.living_blocks for point in curve), default=0)


def final_reduction_factor(
    selective_bytes: int,
    baseline_bytes: int,
) -> float:
    """How much smaller the selective-deletion chain is than the baseline."""
    if selective_bytes <= 0:
        return float("inf") if baseline_bytes > 0 else 1.0
    return baseline_bytes / selective_bytes


@dataclass(frozen=True)
class DeletionLatency:
    """Latency of one deletion, measured in blocks and clock ticks."""

    requested_at_block: int
    executed_at_block: int
    blocks_waited: int


class DeletionLatencyTracker:
    """Event-bus subscriber that accumulates deletion latencies live.

    Instead of polling chain state after the fact, the tracker subscribes to
    the typed ``deletion-requested`` / ``deletion-executed`` events and pairs
    them by target reference — the exact delay Section IV-D3 calls *delayed
    deletion* and the empty-block mechanism bounds.  Attach it to a running
    chain with :meth:`attach`, or feed a recorded trail through
    :meth:`consume` (which is how :func:`measure_deletion_latency` works).
    """

    def __init__(self) -> None:
        self._requested: dict[tuple[int, int], int] = {}
        self.latencies: list[DeletionLatency] = []

    def attach(self, chain: Blockchain) -> Subscription:
        """Subscribe to a chain's bus; returns the subscription handle."""
        return chain.bus.subscribe(
            self,
            types=(EventType.DELETION_REQUESTED, EventType.DELETION_EXECUTED),
        )

    def consume(self, events: Iterable[ChainEvent]) -> "DeletionLatencyTracker":
        """Feed a recorded audit trail through the tracker."""
        for event in events:
            self(event)
        return self

    def __call__(self, event: ChainEvent) -> None:
        reference = event.payload.get("reference") or {}
        key = (reference.get("block_number"), reference.get("entry_number"))
        if None in key:
            return
        if event.kind == EventType.DELETION_REQUESTED.value:
            if event.payload.get("approved"):
                # The first approved request for a target sets the clock.
                self._requested.setdefault(key, event.block_number)
        elif event.kind == EventType.DELETION_EXECUTED.value:
            requested_at = self._requested.pop(key, None)
            if requested_at is not None:
                self.latencies.append(
                    DeletionLatency(
                        requested_at_block=requested_at,
                        executed_at_block=event.block_number,
                        blocks_waited=event.block_number - requested_at,
                    )
                )

    @property
    def pending_count(self) -> int:
        """Approved deletions whose execution has not been observed yet."""
        return len(self._requested)


def measure_deletion_latency(chain: Blockchain) -> list[DeletionLatency]:
    """Extract per-deletion latencies from the chain's recorded audit trail.

    Pairs every approved ``deletion-requested`` event with the
    ``deletion-executed`` event of the same target reference.  For live
    measurement subscribe a :class:`DeletionLatencyTracker` instead — it uses
    the same pairing logic through the event bus.
    """
    return DeletionLatencyTracker().consume(chain.events).latencies


@dataclass(frozen=True)
class SummarySizeSample:
    """Size of one summary block and the data it absorbed."""

    block_number: int
    byte_size: int
    carried_entries: int
    merged_sequences: int


def summary_size_profile(chain: Blockchain) -> list[SummarySizeSample]:
    """Sizes of all living summary blocks (claim C3, Section V-B2)."""
    profile: list[SummarySizeSample] = []
    for block in chain.blocks:
        if not block.is_summary:
            continue
        profile.append(
            SummarySizeSample(
                block_number=block.block_number,
                byte_size=block.byte_size(),
                carried_entries=block.entry_count,
                merged_sequences=len(block.merged_sequences),
            )
        )
    return profile


def deletion_effectiveness(chain: Blockchain) -> dict[str, float]:
    """Ratios summarising how many approved deletions already took effect."""
    stats = chain.registry.statistics()
    approved = stats["approved"]
    executed = stats["executed"]
    return {
        "approved": float(approved),
        "executed": float(executed),
        "pending": float(approved - executed),
        "execution_ratio": (executed / approved) if approved else 1.0,
    }
