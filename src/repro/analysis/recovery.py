"""Lost-coin recovery analysis (Section V-A, "Recovery").

The paper lists as an achieved enhancement that the concept *"offers the
possibility to make lost coins usable again.  It means not for a single user,
but for the entire blockchain system to prevent a system shutdown in long
term"* — referring to the millions of bitcoins whose keys are gone forever.

On a selective-deletion chain, transfers whose receiving wallet is known to
be lost can be given an expiry (temporary entries) or be deleted by the
quorum once a recovery policy allows it; the burned value returns to the
system (e.g. to a community fund) instead of being locked forever.  This
module quantifies that opportunity: it scans a chain of coin transfers,
computes the balance locked in lost wallets, and reports how much of it has
already been freed by expiry/deletion versus how much is still recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.chain import Blockchain


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of a lost-coin recovery analysis."""

    total_minted: int
    locked_in_lost_wallets: int
    already_freed: int
    recoverable: int
    lost_wallets: tuple[str, ...]

    @property
    def locked_fraction(self) -> float:
        """Fraction of all transferred value sitting in lost wallets."""
        if self.total_minted == 0:
            return 0.0
        return self.locked_in_lost_wallets / self.total_minted


def _wallet_balances(transfer_entries: Iterable[Mapping]) -> dict[str, int]:
    """Net balance per wallet from a stream of transfer entry payloads."""
    balances: dict[str, int] = {}
    for data in transfer_entries:
        sender = str(data.get("K", ""))
        receiver = str(data.get("receiver", ""))
        amount = int(data.get("amount", 0))
        if not receiver or amount <= 0:
            continue
        balances[sender] = balances.get(sender, 0) - amount
        balances[receiver] = balances.get(receiver, 0) + amount
    return balances


def analyze_lost_coins(
    chain: Blockchain,
    lost_wallets: Iterable[str],
    *,
    freed_value: int = 0,
) -> RecoveryReport:
    """Quantify the value locked in lost wallets on the living chain.

    Parameters
    ----------
    chain:
        The chain holding coin-transfer entries (``receiver`` / ``amount``
        fields as produced by :class:`repro.workloads.coins.CoinTransferWorkload`).
    lost_wallets:
        Wallets whose keys are considered irrecoverably lost.
    freed_value:
        Value already returned to the system by earlier expiry/deletion
        cycles (callers track this across recovery rounds).
    """
    lost = tuple(sorted(set(lost_wallets)))
    transfer_entries = [
        dict(entry.data)
        for _, entry in chain.iter_entries()
        if not entry.is_deletion_request and "receiver" in entry.data
    ]
    balances = _wallet_balances(transfer_entries)
    total_moved = sum(int(data.get("amount", 0)) for data in transfer_entries)
    locked = sum(max(0, balances.get(wallet, 0)) for wallet in lost)
    return RecoveryReport(
        total_minted=total_moved,
        locked_in_lost_wallets=locked,
        already_freed=freed_value,
        recoverable=locked,
        lost_wallets=lost,
    )


def recoverable_after_deletion(
    chain_before: Blockchain,
    chain_after: Blockchain,
    lost_wallets: Iterable[str],
) -> RecoveryReport:
    """Compare lost-wallet exposure before and after a clean-up cycle.

    ``chain_before`` and ``chain_after`` are snapshots of the same logical
    chain; the difference in locked value is reported as already freed.
    """
    before = analyze_lost_coins(chain_before, lost_wallets)
    after = analyze_lost_coins(chain_after, lost_wallets)
    freed = max(0, before.locked_in_lost_wallets - after.locked_in_lost_wallets)
    return RecoveryReport(
        total_minted=after.total_minted,
        locked_in_lost_wallets=after.locked_in_lost_wallets,
        already_freed=freed,
        recoverable=after.locked_in_lost_wallets,
        lost_wallets=after.lost_wallets,
    )
