"""Console rendering of the chain state — the format of Figs. 6-8.

The paper's evaluation presents the blockchain as console output: one header
line per block (*"block number; timestamp; previous block hash; own block
hash"*) followed by its entries (*"D stores data record; K holds the user; S
poses as signature"*), with summary blocks prefixed by ``S``.  This module
regenerates that view plus a compact statistics footer used by the examples
and the figure benchmarks.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.block import Block
from repro.core.chain import Blockchain


def render_block(block: Block, *, hash_length: int = 5, indent: str = "    ") -> str:
    """Render one block with its entries, as in the paper's console dumps."""
    lines = [block.display(hash_length=hash_length)]
    for entry in block.entries:
        lines.append(f"{indent}{entry.display()}")
    if block.merged_sequences:
        lines.append(f"{indent}[merged sequences: {', '.join(map(str, block.merged_sequences))}]")
    for record in block.redundancy:
        lines.append(
            f"{indent}[redundancy: sequence {record.sequence_index} "
            f"blocks {record.first_block_number}-{record.last_block_number}]"
        )
    for reference in block.summary_references:
        if isinstance(reference, dict) and reference.get("kind") == "poa-seal":
            lines.append(f"{indent}[sealed by {reference.get('sealer')}]")
        elif isinstance(reference, dict) and "merkle_root" in reference:
            lines.append(
                f"{indent}[off-chain reference: sequence {reference.get('sequence_index')} "
                f"({reference.get('entry_count')} entries)]"
            )
    return "\n".join(lines)


def render_chain(chain: Blockchain, *, hash_length: int = 5, header: str = "") -> str:
    """Render the full living chain in the style of Figs. 6-8."""
    lines: list[str] = []
    if header:
        lines.append(f"=== {header} ===")
    lines.append(
        f"genesis marker m -> block {chain.genesis_marker}; "
        f"living blocks: {chain.length}; deleted blocks: {chain.deleted_block_count}"
    )
    for block in chain.blocks:
        lines.append(render_block(block, hash_length=hash_length))
    return "\n".join(lines)


def render_statistics(chain: Blockchain) -> str:
    """Compact statistics footer used by the examples."""
    stats = chain.statistics()
    deletions = stats["deletions"]
    return "\n".join(
        [
            "--- chain statistics ---",
            f"living blocks:        {stats['living_blocks']}",
            f"living entries:       {stats['living_entries']}",
            f"blocks ever created:  {stats['total_blocks_created']}",
            f"blocks deleted:       {stats['deleted_blocks']}",
            f"entries dropped:      {stats['dropped_entries']}",
            f"genesis marker:       {stats['genesis_marker']}",
            f"approx. size (bytes): {stats['byte_size']}",
            (
                "deletions:            "
                f"{deletions['approved']} approved, {deletions['rejected']} rejected, "
                f"{deletions['executed']} executed"
            ),
        ]
    )


def render_sequences(chain: Blockchain) -> str:
    """Per-sequence footer: entry and byte counters for every living sequence ω.

    Served by the chain index's rolling per-sequence aggregates, so rendering
    cost does not grow with how often it is called.
    """
    lines = ["--- living sequences ---"]
    for index, counters in chain.sequence_statistics().items():
        lines.append(
            f"sequence {index}: {counters['entry_count']} entries, "
            f"{counters['byte_size']} bytes"
        )
    return "\n".join(lines)


def render_events(chain: Blockchain, *, kinds: Iterable[str] = ()) -> str:
    """Render the audit trail (marker shifts, merges, deletions)."""
    wanted = set(kinds)
    lines = ["--- chain events ---"]
    for event in chain.events:
        if wanted and event.kind not in wanted:
            continue
        lines.append(str(event))
    return "\n".join(lines)


def render_comparison_table(rows: list[dict], *, columns: list[str], title: str = "") -> str:
    """Render a list of dict rows as a fixed-width console table."""
    if not rows:
        return title
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
