"""Analysis utilities: metrics, the 51 %-attack model, reports, comparisons."""

from repro.analysis.attack import (
    AttackOutcome,
    ConfirmationProfile,
    analytic_success_probability,
    attack_resistance_table,
    confirmation_depth,
    simulate_attack,
)
from repro.analysis.compare import ComparisonRow, default_systems, run_comparison
from repro.analysis.recovery import RecoveryReport, analyze_lost_coins, recoverable_after_deletion
from repro.analysis.metrics import (
    DeletionLatency,
    DeletionLatencyTracker,
    GrowthPoint,
    SummarySizeSample,
    deletion_effectiveness,
    final_reduction_factor,
    growth_curve,
    measure_deletion_latency,
    peak_living_blocks,
    summary_size_profile,
)
from repro.analysis.report import (
    render_block,
    render_chain,
    render_comparison_table,
    render_events,
    render_sequences,
    render_statistics,
)

__all__ = [
    "AttackOutcome",
    "ConfirmationProfile",
    "analytic_success_probability",
    "attack_resistance_table",
    "confirmation_depth",
    "simulate_attack",
    "ComparisonRow",
    "default_systems",
    "run_comparison",
    "RecoveryReport",
    "analyze_lost_coins",
    "recoverable_after_deletion",
    "DeletionLatency",
    "DeletionLatencyTracker",
    "GrowthPoint",
    "SummarySizeSample",
    "deletion_effectiveness",
    "final_reduction_factor",
    "growth_curve",
    "measure_deletion_latency",
    "peak_living_blocks",
    "summary_size_profile",
    "render_block",
    "render_chain",
    "render_comparison_table",
    "render_events",
    "render_sequences",
    "render_statistics",
]
