#!/usr/bin/env python3
"""Replica bootstrap: a late-joining node adopts a snapshot over the wire.

A replica that rejoins after the genesis marker shifted cannot replay the
blocks it missed — they were physically deleted (that is the paper's
point).  This example shows both halves of the recovery story:

1. an isolated replica asks to catch up, is told *why* that is impossible
   (``CatchUpStatus.SNAPSHOT_REQUIRED`` names the deleted range), and
   adopts the producer's snapshot in bounded, digest-verified chunks;
2. a kernel-backed deployment where nobody scripts the recovery at all —
   periodic anti-entropy digests detect the stale replica and trigger the
   same bootstrap, over a transport that randomly loses messages.

Run with::

    python examples/replica_bootstrap.py
"""

from repro.core import Blockchain, ChainConfig
from repro.network import (
    AnchorNode,
    CatchUpStatus,
    ClientNode,
    EventKernel,
    GossipOverlay,
    GossipTopology,
    InMemoryTransport,
    LatencyModel,
    NetworkSimulator,
)


def login(index: int) -> dict[str, str]:
    return {"D": f"Login ALPHA #{index}", "K": "ALPHA", "S": "sig_ALPHA"}


def manual_bootstrap() -> None:
    print("Act 1 — explicit bootstrap after an isolation across a marker shift")
    print("-------------------------------------------------------------------")
    transport = InMemoryTransport()
    config = ChainConfig.paper_evaluation()
    ids = ["anchor-0", "anchor-1", "anchor-2"]
    nodes = {
        node_id: AnchorNode(
            node_id,
            Blockchain(config),
            transport,
            is_producer=(node_id == ids[0]),
            producer_id=ids[0],
        )
        for node_id in ids
    }
    for node in nodes.values():
        node.connect(ids)

    client = ClientNode("ALPHA", transport)
    client.submit_entry(ids[0], login(0))
    transport.set_offline("anchor-2")  # the replica drops off the network
    for index in range(1, 10):
        client.submit_entry(ids[0], login(index))
    transport.set_offline("anchor-2", False)

    producer, straggler = nodes[ids[0]], nodes["anchor-2"]
    print(f"producer head:     block {producer.chain.head.block_number}, "
          f"marker at {producer.chain.genesis_marker}")
    print(f"straggler head:    block {straggler.chain.head.block_number}")

    declined = straggler.catch_up(ids[0])
    print(f"catch-up declined: {declined.status.value}")
    print(f"  because:         {declined.detail}")
    assert declined.status is CatchUpStatus.SNAPSHOT_REQUIRED

    report = straggler.bootstrap_from(ids[0], chunk_size=1024)
    assert report.succeeded, report.reason
    print(f"bootstrap:         {report.chunks_fetched} chunks, "
          f"{report.payload_bytes} bytes, digest verified")
    assert straggler.chain.head.block_hash == producer.chain.head.block_hash
    print("converged:         straggler's head hash now matches the producer\n")


def autonomous_bootstrap() -> None:
    print("Act 2 — anti-entropy digests trigger the bootstrap on their own")
    print("----------------------------------------------------------------")
    kernel = EventKernel(seed=11)
    ids = [f"anchor-{index}" for index in range(4)]
    simulator = NetworkSimulator(
        anchor_count=4,
        config=ChainConfig.paper_evaluation(),
        latency=LatencyModel(minimum_ms=5.0, maximum_ms=20.0, seed=12),
        kernel=kernel,
        gossip=GossipOverlay(GossipTopology.fully_connected(ids), fanout=2, seed=13),
        loss_rate=0.05,  # a lossy network: chunks may need retransmission
        loss_seed=14,
    )
    simulator.add_client("ALPHA")
    simulator.enable_anti_entropy(interval_ms=100.0, until=1800.0)
    simulator.schedule_offline("anchor-3", 40.0)
    simulator.schedule_online("anchor-3", 1200.0)  # back after the marker shifted
    for index in range(20):
        kernel.schedule_at(
            25.0 + index * 40.0,
            lambda index=index: simulator.submit_entry(
                "ALPHA", login(index), anchor_id=simulator.producer_id
            ),
            label=f"entry-{index}",
        )
    kernel.run_until(1800.0)
    report = simulator.finalize()

    sync = report.anti_entropy["nodes"]
    print(f"virtual time:      {report.kernel['virtual_time_ms']:.0f} ms, "
          f"{report.anti_entropy['rounds']} digest rounds")
    print(f"messages lost:     {report.transport['lost']} "
          f"(loss rate {simulator.transport.loss_rate:.0%})")
    print(f"digest pulls:      {sync['digests_behind']} "
          f"(of {sync['digests_received']} digests received)")
    print(f"bootstraps:        {sync['bootstraps']} "
          f"({sync['bootstrap_bytes']} bytes, "
          f"{sync['bootstrap_retransmits']} chunk retransmits)")
    assert sync["bootstraps"] >= 1
    assert simulator.replicas_identical()
    print("converged:         every replica ends on the same head hash")


def main() -> None:
    manual_bootstrap()
    autonomous_bootstrap()


if __name__ == "__main__":
    main()
