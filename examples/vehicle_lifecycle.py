#!/usr/bin/env python3
"""Vehicle life-cycle documentation (Section VI).

Workshops log every maintenance event (mileage, inspections, repairs) so that
odometer fraud is impossible; when a vehicle is decommissioned, the
registration authority — holding the quorum's master signature — requests
deletion of all of that vehicle's records, and the chain cleans itself up
over the following summarisation cycles.

Run with::

    python examples/vehicle_lifecycle.py
"""

from collections import defaultdict

from repro import (
    Blockchain,
    ChainConfig,
    EntryReference,
    LengthUnit,
    LocalLedgerClient,
    RetentionPolicy,
    ShrinkStrategy,
)
from repro.analysis import render_statistics
from repro.authz import AccessController, Role
from repro.workloads import EventKind, VehicleLifecycleWorkload


def main() -> None:
    controller = AccessController()
    controller.assign("REGISTRATION-AUTHORITY", Role.ADMIN)

    config = ChainConfig(
        sequence_length=4,
        retention=RetentionPolicy(unit=LengthUnit.SEQUENCES, max_length=4),
        shrink_strategy=ShrinkStrategy.TO_LIMIT,
    )
    chain = Blockchain(config, authorizer=controller.deletion_authorizer())

    workload = VehicleLifecycleWorkload(
        num_vehicles=12, events_per_vehicle=6, decommission_fraction=0.5, seed=11
    )

    ledger = LocalLedgerClient(chain)
    positions: dict[str, list[EntryReference]] = defaultdict(list)
    decommissioned: list[str] = []

    for event in workload:
        assert event.kind is EventKind.ENTRY
        receipt = ledger.submit(event.data, event.author)
        vin = event.data.get("vin", "")
        if event.data.get("maintenance") == "decommissioned":
            decommissioned.append(vin)
            # The authority asks the chain to forget the whole vehicle history.
            for reference in positions[vin]:
                if ledger.find_entry(reference) is not None:
                    ledger.request_deletion(reference, "REGISTRATION-AUTHORITY")
        else:
            positions[vin].append(receipt.reference)

    # Let the retention machinery run a few more cycles so marked records expire.
    for _ in range(20):
        ledger.submit(
            {"D": "periodic audit heartbeat", "K": "AUDITOR", "S": "sig_AUDITOR"}, "AUDITOR"
        )

    print("Vehicle life-cycle ledger")
    print("-------------------------")
    print(f"vehicles tracked:        {workload.num_vehicles}")
    print(f"vehicles decommissioned: {len(decommissioned)}")

    for vin in decommissioned[:3]:
        remaining = sum(1 for ref in positions[vin] if chain.find_entry(ref) is not None)
        print(f"  {vin}: {remaining} of {len(positions[vin])} maintenance records still on the chain")

    still_tracked = [vin for vin in positions if vin not in decommissioned]
    sample = still_tracked[0] if still_tracked else None
    if sample:
        retrievable = sum(1 for ref in positions[sample] if chain.find_entry(ref) is not None)
        print(f"  {sample} (active): {retrievable} of {len(positions[sample])} records retrievable")

    print()
    print(render_statistics(chain))
    chain.validate()
    print("\nchain validated: decommissioned vehicles were forgotten, active ones kept.")


if __name__ == "__main__":
    main()
