#!/usr/bin/env python3
"""Durable ledger: the chain on the append-only journal backend.

The chain façade runs on a pluggable block store.  This example uses the
write-ahead-log backend so every sealed block is fsynced to disk, subscribes
to the typed event bus to watch marker shifts reclaim space, restarts the
ledger from the journal alone (no snapshot), and finally compacts the
journal — the physical data reduction the paper's claim C1 promises.

Run with::

    python examples/durable_ledger.py
"""

import tempfile
from pathlib import Path

from repro import Blockchain, ChainConfig, EventType, LocalLedgerClient
from repro.storage import JournalBlockStore
from repro.workloads import LoginAuditWorkload, replay


def main() -> None:
    journal_path = Path(tempfile.mkdtemp(prefix="repro-durable-")) / "chain.journal"

    # --- First life: run a workload on the journal-backed chain -----------
    chain = Blockchain(ChainConfig.paper_evaluation(), store=JournalBlockStore(journal_path))

    shifts: list[str] = []
    chain.bus.subscribe(
        lambda event: shifts.append(event.detail), types=(EventType.MARKER_SHIFT,)
    )

    replay(
        LoginAuditWorkload(num_events=60, num_users=4, deletion_rate=0.15, seed=3),
        LocalLedgerClient(chain),
    )

    print("Durable selective-deletion ledger (write-ahead journal)")
    print("-------------------------------------------------------")
    print(f"journal file:       {journal_path}")
    print(f"living blocks:      {chain.length} (marker at {chain.genesis_marker})")
    print(f"marker shifts seen: {len(shifts)} (via event-bus subscription)")
    print(f"last shift:         {shifts[-1] if shifts else '-'}")

    before_stats = chain.statistics()
    store = chain.store
    print(f"journal size:       {store.file_size()} bytes (truncations still logged)")

    # --- Compaction: physically reclaim the space the marker freed --------
    saved = store.compact()
    print(f"compaction saved:   {saved} bytes -> {store.file_size()} bytes on disk")

    # --- Second life: restart from the journal alone ----------------------
    restarted = Blockchain(
        ChainConfig.paper_evaluation(), store=JournalBlockStore(journal_path)
    )
    after_stats = restarted.statistics()
    same_chain = (
        after_stats["living_blocks"] == before_stats["living_blocks"]
        and after_stats["byte_size"] == before_stats["byte_size"]
        and restarted.head.block_hash == chain.head.block_hash
    )
    print(f"restart from journal: head block {restarted.head.block_number}, "
          f"identical chain state: {same_chain}")
    assert same_chain

    # The restarted ledger keeps working: seal one more block and check it
    # also reached the journal.
    ledger = LocalLedgerClient(restarted)
    receipt = ledger.submit({"D": "post-restart login", "K": "ALPHA", "S": "sig_ALPHA"}, "ALPHA")
    assert restarted.store.get(receipt.block_number).block_number == receipt.block_number
    print(f"post-restart block {receipt.block_number} journaled; ledger is live.")


if __name__ == "__main__":
    main()
