#!/usr/bin/env python3
"""GDPR erasure as a *network simulation*: the ``gdpr-erasure`` scenario.

``examples/gdpr_erasure.py`` replays the Art. 17 workload synchronously
against an in-process chain.  This example runs the same workload through
the workload→scenario bridge instead: records arrive on a seeded virtual
timeline, travel to a replicated three-anchor deployment over a latency-
bearing transport, and erasure requests trail the stream — so the deletion
latency reported here is measured in *virtual milliseconds* between the
request and the marker shift that physically cut the record off.

Run with::

    python examples/gdpr_simulation.py
"""

import json

from repro.network.scenarios import run_scenario


def main() -> None:
    # A faster and a slower arrival rate of the same workload — the latency
    # axis of BENCH_workloads.json in miniature.
    runs = {}
    for label, mean_gap_ms in (("fast arrivals", 20.0), ("slow arrivals", 80.0)):
        runs[label] = run_scenario("gdpr-erasure", seed=11, mean_gap_ms=mean_gap_ms)

    print("GDPR right-to-erasure on the simulated anchor deployment")
    print("--------------------------------------------------------")
    for label, result in runs.items():
        workload = result["report"]["workloads"]["gdpr-erasure"]
        latency = workload["deletion_latency_ms"]
        chain = result["report"]["final_chain_statistics"]
        print(f"{label} (mean gap {result['parameters']['mean_gap_ms']} ms):")
        print(f"  records submitted:          {workload['entries_submitted']}")
        print(
            f"  erasures requested/executed: "
            f"{workload['deletions_requested']}/{workload['deletions_executed']}"
        )
        print(
            f"  deletion latency (virtual):  mean {latency['mean']:.1f} ms, "
            f"max {latency['max']:.1f} ms over {latency['count']} erasures"
        )
        print(
            f"  chain: {chain['living_blocks']} living of "
            f"{chain['total_blocks_created']} created blocks"
        )
        print(f"  replicas identical:          {result['replicas_identical']}")
        print()

        # The claims the scenario is about, asserted so CI catches drift:
        # every erasure executed, the quorum converged, and the chain
        # stayed bounded.
        assert result["replicas_identical"] is True
        assert workload["deletions_executed"] > 0
        assert workload["deletions_pending"] == 0
        assert chain["living_blocks"] < chain["total_blocks_created"] / 10

    fast = runs["fast arrivals"]["report"]["workloads"]["gdpr-erasure"]
    slow = runs["slow arrivals"]["report"]["workloads"]["gdpr-erasure"]
    assert fast["deletion_latency_ms"]["mean"] <= slow["deletion_latency_ms"]["mean"]
    print("slower arrivals -> longer virtual-time deletion latency "
          "(the block-count bound is constant; blocks just take longer).")

    print()
    print("Reproduce one run from the command line:")
    print("  python -m repro simulate --scenario gdpr-erasure --seed 11 "
          "--param mean_gap_ms=20.0")
    print("Determinism check (two runs, byte-identical):")
    print("  python -m repro simulate --scenario gdpr-erasure --check-determinism > /dev/null")

    # The full result is plain JSON — handy for piping into jq or plots.
    digest = {
        "scenario": runs["fast arrivals"]["scenario"],
        "seed": runs["fast arrivals"]["seed"],
        "erasures_due": runs["fast arrivals"]["erasures_due"],
        "traffic_completed_at_ms": runs["fast arrivals"]["traffic_completed_at_ms"],
    }
    print()
    print(json.dumps(digest, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
