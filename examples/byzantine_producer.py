#!/usr/bin/env python3
"""Byzantine producer: equivocation, fork detection, and quorum repair.

The paper warns that a diverging replica "would result in a fork in the
blockchain and thus split the network" (Section IV-B) — the summary-hash
comparison exists to detect exactly that.  This example manufactures the
feared fork on purpose and walks the defence end to end:

1. an :class:`~repro.adversary.EquivocatingProducer` crafts two conflicting
   blocks on the honest head and feeds a different variant to each replica,
   splitting the quorum;
2. the producer's summary-hash round names the forked peers, and
   ``repair_divergent_replicas`` converges them by snapshot adoption;
3. the 51%-attack model from :mod:`repro.analysis.attack` puts numbers on
   the same situation: at this chain length, summarised history *without*
   block redundancy is rewritable by a 35% attacker, while the paper's
   middle-merkle-root redundancy keeps it protected.

Run with::

    python examples/byzantine_producer.py
"""

from repro.adversary import EquivocatingProducer
from repro.analysis.attack import analytic_success_probability, confirmation_depth
from repro.core import ChainConfig
from repro.core.config import RedundancyPolicy
from repro.network import NetworkSimulator


def record(index: int) -> dict[str, str]:
    return {"D": f"Honest record #{index}", "K": "ALPHA", "S": "sig_ALPHA"}


def fork_and_repair(simulator: NetworkSimulator) -> None:
    print("Act 1 — the equivocator splits the quorum")
    print("------------------------------------------")
    for index in range(6):
        simulator.submit_entry("ALPHA", record(index))
    assert simulator.replicas_identical()
    print(f"honest traffic:    head block {simulator.producer.chain.head.block_number}, "
          "all replicas identical")

    byzantine = simulator.inject_adversary(
        EquivocatingProducer("byzantine-0", simulator.transport)
    )
    victims = [peer for peer in simulator.anchor_ids if peer != simulator.producer_id]
    forged = byzantine.equivocate(victims, head=simulator.producer.chain.head, variants=2)
    assert forged[0].block_hash != forged[1].block_hash
    assert forged[0].block_number == forged[1].block_number
    print(f"equivocation:      {len(forged)} conflicting blocks at height "
          f"{forged[0].block_number}, fed to {len(victims)} victims")
    assert not simulator.replicas_identical()
    print(f"the fork is real:  victims accepted "
          f"{byzantine.stats['victims_accepted']} forged variants\n")

    print("Act 2 — detection and repair")
    print("-----------------------------")
    # The next honest block no longer links on the forked replicas — that
    # is the moment the summary-hash comparison can see the split.
    simulator.submit_entry("ALPHA", record(6))
    sync = simulator.sync_check()
    assert sync.diverged_peers, "the summary-hash round must name the forked peers"
    print(f"summary check:     diverged peers {sync.diverged_peers}")
    repaired = simulator.repair_divergent_replicas()
    assert repaired == len(sync.diverged_peers)
    assert simulator.replicas_identical()
    print(f"repair:            {repaired} replicas re-adopted the honest snapshot")
    report = simulator.finalize()
    print(f"report:            forks_repaired={report.adversary['defense']['forks_repaired']}, "
          f"actor counters {report.adversary['actors']['byzantine-0']}\n")


def attack_model(simulator: NetworkSimulator) -> None:
    print("Act 3 — what the 51%-attack model says about this chain")
    print("--------------------------------------------------------")
    chain_length = simulator.producer.chain.head.block_number
    share = 0.35
    for policy in (RedundancyPolicy.NONE, RedundancyPolicy.MIDDLE_MERKLE_ROOT):
        profile = confirmation_depth(chain_length, policy)
        probability = analytic_success_probability(share, profile.blocks_to_rewrite)
        verdict = "rewritable" if probability >= 0.5 else "protected"
        print(f"{policy.value:>22}: rewrite {profile.blocks_to_rewrite} block(s), "
              f"success probability {probability:.3f} -> {verdict}")
        if policy is RedundancyPolicy.NONE:
            assert probability >= 0.5
        else:
            assert probability < 0.5
    print("\nthe paper's middle-merkle-root redundancy is what keeps summarised")
    print("history safe from the attacker the equivocator just impersonated")


def main() -> None:
    simulator = NetworkSimulator(anchor_count=4, config=ChainConfig(sequence_length=3))
    simulator.add_client("ALPHA")
    fork_and_repair(simulator)
    attack_model(simulator)


if __name__ == "__main__":
    main()
