#!/usr/bin/env python3
"""GDPR Art. 17 right-to-erasure scenario (Section II).

Personal-data records of many data subjects are written to the chain; a
fraction of the subjects later exercise their right to erasure.  The example
also runs the same workload against the Section III baselines to show why
the paper argues only selective deletion satisfies the requirement set of
Section II (authenticity, redundancy, delete-on-request, scalability).

Run with::

    python examples/gdpr_erasure.py
"""

from repro import Blockchain, ChainConfig, EntryReference, LocalLedgerClient
from repro.analysis import render_comparison_table, run_comparison
from repro.workloads import GdprErasureWorkload


def main() -> None:
    workload = GdprErasureWorkload(num_records=80, erasure_probability=0.4, seed=99)
    chain = Blockchain(ChainConfig.paper_evaluation())
    ledger = LocalLedgerClient(chain)

    references: dict[int, EntryReference] = {}
    erased: list[int] = []
    schedule = workload.erasure_schedule()

    for position, case in enumerate(workload.cases()):
        receipt = ledger.submit(
            {
                "D": f"personal data of {case.subject} (record {case.record_index})",
                "K": case.subject,
                "S": f"sig_{case.subject}",
            },
            case.subject,
        )
        references[case.record_index] = receipt.reference
        for due_index in schedule.get(position, []):
            if due_index in references:
                subject = workload.cases()[due_index].subject
                ledger.request_deletion(references[due_index], subject)
                erased.append(due_index)

    # A few more cycles so delayed deletions actually execute.
    for _ in range(15):
        ledger.submit({"D": "retention tick", "K": "system", "S": "sig_system"}, "system")

    gone = sum(1 for index in erased if ledger.find_entry(references[index]) is None)
    print("GDPR right-to-erasure on the selective-deletion chain")
    print("------------------------------------------------------")
    print(f"personal-data records written:  {len(references)}")
    print(f"erasure requests submitted:     {len(erased)}")
    print(f"records already forgotten:      {gone}")
    print(f"living chain length:            {chain.length} blocks")
    print(f"blocks physically deleted:      {chain.deleted_block_count}")
    print()

    print("Comparison against the Section III alternatives")
    rows = [row.as_dict() for row in run_comparison(num_records=80, erasure_probability=0.4, seed=99)]
    print(
        render_comparison_table(
            rows,
            columns=[
                "system",
                "records",
                "erasures",
                "effective",
                "readable",
                "storage_bytes",
                "effort",
                "selective",
                "global",
                "trapdoor",
            ],
        )
    )


if __name__ == "__main__":
    main()
