#!/usr/bin/env python3
"""Quickstart: a selective-deletion blockchain in a dozen lines.

Creates a chain with the paper's evaluation configuration (summary block
every third block, at most two living sequences), writes a few signed
entries, deletes one of them on request of its author, and shows that the
entry physically disappears while the chain stays valid.

Run with::

    python examples/quickstart.py
"""

from repro import Blockchain, ChainConfig, EntryReference, default_log_schema
from repro.analysis import render_chain, render_statistics


def main() -> None:
    chain = Blockchain(ChainConfig.paper_evaluation(), schema=default_log_schema())

    # 1. Write entries — every login event becomes one block, as in the paper.
    for user in ("ALPHA", "BRAVO", "CHARLIE"):
        chain.add_entry_block({"D": f"Login {user}", "K": user, "S": f"sig_{user}"}, user)

    print(render_chain(chain, header="after three logins (Fig. 6)"))

    # 2. BRAVO exercises the right to erasure for its own entry in block 3.
    decision = chain.request_deletion(EntryReference(3, 1), "BRAVO")
    chain.seal_block()
    print(f"\ndeletion request by BRAVO: {decision.status.value} ({decision.reason})")

    # 3. Keep the chain running; the next summarisation cycle merges the old
    #    sequences, skips the deleted entry and shifts the genesis marker.
    chain.add_entry_block({"D": "Login ALPHA", "K": "ALPHA", "S": "sig_ALPHA"}, "ALPHA")

    print()
    print(render_chain(chain, header="after the summarisation cycle (Fig. 7)"))
    print()
    print(render_statistics(chain))

    # 4. The deleted entry is gone, everything else survived, chain is valid.
    assert chain.find_entry(EntryReference(3, 1)) is None
    assert chain.find_entry(EntryReference(1, 1)) is not None
    chain.validate(verify_signatures=True)
    print("\nchain is valid; BRAVO's entry has been forgotten.")


if __name__ == "__main__":
    main()
