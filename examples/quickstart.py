#!/usr/bin/env python3
"""Quickstart: a selective-deletion blockchain in a dozen lines.

Creates a chain with the paper's evaluation configuration (summary block
every third block, at most two living sequences), writes a few signed
entries, deletes one of them on request of its author, and shows that the
entry physically disappears while the chain stays valid.

Run with::

    python examples/quickstart.py
"""

from repro import Blockchain, ChainConfig, LocalLedgerClient, default_log_schema
from repro.analysis import render_chain, render_statistics


def main() -> None:
    chain = Blockchain(ChainConfig.paper_evaluation(), schema=default_log_schema())
    ledger = LocalLedgerClient(chain)

    # 1. Write entries through the ledger-client protocol — every login event
    #    becomes one block, as in the paper; the receipt carries the exact
    #    reference the record can later be addressed by.
    receipts = {
        user: ledger.submit({"D": f"Login {user}", "K": user, "S": f"sig_{user}"}, user)
        for user in ("ALPHA", "BRAVO", "CHARLIE")
    }

    print(render_chain(chain, header="after three logins (Fig. 6)"))

    # 2. BRAVO exercises the right to erasure for its own entry.
    deletion = ledger.request_deletion(receipts["BRAVO"].reference, "BRAVO")
    verdict = "approved" if deletion.approved else "rejected"
    print(f"\ndeletion request by BRAVO: {verdict} ({deletion.reason})")

    # 3. Keep the chain running; the next summarisation cycle merges the old
    #    sequences, skips the deleted entry and shifts the genesis marker.
    ledger.submit({"D": "Login ALPHA", "K": "ALPHA", "S": "sig_ALPHA"}, "ALPHA")

    print()
    print(render_chain(chain, header="after the summarisation cycle (Fig. 7)"))
    print()
    print(render_statistics(chain))

    # 4. The deleted entry is gone, everything else survived, chain is valid.
    assert ledger.find_entry(receipts["BRAVO"].reference) is None
    assert ledger.find_entry(receipts["ALPHA"].reference) is not None
    chain.validate(verify_signatures=True)
    print("\nchain is valid; BRAVO's entry has been forgotten.")


if __name__ == "__main__":
    main()
