#!/usr/bin/env python3
"""Industry-4.0 product life-cycle management (Section VI).

Production stages of every product are logged to the chain as temporary
entries carrying a best-before expiry.  Once a product's shelf life is over,
its records are not copied into new summary blocks and disappear from the
chain automatically — no deletion requests, no administrator involvement.

Run with::

    python examples/supply_chain_plm.py
"""

from repro import Blockchain, ChainConfig, LengthUnit, LocalLedgerClient, RetentionPolicy, ShrinkStrategy
from repro.analysis import render_statistics
from repro.workloads import SupplyChainWorkload, replay


def main() -> None:
    config = ChainConfig(
        sequence_length=5,
        retention=RetentionPolicy(unit=LengthUnit.SEQUENCES, max_length=3),
        shrink_strategy=ShrinkStrategy.TO_LIMIT,
        empty_block_interval=10,
    )
    chain = Blockchain(config)

    workload = SupplyChainWorkload(
        num_products=40,
        shelf_life_ticks=60,
        stations=6,
        seed=7,
    )
    result = replay(workload, LocalLedgerClient(chain))

    print("Industry-4.0 product tracking with automatic clean-up")
    print("----------------------------------------------------")
    print(f"production stage entries written: {result.entries}")
    print(f"blocks sealed:                    {result.blocks_sealed}")
    print(f"entries expired and dropped:      {chain.deleted_entry_count}")
    print(f"blocks physically deleted:        {chain.deleted_block_count}")
    print()

    living_products = {
        entry.data.get("product")
        for _, entry in chain.iter_entries()
        if entry.data.get("product")
    }
    print(f"products still traceable on the living chain: {len(living_products)}")
    print(f"living chain length: {chain.length} blocks (bounded by the retention policy)")
    print()
    print(render_statistics(chain))

    chain.validate()
    print("\nchain validated: expired best-before data was forgotten automatically.")


if __name__ == "__main__":
    main()
