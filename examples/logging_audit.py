#!/usr/bin/env python3
"""Logging and auditing scenario of the paper's evaluation (Section V).

Reproduces the console outputs of Figs. 6, 7 and 8: terminal logins of
ALPHA, BRAVO and CHARLIE are logged to a blockchain replicated across three
anchor nodes, BRAVO requests deletion of one login record, and over the next
summarisation cycles both the record and the deletion request itself vanish
from every replica — which stays synchronised the whole time.

Run with::

    python examples/logging_audit.py
"""

from repro.analysis import render_chain, render_events, render_statistics
from repro.core import ChainConfig, EntryReference
from repro.core.schema import default_log_schema
from repro.network import NetworkSimulator


def main() -> None:
    simulator = NetworkSimulator(
        anchor_count=3,
        client_ids=["ALPHA", "BRAVO", "CHARLIE"],
        config=ChainConfig.paper_evaluation(),
        schema=default_log_schema(),
    )
    chain = simulator.producer.chain

    # --- Fig. 6: three logins ------------------------------------------------
    for user in ("ALPHA", "BRAVO", "CHARLIE"):
        simulator.submit_entry(user, {"D": f"Login {user}", "K": user, "S": f"sig_{user}"})
    print(render_chain(chain, header="Fig. 6 — three logins, two empty summary blocks"))
    print(f"replicas in sync: {simulator.sync_check().in_sync}\n")

    # --- Fig. 7: BRAVO requests deletion of (block 3, entry 1) ---------------
    simulator.submit_deletion("BRAVO", EntryReference(3, 1))
    simulator.submit_entry("ALPHA", {"D": "Login ALPHA", "K": "ALPHA", "S": "sig_ALPHA"})
    print(render_chain(chain, header="Fig. 7 — sequences merged, BRAVO's entry not copied"))
    print(f"genesis marker: block {chain.genesis_marker}")
    print(f"replicas in sync: {simulator.sync_check().in_sync}\n")

    # --- Fig. 8: one cycle ahead, the deletion request itself is gone --------
    while chain.genesis_marker <= 6:
        simulator.submit_entry("CHARLIE", {"D": "Login CHARLIE", "K": "CHARLIE", "S": "sig_CHARLIE"})
    print(render_chain(chain, header="Fig. 8 — one cycle ahead, deletion request forgotten"))
    assert all(not entry.is_deletion_request for _, entry in chain.iter_entries())
    assert chain.find_entry(EntryReference(3, 1)) is None

    print()
    print(render_statistics(chain))
    print()
    print(render_events(chain, kinds=["marker-shift", "deletion-requested"]))
    report = simulator.finalize()
    print(
        f"\nnetwork: {report.transport['delivered']} messages delivered, "
        f"{report.transport['bytes_transferred']} bytes, "
        f"{report.divergences_detected} divergences detected"
    )


if __name__ == "__main__":
    main()
