"""Fig. 8 — one summarisation cycle ahead: the deletion request disappears.

Deletion entries are never copied into summary blocks, so one cycle after
Fig. 7 the living chain contains neither BRAVO's deleted login nor the
deletion request itself, while every other login survives as a summary copy.
"""

from repro.analysis import render_chain
from repro.core import EntryReference
from repro.workloads import PaperScenarioWorkload, replay

from conftest import make_paper_chain


def run_fig8_scenario():
    chain = make_paper_chain()
    replay(PaperScenarioWorkload(extra_cycles=2), chain)
    return chain


def test_fig8_deletion_request_forgotten(benchmark):
    chain = benchmark(run_fig8_scenario)

    # Shape of Fig. 8: at least two marker shifts have happened, no deletion
    # request is stored anywhere in the living chain, the deleted entry stays
    # gone and the other original logins are still retrievable.
    assert chain.genesis_marker >= 12
    assert all(not entry.is_deletion_request for _, entry in chain.iter_entries())
    assert chain.find_entry(EntryReference(3, 1)) is None
    assert chain.find_entry(EntryReference(1, 1)) is not None
    assert chain.find_entry(EntryReference(4, 1)) is not None
    assert chain.registry.executed_count == 1
    chain.validate(verify_signatures=True)

    print()
    print(render_chain(chain, header="Fig. 8 regenerated"))
