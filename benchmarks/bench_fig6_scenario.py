"""Fig. 6 — console state after three logins.

Regenerates the first console dump of the evaluation: Genesis Block 0 with
previous hash ``DEADB``, the first two summary blocks empty, one entry each
for ALPHA, BRAVO and CHARLIE in blocks 1, 3 and 4, nothing deleted yet.  The
benchmark times the full scenario (entry signing, sealing, automatic summary
creation) and asserts the exact block layout of the figure.
"""

from repro.analysis import render_chain
from repro.crypto.hashing import GENESIS_PREVIOUS_HASH

from conftest import login, make_paper_chain


def run_fig6_scenario():
    chain = make_paper_chain()
    for user in ("ALPHA", "BRAVO", "CHARLIE"):
        chain.add_entry_block(login(user), user)
    return chain


def test_fig6_three_logins(benchmark):
    chain = benchmark(run_fig6_scenario)

    # Shape of Fig. 6: genesis 0 / DEADB, entries in blocks 1, 3, 4,
    # empty summary blocks at 2 and 5, nothing deleted, marker at 0.
    assert chain.blocks[0].block_number == 0
    assert chain.blocks[0].previous_hash == GENESIS_PREVIOUS_HASH
    assert chain.block_by_number(1).entries[0].author == "ALPHA"
    assert chain.block_by_number(3).entries[0].author == "BRAVO"
    assert chain.block_by_number(4).entries[0].author == "CHARLIE"
    assert chain.block_by_number(2).is_summary and chain.block_by_number(2).entry_count == 0
    assert chain.block_by_number(5).is_summary and chain.block_by_number(5).entry_count == 0
    assert chain.genesis_marker == 0
    assert chain.deleted_block_count == 0
    chain.validate(verify_signatures=True)

    print()
    print(render_chain(chain, header="Fig. 6 regenerated"))
