"""Before/after measurement of the hot-path pass (Jacobian ECDSA + caches).

The profiling harness (``python -m repro profile``) showed signature
arithmetic dominating every ECDSA-bearing path: each affine scalar
multiplication pays one modular inverse per bit, and each verification
re-decompressed the public key through a Tonelli-Shanks square root.  The
hot-path pass rewrote the ladder on Jacobian coordinates with a precomputed
fixed-base table, put bounded LRU caches in front of point/signature
decoding, and batch-verifies sealed blocks reusing each author's decoded
key.

This benchmark measures the ratio honestly: the *legacy* column runs the
retained affine reference with the caches bypassed
(``set_fast_math(False)`` + ``clear_decode_caches()``), the *fast* column
runs the shipped configuration.  Both columns execute the identical
workload at the identical seed, and every workload cross-checks its outputs
between modes so a fast-but-wrong path cannot post a good ratio.

Workloads (signature-heavy → expected ≥5×, stretch 10×):

* ``derive``      — public-key derivation (one fixed-base multiply each),
* ``sign``        — RFC 6979 signatures (one fixed-base multiply each),
* ``verify``      — signature checks (one Shamir double-multiply each),
* ``sealed-block``— batch verification of one sealed block's entries,
  public keys repeating across entries (the anchor's validation path).

Committed results land in ``BENCH_hotpath.json``; runs with overridden
sizes (``BENCH_HOTPATH_OPS=4 pytest benchmarks/bench_hotpath.py``, the CI
smoke configuration) write a gitignored ``.local`` file instead.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.block import Block
from repro.core.entry import Entry
from repro.core.validation import validate_block_signatures
from repro.crypto.ecdsa import clear_decode_caches, ecdsa_sign, set_fast_math
from repro.crypto.keys import KeyPair, verify_with_public_key
from repro.crypto.signatures import EcdsaScheme, sign_entry

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
LOCAL_OUTPUT_PATH = OUTPUT_PATH.with_suffix(".local.json")

SEED = 7
#: Operations per workload; sized so the legacy column stays around a second
#: per workload.  Override with BENCH_HOTPATH_OPS for smoke runs.
DEFAULT_OPS = 32

#: Floor the signature-heavy workloads must clear (ISSUE 8); the stretch
#: goal is 10x.
REQUIRED_SPEEDUP = 5.0


def bench_ops() -> int:
    raw = os.environ.get("BENCH_HOTPATH_OPS", "")
    return int(raw) if raw else DEFAULT_OPS


def _timed(fn) -> tuple[float, object]:
    # repro: allow[REPRO-D101] benchmarks measure real wall time by design
    start = time.perf_counter()
    value = fn()
    # repro: allow[REPRO-D101] benchmarks measure real wall time by design
    return time.perf_counter() - start, value


def _workload_derive(ops: int):
    def run():
        return [
            KeyPair.from_seed(f"hotpath-derive-{index}").public_key_hex
            for index in range(ops)
        ]

    return run


def _workload_sign(ops: int):
    key = KeyPair.from_seed("hotpath-sign")

    def run():
        return [
            ecdsa_sign(key.private_key, f"message-{index}".encode("utf-8")).encode()
            for index in range(ops)
        ]

    return run


def _workload_verify(ops: int):
    key = KeyPair.from_seed("hotpath-verify")
    signed = [
        (f"message-{index}".encode("utf-8"), ecdsa_sign(key.private_key, f"message-{index}".encode("utf-8")))
        for index in range(ops)
    ]

    def run():
        return [
            verify_with_public_key(key.public_key_hex, message, signature.encode())
            for message, signature in signed
        ]

    return run


def _workload_sealed_block(ops: int):
    scheme = EcdsaScheme()
    authors = ["ALPHA", "BRAVO", "CHARLIE"]
    keys = {author: KeyPair.from_seed(author) for author in authors}
    entries = []
    for index in range(ops):
        author = authors[index % len(authors)]
        draft = Entry(data={"D": f"record-{index}"}, author=author, signature="")
        entries.append(sign_entry(scheme, draft, author, keys[author]))
    block = Block(block_number=1, timestamp=1, previous_hash="aa", entries=entries)

    def run():
        validate_block_signatures(block, "ecdsa")
        return len(block.entries)

    return run


def _measure(workload_fn, ops: int) -> dict[str, object]:
    """Run one workload in legacy then fast mode; return timings + ratio.

    Preparation (key setup, pre-signing the inputs of verify-style
    workloads) happens once in the shipped configuration; RFC 6979 makes the
    prepared material identical in both modes.  Each timed column starts
    with cold decode caches, so the fast column's first hit pays the miss.
    """
    run = workload_fn(ops)
    seconds = {}
    values = {}
    for mode, fast in (("legacy", False), ("fast", True)):
        set_fast_math(fast)
        clear_decode_caches()
        try:
            seconds[mode], values[mode] = _timed(run)
        finally:
            set_fast_math(True)
    assert values["legacy"] == values["fast"], (
        "fast path diverged from the affine reference"
    )
    legacy_s = seconds["legacy"]
    fast_s = seconds["fast"]
    return {
        "ops": ops,
        "legacy_seconds": round(legacy_s, 6),
        "fast_seconds": round(fast_s, 6),
        "legacy_ops_per_second": round(ops / legacy_s, 2),
        "fast_ops_per_second": round(ops / fast_s, 2),
        "speedup": round(legacy_s / fast_s, 2),
    }


WORKLOADS = {
    "derive": _workload_derive,
    "sign": _workload_sign,
    "verify": _workload_verify,
    "sealed-block": _workload_sealed_block,
}


def test_hotpath_speedup():
    ops = bench_ops()
    rows = {name: _measure(fn, ops) for name, fn in WORKLOADS.items()}

    output_path = OUTPUT_PATH if ops == DEFAULT_OPS else LOCAL_OUTPUT_PATH
    output_path.write_text(
        json.dumps(
            {
                "benchmark": "bench_hotpath",
                "config": {"ops": ops, "seed": SEED, "required_speedup": REQUIRED_SPEEDUP},
                "workloads": rows,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    print()
    print(f"{'workload':>14} {'legacy ops/s':>13} {'fast ops/s':>12} {'speedup':>8}")
    for name, row in rows.items():
        print(
            f"{name:>14} {row['legacy_ops_per_second']:>13.1f} "
            f"{row['fast_ops_per_second']:>12.1f} {row['speedup']:>7.1f}x"
        )

    if ops < DEFAULT_OPS:
        return  # smoke run: timings too noisy for ratio assertions

    for name, row in rows.items():
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"{name}: {row['speedup']:.1f}x is below the {REQUIRED_SPEEDUP:.0f}x floor"
        )
